//! Concurrency hammer: many threads pounding the same counter and histogram
//! must never lose an increment or a sample.

use std::sync::Arc;

use s2_obs::{Histogram, Registry};

const THREADS: usize = 8;
const OPS: u64 = 100_000;

#[test]
fn hammered_counter_total_is_exact() {
    let registry = Arc::new(Registry::new());
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = registry.counter("hammer.counter.ops");
                for _ in 0..OPS {
                    c.inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(registry.counter("hammer.counter.ops").get(), THREADS as u64 * OPS);
}

#[test]
fn hammered_histogram_count_and_sum_are_exact() {
    let hist = Arc::new(Histogram::new());
    // Each thread records a fixed value spread so the expected sum is exact.
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..OPS {
                    let v = (t as u64 + 1) * (i % 1024);
                    hist.record(v);
                    local_sum += v;
                }
                local_sum
            })
        })
        .collect();
    let expected_sum: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();

    let summary = hist.summary();
    assert_eq!(summary.count, THREADS as u64 * OPS, "every record counted");
    assert_eq!(summary.sum, expected_sum, "sum matches what threads recorded");
    assert_eq!(
        hist.buckets().iter().sum::<u64>(),
        THREADS as u64 * OPS,
        "bucket counts account for every sample"
    );
    // Max recorded value is 8 * 1023.
    assert_eq!(summary.max, THREADS as u64 * 1023);
    assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
    assert!(summary.p99 <= summary.max);
}

#[test]
fn hammered_gauge_balances_to_zero() {
    let registry = Arc::new(Registry::new());
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let g = registry.gauge("hammer.gauge.depth");
                for _ in 0..OPS {
                    g.inc();
                    g.dec();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(registry.gauge("hammer.gauge.depth").get(), 0);
}
