//! Shared foundation types for the S2DB reproduction.
//!
//! Everything in this crate is engine-agnostic: SQL-ish values and schemas,
//! rows, bit vectors (used for deleted-row tracking in segment metadata),
//! 64-bit hashing (used by shard keys and the global secondary-index hash
//! tables), CRC32 (log page checksums) and little-endian binary IO helpers
//! used by every on-disk format in the workspace.

pub mod bitvec;
pub mod crc;
pub mod date;
pub mod error;
pub mod fault;
pub mod hash;
pub mod io;
pub mod retry;
pub mod row;
pub mod schema;
pub mod sync;
pub mod types;
pub mod value;

pub use bitvec::BitVec;
pub use error::{Error, Result, RetryClass};
pub use retry::{DeadlineBudget, RetryPolicy};
pub use row::Row;
pub use schema::{ColumnDef, DataType, Schema, TableOptions};
pub use types::{
    LogPosition, PartitionId, SegmentId, TableId, Timestamp, TxnId, TS_ABORTED, TS_MAX_COMMITTED,
    TS_UNCOMMITTED,
};
pub use value::Value;
