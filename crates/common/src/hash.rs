//! A from-scratch 64-bit hash (wyhash-flavoured mix over 8-byte lanes).
//!
//! Used for shard-key routing, hash-join tables and the global secondary
//! index, all of which need a stable, seedable, well-mixed 64-bit hash that
//! is identical across processes and runs (so on-disk hash tables built by
//! one process can be probed by another).

const K0: u64 = 0x9e37_79b9_7f4a_7c15;
const K1: u64 = 0xbf58_476d_1ce4_e5b9;
const K2: u64 = 0x94d0_49bb_1331_11eb;

#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(K1);
    x ^= x >> 27;
    x = x.wrapping_mul(K2);
    x ^= x >> 31;
    x
}

/// Hash a byte slice to 64 bits.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    hash_bytes_seeded(bytes, 0)
}

/// Hash a byte slice with a seed (used to derive independent hash functions).
pub fn hash_bytes_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut h = K0 ^ seed.wrapping_mul(K1) ^ (bytes.len() as u64).wrapping_mul(K2);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes(c.try_into().unwrap());
        h = mix(h ^ lane.wrapping_mul(K1));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = mix(h ^ u64::from_le_bytes(buf).wrapping_mul(K2));
    }
    mix(h)
}

/// Combine two hashes order-sensitively (for multi-column keys).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix(a.rotate_left(17) ^ b.wrapping_mul(K1))
}

/// Hash an ordered sequence of values into one 64-bit key hash.
pub fn hash_values<'a, I>(values: I) -> u64
where
    I: IntoIterator<Item = &'a crate::value::Value>,
{
    let mut h = K0;
    for v in values {
        h = combine(h, v.hash64());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(hash_bytes_seeded(b"x", 1), hash_bytes_seeded(b"x", 2));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn value_sequence_hash() {
        let a = [Value::Int(1), Value::str("x")];
        let b = [Value::str("x"), Value::Int(1)];
        assert_ne!(hash_values(a.iter()), hash_values(b.iter()));
        assert_eq!(hash_values(a.iter()), hash_values(a.iter()));
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should change roughly half the output bits.
        let base = hash_bytes(&42u64.to_le_bytes());
        let flipped = hash_bytes(&43u64.to_le_bytes());
        let diff = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff} bits");
    }
}
