//! Rows: boxed value tuples with schema-aware validation and key projection.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A single row: one [`Value`] per schema column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row(Box<[Value]>);

impl Row {
    /// Build a row from values (no schema check).
    pub fn new(values: Vec<Value>) -> Row {
        Row(values.into_boxed_slice())
    }

    /// Build a row, validating type and nullability against `schema`.
    pub fn checked(values: Vec<Value>, schema: &Schema) -> Result<Row> {
        if values.len() != schema.len() {
            return Err(Error::InvalidArgument(format!(
                "row has {} values but schema has {} columns",
                values.len(),
                schema.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            let col = schema.column(i);
            match v.data_type() {
                None => {
                    if !col.nullable {
                        return Err(Error::InvalidArgument(format!(
                            "NULL in non-nullable column {:?}",
                            col.name
                        )));
                    }
                }
                Some(dt) => {
                    if dt != col.data_type {
                        return Err(Error::InvalidArgument(format!(
                            "column {:?} expects {:?}, got {:?}",
                            col.name, col.data_type, dt
                        )));
                    }
                }
            }
        }
        Ok(Row::new(values))
    }

    /// Values in column order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at a column ordinal.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Project the given column ordinals into a key tuple (cheap clones).
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Combined 64-bit hash of the projected key columns, used for shard-key
    /// routing and for the global secondary-index hash tables.
    pub fn key_hash(&self, cols: &[usize]) -> u64 {
        crate::hash::hash_values(cols.iter().map(|&c| &self.0[c]))
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0.into_vec()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::nullable("name", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn checked_accepts_valid() {
        let r = Row::checked(vec![Value::Int(1), Value::Null], &schema()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), &Value::Int(1));
    }

    #[test]
    fn checked_rejects_arity_and_type() {
        let s = schema();
        assert!(Row::checked(vec![Value::Int(1)], &s).is_err());
        assert!(Row::checked(vec![Value::str("x"), Value::Null], &s).is_err());
        assert!(Row::checked(vec![Value::Null, Value::Null], &s).is_err()); // id non-nullable
    }

    #[test]
    fn project_and_hash() {
        let r = Row::new(vec![Value::Int(1), Value::str("a"), Value::Int(9)]);
        assert_eq!(r.project(&[2, 0]), vec![Value::Int(9), Value::Int(1)]);
        let r2 = Row::new(vec![Value::Int(1), Value::str("b"), Value::Int(9)]);
        assert_eq!(r.key_hash(&[0, 2]), r2.key_hash(&[0, 2]));
        assert_ne!(r.key_hash(&[1]), r2.key_hash(&[1]));
    }
}
