//! Calendar date helpers. Dates are stored as `i64` days since 1970-01-01
//! (the engine's `Date` logical type maps onto `Int64`). Conversions use the
//! days-from-civil algorithm (Howard Hinnant's public-domain derivation).

/// Days since epoch for a civil date (proleptic Gregorian).
pub fn days_from_ymd(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m) && (1..=31).contains(&d));
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (i64::from(m) + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for days since epoch.
pub fn ymd_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Year component of a days-since-epoch date.
pub fn year_of(days: i64) -> i32 {
    ymd_from_days(days).0
}

/// Add `months` to a date, clamping the day to the target month's length
/// (SQL `date + interval 'n' month` semantics).
pub fn add_months(days: i64, months: i32) -> i64 {
    let (y, m, d) = ymd_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
    let max_d = days_in_month(ny, nm);
    days_from_ymd(ny, nm, d.min(max_d))
}

/// Days in a month.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_known_dates() {
        assert_eq!(days_from_ymd(1970, 1, 1), 0);
        assert_eq!(days_from_ymd(1970, 1, 2), 1);
        assert_eq!(days_from_ymd(1969, 12, 31), -1);
        assert_eq!(days_from_ymd(2000, 3, 1), 11017);
        assert_eq!(ymd_from_days(11017), (2000, 3, 1));
    }

    #[test]
    fn roundtrip_range() {
        // TPC-H's date range plus margins, day by day.
        let start = days_from_ymd(1992, 1, 1);
        let end = days_from_ymd(1999, 1, 1);
        for d in start..end {
            let (y, m, day) = ymd_from_days(d);
            assert_eq!(days_from_ymd(y, m, day), d);
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(1996, 2), 29);
        let feb29 = days_from_ymd(1996, 2, 29);
        assert_eq!(ymd_from_days(feb29), (1996, 2, 29));
    }

    #[test]
    fn month_arithmetic() {
        let jan31 = days_from_ymd(1995, 1, 31);
        assert_eq!(ymd_from_days(add_months(jan31, 1)), (1995, 2, 28));
        let d = days_from_ymd(1994, 12, 1);
        assert_eq!(ymd_from_days(add_months(d, 3)), (1995, 3, 1));
        assert_eq!(ymd_from_days(add_months(d, -12)), (1993, 12, 1));
        assert_eq!(year_of(d), 1994);
    }
}
