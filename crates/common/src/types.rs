//! Shared identifier and timestamp types used across the engine.

/// Monotonic commit timestamp, allocated per partition.
pub type Timestamp = u64;

/// Transaction identifier, unique within a partition's lifetime.
pub type TxnId = u64;

/// Byte position in a partition's write-ahead log. Data files are "named
/// after the log page at which they were created" (paper §3), so this type
/// also names columnstore data files.
pub type LogPosition = u64;

/// Columnstore segment identifier, unique within a table.
pub type SegmentId = u64;

/// Partition ordinal within a database.
pub type PartitionId = u32;

/// Table identifier, unique within a database.
pub type TableId = u32;

/// Timestamp sentinel: version written by a still-uncommitted transaction.
pub const TS_UNCOMMITTED: Timestamp = u64::MAX;

/// Timestamp sentinel: version belonging to an aborted transaction
/// (skipped by all readers; reclaimed by garbage collection).
pub const TS_ABORTED: Timestamp = u64::MAX - 1;

/// Largest timestamp a committed version can carry.
pub const TS_MAX_COMMITTED: Timestamp = u64::MAX - 2;
