//! Error type shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage engine, query engine and cluster layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A uniqueness constraint was violated on insert.
    DuplicateKey(String),
    /// A referenced table, column, index or partition does not exist.
    NotFound(String),
    /// The caller supplied an invalid argument (schema mismatch, bad plan, ...).
    InvalidArgument(String),
    /// On-disk or in-flight data failed validation (bad magic, CRC mismatch, truncation).
    Corruption(String),
    /// A transaction conflict: the row is locked by another writer.
    LockConflict(String),
    /// The transaction was aborted (explicitly or by conflict resolution).
    TxnAborted(String),
    /// Underlying IO failed. `std::io::Error` is not `Clone`, so we keep the message.
    Io(String),
    /// The blob store (or a simulated outage of it) rejected the operation.
    Unavailable(String),
    /// Internal invariant violation; indicates a bug in the engine.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::LockConflict(m) => write!(f, "lock conflict: {m}"),
            Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// How a failed operation should be retried, if at all. The blob resilience
/// layer (`s2_common::retry`, `s2_blob::health`) keys its backoff and
/// circuit-breaker decisions off this classification rather than matching
/// error variants ad hoc at every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Retrying cannot help (corruption, bad arguments, internal bugs,
    /// missing objects). Fail immediately; never burn a retry budget.
    Permanent,
    /// The backend may recover on its own (blob-store unavailability,
    /// transient IO). Retry with backoff; counts against breaker health.
    Transient,
    /// Another actor holds a resource (row locks). Retry quickly without
    /// exponential spacing; says nothing about backend health.
    Contended,
}

impl Error {
    /// Classify this error for retry/backoff/circuit-breaker purposes.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            Error::Unavailable(_) | Error::Io(_) => RetryClass::Transient,
            Error::LockConflict(_) => RetryClass::Contended,
            _ => RetryClass::Permanent,
        }
    }

    /// True when retrying the same operation may succeed (lock conflicts,
    /// transient blob-store unavailability or IO).
    pub fn is_retryable(&self) -> bool {
        self.retry_class() != RetryClass::Permanent
    }
}
