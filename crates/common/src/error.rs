//! Error type shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage engine, query engine and cluster layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A uniqueness constraint was violated on insert.
    DuplicateKey(String),
    /// A referenced table, column, index or partition does not exist.
    NotFound(String),
    /// The caller supplied an invalid argument (schema mismatch, bad plan, ...).
    InvalidArgument(String),
    /// On-disk or in-flight data failed validation (bad magic, CRC mismatch, truncation).
    Corruption(String),
    /// A transaction conflict: the row is locked by another writer.
    LockConflict(String),
    /// The transaction was aborted (explicitly or by conflict resolution).
    TxnAborted(String),
    /// Underlying IO failed. `std::io::Error` is not `Clone`, so we keep the message.
    Io(String),
    /// The blob store (or a simulated outage of it) rejected the operation.
    Unavailable(String),
    /// Internal invariant violation; indicates a bug in the engine.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::LockConflict(m) => write!(f, "lock conflict: {m}"),
            Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// True when retrying the same operation may succeed (lock conflicts,
    /// transient blob-store unavailability).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::LockConflict(_) | Error::Unavailable(_))
    }
}
