//! Little-endian binary IO helpers used by every on-disk format.
//!
//! Formats in this workspace are hand-rolled (no serde): log pages, segment
//! column blobs, inverted-index postings, global hash tables and snapshots
//! all serialize through [`ByteWriter`] / [`ByteReader`] so framing and
//! bounds checks live in one place.

use crate::error::{Error, Result};
use crate::value::Value;

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 (bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append varint-length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a varint-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Double(d) => {
                self.put_u8(2);
                self.put_f64(*d);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }
}

/// Bounds-checked little-endian byte cursor.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor is at end of input.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Jump to an absolute position.
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.buf.len() {
            return Err(Error::Corruption(format!(
                "seek to {pos} past end of {}-byte buffer",
                self.buf.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corruption(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an i64.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(Error::Corruption("varint overflow".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read varint-length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_varint()? as usize;
        self.take(n)
    }

    /// Read a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw).map_err(|e| Error::Corruption(format!("invalid utf-8: {e}")))
    }

    /// Read a tagged [`Value`] written by [`ByteWriter::put_value`].
    pub fn get_value(&mut self) -> Result<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.get_i64()?)),
            2 => Ok(Value::Double(self.get_f64()?)),
            3 => Ok(Value::str(self.get_str()?)),
            tag => Err(Error::Corruption(format!("unknown value tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(1.5);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.is_at_end());
    }

    #[test]
    fn varint_roundtrip() {
        let cases = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &c in &cases {
            w.put_varint(c);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for &c in &cases {
            assert_eq!(r.get_varint().unwrap(), c);
        }
    }

    #[test]
    fn value_roundtrip() {
        let vals = [Value::Null, Value::Int(-9), Value::Double(2.25), Value::str("héllo")];
        let mut w = ByteWriter::new();
        for v in &vals {
            w.put_value(v);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for v in &vals {
            assert_eq!(&r.get_value().unwrap(), v);
        }
    }

    #[test]
    fn truncation_detected() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf[..4]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn bad_value_tag() {
        let buf = [9u8];
        assert!(ByteReader::new(&buf).get_value().is_err());
    }

    #[test]
    fn seek_bounds() {
        let buf = [0u8; 4];
        let mut r = ByteReader::new(&buf);
        assert!(r.seek(4).is_ok());
        assert!(r.seek(5).is_err());
    }
}
