//! Lock-discipline wrappers: ranked `Mutex`/`RwLock`/`Condvar`.
//!
//! Every long-lived lock in the workspace is constructed with a
//! [`LockClass`] from the [`rank`] table, which declares where the lock
//! sits in the global acquisition hierarchy. Debug builds enforce the
//! hierarchy at runtime:
//!
//! - a thread-local **held-lock stack** records every guard the current
//!   thread holds, with the source location that acquired it;
//! - acquiring a lock whose rank is *lower* than the most recently
//!   acquired held lock panics immediately (a rank inversion is a
//!   potential deadlock even if the partner thread never materializes);
//! - acquisitions between **equal-rank** classes feed a process-global
//!   acquisition-order graph; adding an edge that closes a cycle panics,
//!   naming the acquisition sites on both sides of the inversion.
//!
//! Same-class nesting (two locks of one class held together, or RwLock
//! read-read overlap such as a registry snapshot) is deliberately not
//! flagged: ordering *within* a class is the class's own business, and
//! several legitimate patterns (per-slot mutex vectors, multi-map
//! registries) overlap guards of one class by design.
//!
//! Release builds compile all of this away: the wrappers are newtypes over
//! `std::sync` primitives with parking_lot-style panic-free guards (poison
//! recovered by taking the inner value), and the class argument is dropped
//! at construction. There is no per-acquisition bookkeeping outside
//! `debug_assertions`.

use std::fmt;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};
use std::time::Duration;

/// A position in the global lock hierarchy. Locks must be acquired in
/// non-decreasing `order`; classes sharing an `order` are additionally
/// checked for cross-class acquisition cycles.
#[derive(Debug)]
pub struct LockClass {
    /// Hierarchy rank: outermost (acquired first) locks have the lowest
    /// order, leaf locks (safe to take while holding anything) the highest.
    pub order: u32,
    /// Stable human-readable class name (`subsystem.lock_name`).
    pub name: &'static str,
}

/// The workspace lock-hierarchy table. Ranks are spaced so new classes can
/// slot between existing ones; see DESIGN.md "Static analysis & concurrency
/// discipline" for the rationale behind each tier.
pub mod rank {
    use super::LockClass;

    /// Sim harness serialization (outermost: everything runs under it).
    pub static SIM_HARNESS: LockClass = LockClass { order: 100, name: "sim.harness" };
    /// Cluster topology: master/replica set, storage service, maintenance.
    pub static CLUSTER_TOPOLOGY: LockClass = LockClass { order: 200, name: "cluster.topology" };
    /// Cluster table catalog.
    pub static CLUSTER_TABLES: LockClass = LockClass { order: 210, name: "cluster.tables" };
    /// Workspace-manager registry (name -> attached workspace).
    pub static CLUSTER_WORKSPACES: LockClass = LockClass { order: 215, name: "cluster.workspaces" };
    /// Replica applied-watermark condvar cell (catch-up waits park here).
    pub static CLUSTER_REPLICA_MARK: LockClass =
        LockClass { order: 220, name: "cluster.replica_mark" };
    /// Partition commit lock (serializes commit/flush/merge decisions).
    pub static CORE_COMMIT: LockClass = LockClass { order: 300, name: "core.commit" };
    /// Partition table maps (id and name registries).
    pub static CORE_TABLES: LockClass = LockClass { order: 310, name: "core.tables" };
    /// Partition pinned-snapshot refcounts.
    pub static CORE_PINNED: LockClass = LockClass { order: 315, name: "core.pinned" };
    /// Per-table rowstore (held across flush while table state is taken).
    pub static CORE_ROWSTORE: LockClass = LockClass { order: 318, name: "core.rowstore" };
    /// Per-table columnstore state (segment list, rowstore handle).
    pub static CORE_TABLE_STATE: LockClass = LockClass { order: 320, name: "core.table_state" };
    /// Per-segment delete bitvectors.
    pub static CORE_SEG_DELETED: LockClass = LockClass { order: 325, name: "core.seg_deleted" };
    /// Data-file store map.
    pub static CORE_SEGFILES: LockClass = LockClass { order: 330, name: "core.segfiles" };
    /// Group-commit queue state (taken under the commit lock by submitters;
    /// the leader takes the WAL interior lock beneath it while appending).
    pub static WAL_GROUP: LockClass = LockClass { order: 390, name: "wal.group" };
    /// WAL log interior (buffers + watermarks).
    pub static WAL_LOG: LockClass = LockClass { order: 400, name: "wal.log" };
    /// Storage-service uploaded/failed key sets.
    pub static CLUSTER_STORAGE_SETS: LockClass =
        LockClass { order: 500, name: "cluster.storage_sets" };
    /// Object-store backend maps (MemoryStore et al).
    pub static BLOB_STORE: LockClass = LockClass { order: 510, name: "blob.store" };
    /// Local file cache (pin/evict bookkeeping).
    pub static BLOB_CACHE: LockClass = LockClass { order: 520, name: "blob.cache" };
    /// Uploader queue state (ready/deferred/inflight).
    pub static BLOB_UPLOADER: LockClass = LockClass { order: 530, name: "blob.uploader" };
    /// Per-store health registry.
    pub static BLOB_HEALTH_REGISTRY: LockClass =
        LockClass { order: 535, name: "blob.health_registry" };
    /// Circuit-breaker core state.
    pub static BLOB_BREAKER: LockClass = LockClass { order: 540, name: "blob.breaker" };
    /// Scan-pool grow lock (worker spawning).
    pub static EXEC_POOL_GROW: LockClass = LockClass { order: 595, name: "exec.pool_grow" };
    /// Scan-pool per-worker job queues.
    pub static EXEC_POOL_QUEUE: LockClass = LockClass { order: 600, name: "exec.pool_queue" };
    /// Scan-pool idle/sleep lock.
    pub static EXEC_POOL_IDLE: LockClass = LockClass { order: 605, name: "exec.pool_idle" };
    /// Per-segment adaptive-decision cache.
    pub static EXEC_DECISION_CACHE: LockClass =
        LockClass { order: 620, name: "exec.decision_cache" };
    /// Encoded-column block-decode caches.
    pub static ENCODING_READER: LockClass = LockClass { order: 650, name: "encoding.reader" };
    /// Sim storage overlays (consulted from inside engine file ops).
    pub static SIM_STORAGE: LockClass = LockClass { order: 700, name: "sim.storage" };
    /// Sim fault-plan state (locked from fault-hook evaluation, which can
    /// run under almost any engine lock).
    pub static SIM_PLAN: LockClass = LockClass { order: 710, name: "sim.plan" };
    /// Fault-hook registry (read from deep inside commit/upload paths).
    pub static FAULT_REGISTRY: LockClass = LockClass { order: 800, name: "fault.registry" };
    /// Obs metric registries (leaf: metrics are recorded under any lock).
    pub static OBS_REGISTRY: LockClass = LockClass { order: 900, name: "obs.registry" };
    /// Obs event-ring slots (taken inside registry snapshots).
    pub static OBS_RING_SLOT: LockClass = LockClass { order: 910, name: "obs.ring_slot" };
    /// Test-only classes for the detector's own suite.
    pub static TEST_A: LockClass = LockClass { order: 10_000, name: "test.a" };
    /// Equal-rank partner of [`TEST_A`] (exercises the cycle graph).
    pub static TEST_B: LockClass = LockClass { order: 10_000, name: "test.b" };
    /// Strictly above [`TEST_A`]/[`TEST_B`] (exercises the rank check).
    pub static TEST_C: LockClass = LockClass { order: 10_010, name: "test.c" };

    /// Machine-readable export of the full hierarchy, keyed by the Rust
    /// identifier used at construction sites (`&rank::WAL_GROUP` → entry
    /// `("WAL_GROUP", ..)`). The static analyzer (s2-lint L1/L2) resolves
    /// lock constructions through this table; a `&rank::X` it cannot find
    /// here is itself reported, so the table cannot silently go stale.
    pub static TABLE: &[(&str, &LockClass)] = &[
        ("SIM_HARNESS", &SIM_HARNESS),
        ("CLUSTER_TOPOLOGY", &CLUSTER_TOPOLOGY),
        ("CLUSTER_TABLES", &CLUSTER_TABLES),
        ("CLUSTER_WORKSPACES", &CLUSTER_WORKSPACES),
        ("CLUSTER_REPLICA_MARK", &CLUSTER_REPLICA_MARK),
        ("CORE_COMMIT", &CORE_COMMIT),
        ("CORE_TABLES", &CORE_TABLES),
        ("CORE_PINNED", &CORE_PINNED),
        ("CORE_ROWSTORE", &CORE_ROWSTORE),
        ("CORE_TABLE_STATE", &CORE_TABLE_STATE),
        ("CORE_SEG_DELETED", &CORE_SEG_DELETED),
        ("CORE_SEGFILES", &CORE_SEGFILES),
        ("WAL_GROUP", &WAL_GROUP),
        ("WAL_LOG", &WAL_LOG),
        ("CLUSTER_STORAGE_SETS", &CLUSTER_STORAGE_SETS),
        ("BLOB_STORE", &BLOB_STORE),
        ("BLOB_CACHE", &BLOB_CACHE),
        ("BLOB_UPLOADER", &BLOB_UPLOADER),
        ("BLOB_HEALTH_REGISTRY", &BLOB_HEALTH_REGISTRY),
        ("BLOB_BREAKER", &BLOB_BREAKER),
        ("EXEC_POOL_GROW", &EXEC_POOL_GROW),
        ("EXEC_POOL_QUEUE", &EXEC_POOL_QUEUE),
        ("EXEC_POOL_IDLE", &EXEC_POOL_IDLE),
        ("EXEC_DECISION_CACHE", &EXEC_DECISION_CACHE),
        ("ENCODING_READER", &ENCODING_READER),
        ("SIM_STORAGE", &SIM_STORAGE),
        ("SIM_PLAN", &SIM_PLAN),
        ("FAULT_REGISTRY", &FAULT_REGISTRY),
        ("OBS_REGISTRY", &OBS_REGISTRY),
        ("OBS_RING_SLOT", &OBS_RING_SLOT),
        ("TEST_A", &TEST_A),
        ("TEST_B", &TEST_B),
        ("TEST_C", &TEST_C),
    ];
}

#[cfg(debug_assertions)]
mod detect {
    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock};

    struct Held {
        id: u64,
        class: &'static LockClass,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    /// One observed acquisition ordering: `holding <from>, acquired <to>`,
    /// with the first sites that exhibited it (for the panic message).
    struct Edge {
        from_site: &'static Location<'static>,
        to_site: &'static Location<'static>,
    }

    /// class name -> (class name -> first witnessing sites). The raw std
    /// mutex here is intentional: the graph itself is outside the hierarchy.
    type Graph = HashMap<&'static str, HashMap<&'static str, Edge>>;

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Find a path `from -> ... -> to` in the acquisition graph, returning
    /// the class names along it (inclusive) if one exists.
    fn find_path(g: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut visited = std::collections::HashSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths are non-empty");
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = g.get(last) {
                for &next in nexts.keys() {
                    if visited.insert(next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push(p);
                    }
                }
            }
        }
        None
    }

    fn describe(held: &Held) -> String {
        format!("{} (rank {}) acquired at {}", held.class.name, held.class.order, held.site)
    }

    /// A held-stack entry; popping happens on guard drop (out-of-order drops
    /// are fine — entries are removed by id, not position).
    pub struct Token {
        id: u64,
    }

    impl Drop for Token {
        fn drop(&mut self) {
            let id = self.id;
            // Ignore access failures during thread teardown: the thread-local
            // may already be gone while statics' guards drop.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Record an acquisition of `class` at `site`, enforcing rank order and
    /// cycle-freedom against the currently held locks of this thread.
    pub fn acquire(class: &'static LockClass, site: &'static Location<'static>) -> Token {
        HELD.with(|held| {
            let held_ref = held.borrow();
            if let Some(top) = held_ref.iter().rfind(|h| h.class.name != class.name) {
                if class.order < top.class.order {
                    panic!(
                        "lock-order inversion: acquiring {} (rank {}) at {} while holding {}",
                        class.name,
                        class.order,
                        site,
                        describe(top),
                    );
                }
                if class.order == top.class.order {
                    // Equal rank: consult/extend the global acquisition graph.
                    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(path) = find_path(&g, class.name, top.class.name) {
                        let witness = g
                            .get(path[0])
                            .and_then(|m| m.get(path[1]))
                            .map(|e| format!("{} then {}", e.from_site, e.to_site))
                            .unwrap_or_else(|| "<unknown>".into());
                        panic!(
                            "lock-order inversion: acquiring {} at {} while holding {} would \
                             close the cycle {:?} (first observed: held {} at {})",
                            class.name,
                            site,
                            describe(top),
                            path,
                            path[0],
                            witness,
                        );
                    }
                    g.entry(top.class.name)
                        .or_default()
                        .entry(class.name)
                        .or_insert(Edge { from_site: top.site, to_site: site });
                }
            }
            drop(held_ref);
            let id = NEXT_ID.with(|n| {
                let mut n = n.borrow_mut();
                *n += 1;
                *n
            });
            held.borrow_mut().push(Held { id, class, site });
            Token { id }
        })
    }

    /// Test support: forget every recorded ordering (the graph is global, so
    /// detector tests would otherwise interfere with each other).
    pub fn reset_order_graph_for_tests() {
        graph().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Test support (debug builds): clear the global acquisition-order graph.
#[cfg(debug_assertions)]
pub fn reset_order_graph_for_tests() {
    detect::reset_order_graph_for_tests();
}

/// A ranked mutual-exclusion lock. `lock()` returns the guard directly
/// (parking_lot style); poisoning is recovered, never surfaced.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static LockClass,
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`]; releases the lock (and its held-stack entry) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: detect::Token,
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// New mutex belonging to `class` in the lock hierarchy.
    pub const fn new(class: &'static LockClass, value: T) -> Mutex<T> {
        let _ = class;
        Mutex {
            #[cfg(debug_assertions)]
            class,
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = detect::acquire(self.class, std::panic::Location::caller());
        MutexGuard {
            #[cfg(debug_assertions)]
            token,
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            token: detect::acquire(self.class, std::panic::Location::caller()),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Mutex<T> {
    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A ranked reader-writer lock; guards returned directly, poison recovered.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static LockClass,
    inner: StdRwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _token: detect::Token,
    inner: StdRwLockReadGuard<'a, T>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _token: detect::Token,
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New rwlock belonging to `class` in the lock hierarchy.
    pub const fn new(class: &'static LockClass, value: T) -> RwLock<T> {
        let _ = class;
        RwLock {
            #[cfg(debug_assertions)]
            class,
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = detect::acquire(self.class, std::panic::Location::caller());
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            _token: token,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = detect::acquire(self.class, std::panic::Location::caller());
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _token: token,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`]. Waiting keeps the guard's
/// held-stack entry (the blocked thread acquires nothing while parked, so
/// the bookkeeping stays truthful about re-acquisition on wake).
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: StdCondvar::new() }
    }

    /// Release the guard's lock, wait for a notification, re-acquire.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        let token = guard.token;
        MutexGuard {
            #[cfg(debug_assertions)]
            token,
            inner: self.inner.wait(guard.inner).unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Like [`Condvar::wait`] with a timeout; the bool reports a timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(debug_assertions)]
        let token = guard.token;
        let (inner, res) =
            self.inner.wait_timeout(guard.inner, timeout).unwrap_or_else(|e| e.into_inner());
        (
            MutexGuard {
                #[cfg(debug_assertions)]
                token,
                inner,
            },
            res.timed_out(),
        )
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(&rank::TEST_A, 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
        let l = RwLock::new(&rank::TEST_A, vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(&rank::TEST_A, false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
        let (m, cv) = &*pair;
        let (g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        assert!(*g);
    }

    #[test]
    fn rank_table_is_consistent() {
        use std::collections::BTreeSet;
        let idents: BTreeSet<&str> = rank::TABLE.iter().map(|(i, _)| *i).collect();
        assert_eq!(idents.len(), rank::TABLE.len(), "duplicate identifier in rank::TABLE");
        let names: BTreeSet<&str> = rank::TABLE.iter().map(|(_, c)| c.name).collect();
        assert_eq!(names.len(), rank::TABLE.len(), "duplicate class name in rank::TABLE");
        // Entries stay listed in hierarchy order so the table doubles as
        // readable documentation (equal orders — the test.a/test.b pair —
        // are fine).
        for w in rank::TABLE.windows(2) {
            assert!(
                w[0].1.order <= w[1].1.order,
                "rank::TABLE out of order: {} ({}) then {} ({})",
                w[0].0,
                w[0].1.order,
                w[1].0,
                w[1].1.order
            );
        }
    }

    #[test]
    fn rank_respecting_order_is_silent() {
        let a = Mutex::new(&rank::TEST_A, ());
        let c = Mutex::new(&rank::TEST_C, ());
        let _ga = a.lock();
        let _gc = c.lock(); // ascending rank: fine
    }

    #[test]
    #[cfg(debug_assertions)]
    fn descending_rank_panics_with_both_sites() {
        let c = Mutex::new(&rank::TEST_C, ());
        let a = Mutex::new(&rank::TEST_A, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gc = c.lock();
            let _ga = a.lock(); // rank 10_000 under rank 10_010: inversion
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("lock-order inversion"), "got: {msg}");
        assert!(msg.contains("test.c") && msg.contains("test.a"), "got: {msg}");
        assert!(msg.contains("sync.rs"), "sites must be named: {msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn cross_thread_equal_rank_cycle_panics_naming_both_sites() {
        detect::reset_order_graph_for_tests();
        let ab = Arc::new((Mutex::new(&rank::TEST_A, ()), Mutex::new(&rank::TEST_B, ())));
        // Thread 1 teaches the graph the A -> B ordering and exits cleanly:
        // nothing deadlocks yet, the ordering is merely recorded.
        let teach = Arc::clone(&ab);
        std::thread::spawn(move || {
            let _a = teach.0.lock();
            let _b = teach.1.lock();
        })
        .join()
        .unwrap();
        // Thread 2 acquires B then A. With thread 1 gone there is no actual
        // deadlock — but the orderings combined admit one, so the detector
        // must panic when the B -> A edge would close the cycle.
        let invert = Arc::clone(&ab);
        let err = std::thread::spawn(move || {
            let _b = invert.1.lock();
            let _a = invert.0.lock();
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("close the cycle"), "got: {msg}");
        assert!(msg.contains("test.a") && msg.contains("test.b"), "got: {msg}");
        // The report names thread 2's acquisition site plus both sites of
        // thread 1's historical A -> B edge, localizing the inversion.
        assert!(msg.matches("sync.rs").count() >= 3, "got: {msg}");
    }
}
