//! SQL-ish scalar values.
//!
//! The engine supports three physical types: 64-bit integers (also used for
//! dates, stored as days since 1970-01-01), doubles, and UTF-8 strings.
//! Strings are reference counted so that cloning a row out of an MVCC version
//! chain is cheap.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::hash::hash_bytes;
use crate::schema::DataType;

/// A scalar value flowing through the storage and query engines.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 64-bit signed integer (also backs the `Date` logical type).
    Int(i64),
    /// 64-bit IEEE float. Compared via total order (NaN sorts last).
    Double(f64),
    /// UTF-8 string, cheaply cloneable.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The physical type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, erroring on any other variant.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::InvalidArgument(format!("expected Int, got {other}"))),
        }
    }

    /// Double payload, widening integers (SQL numeric coercion).
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::InvalidArgument(format!("expected Double, got {other}"))),
        }
    }

    /// String payload, erroring on any other variant.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::InvalidArgument(format!("expected Str, got {other}"))),
        }
    }

    /// A stable 64-bit hash of the value, consistent with `Eq`.
    ///
    /// Used by shard keys and by the global secondary-index hash tables
    /// (which store only hashes, never values — paper §4.1).
    pub fn hash64(&self) -> u64 {
        match self {
            Value::Null => 0x9e37_79b9_7f4a_7c15,
            Value::Int(v) => hash_bytes(&v.to_le_bytes()),
            // Integral doubles hash like the equal Int so `a == b` implies
            // equal hashes across the numeric cross-type comparison.
            Value::Double(v) => {
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    hash_bytes(&(*v as i64).to_le_bytes())
                } else {
                    hash_bytes(&v.to_bits().to_le_bytes())
                }
            }
            Value::Str(s) => hash_bytes(s.as_bytes()),
        }
    }

    /// Total-order comparison used by sort keys and min/max metadata.
    /// NULL < Int/Double (numerics inter-compare) < Str; NaN sorts after
    /// every other double.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).total_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Double(3.0)), Ordering::Equal);
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Double(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_sorts_last_among_doubles() {
        assert!(Value::Double(f64::NAN) > Value::Double(f64::INFINITY));
    }

    #[test]
    fn hash_consistent_with_eq() {
        // Cross-type numeric equality must imply equal hashes.
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_eq!(Value::Int(3).hash64(), Value::Double(3.0).hash64());
        // -0.0 sorts before 0.0 under the total order (distinct values),
        // but they may still collide on hash; only a == b => h(a) == h(b) is required.
        assert!(Value::Double(-0.0) < Value::Double(0.0));
        assert_ne!(Value::Int(1).hash64(), Value::Int(2).hash64());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Int(7).as_double().unwrap(), 7.0);
        assert_eq!(Value::str("x").as_str().unwrap(), "x");
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
