//! Table schemas and table options (sort key, shard key, secondary/unique keys).

use crate::error::{Error, Result};

/// Physical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer; also backs dates (days since epoch).
    Int64,
    /// 64-bit IEEE float.
    Double,
    /// UTF-8 string.
    Str,
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Physical type.
    pub data_type: DataType,
    /// Whether NULL is storable in this column.
    pub nullable: bool,
}

impl ColumnDef {
    /// Non-nullable column shorthand.
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), data_type, nullable: false }
    }

    /// Nullable column shorthand.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), data_type, nullable: true }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema, validating that column names are unique.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::InvalidArgument(format!("duplicate column name {:?}", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Ordinal of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))
    }

    /// Column definition by ordinal.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }
}

/// A secondary-index definition: an ordered set of column ordinals plus a
/// uniqueness flag. Multi-column indexes share their per-column structures
/// (paper §4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Column ordinals covered by the index, in index-key order.
    pub columns: Vec<usize>,
    /// Whether this index enforces uniqueness (paper §4.1.2).
    pub unique: bool,
}

/// Table-level options mirroring S2DB's DDL surface for unified tables:
/// sort keys, shard keys, secondary hash indexes and unique keys (paper §1, §4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableOptions {
    /// Columns (ordinals) rows are sorted by within each segment; the LSM
    /// maintains sorted runs over this key. Empty = no sort key.
    pub sort_key: Vec<usize>,
    /// Columns whose hash decides the owning partition. Empty = random sharding.
    pub shard_key: Vec<usize>,
    /// Secondary (possibly unique) indexes.
    pub indexes: Vec<IndexDef>,
    /// Rows accumulated in the in-memory rowstore level before the background
    /// flusher converts them into a columnstore segment.
    pub flush_threshold_rows: usize,
    /// Target maximum rows per columnstore segment (S2DB uses ~1M).
    pub segment_rows: usize,
}

impl TableOptions {
    /// Defaults tuned for tests: small segments so LSM behaviour is exercised.
    pub fn new() -> TableOptions {
        TableOptions {
            sort_key: Vec::new(),
            shard_key: Vec::new(),
            indexes: Vec::new(),
            flush_threshold_rows: 4096,
            segment_rows: 102_400,
        }
    }

    /// Set the sort key.
    pub fn with_sort_key(mut self, cols: Vec<usize>) -> Self {
        self.sort_key = cols;
        self
    }

    /// Set the shard key.
    pub fn with_shard_key(mut self, cols: Vec<usize>) -> Self {
        self.shard_key = cols;
        self
    }

    /// Add a non-unique secondary index.
    pub fn with_index(mut self, name: impl Into<String>, cols: Vec<usize>) -> Self {
        self.indexes.push(IndexDef { name: name.into(), columns: cols, unique: false });
        self
    }

    /// Add a unique key.
    pub fn with_unique(mut self, name: impl Into<String>, cols: Vec<usize>) -> Self {
        self.indexes.push(IndexDef { name: name.into(), columns: cols, unique: true });
        self
    }

    /// Set the rowstore-level flush threshold.
    pub fn with_flush_threshold(mut self, rows: usize) -> Self {
        self.flush_threshold_rows = rows;
        self
    }

    /// Set the target segment size in rows.
    pub fn with_segment_rows(mut self, rows: usize) -> Self {
        self.segment_rows = rows;
        self
    }

    /// Validate the options against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let check = |cols: &[usize], what: &str| -> Result<()> {
            for &c in cols {
                if c >= schema.len() {
                    return Err(Error::InvalidArgument(format!(
                        "{what} references column ordinal {c} but table has {} columns",
                        schema.len()
                    )));
                }
            }
            Ok(())
        };
        check(&self.sort_key, "sort key")?;
        check(&self.shard_key, "shard key")?;
        for ix in &self.indexes {
            if ix.columns.is_empty() {
                return Err(Error::InvalidArgument(format!("index {:?} has no columns", ix.name)));
            }
            check(&ix.columns, "index")?;
        }
        for (i, ix) in self.indexes.iter().enumerate() {
            if self.indexes[..i].iter().any(|p| p.name == ix.name) {
                return Err(Error::InvalidArgument(format!("duplicate index name {:?}", ix.name)));
            }
        }
        if self.flush_threshold_rows == 0 || self.segment_rows == 0 {
            return Err(Error::InvalidArgument(
                "flush_threshold_rows and segment_rows must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int64),
            ColumnDef::nullable("b", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", DataType::Int64),
            ColumnDef::new("a", DataType::Str),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_of() {
        let s = schema2();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zz").is_err());
    }

    #[test]
    fn options_validate() {
        let s = schema2();
        assert!(TableOptions::new().with_sort_key(vec![0]).validate(&s).is_ok());
        assert!(TableOptions::new().with_sort_key(vec![5]).validate(&s).is_err());
        assert!(TableOptions::new().with_index("i", vec![]).validate(&s).is_err());
        let dup = TableOptions::new().with_index("i", vec![0]).with_unique("i", vec![1]);
        assert!(dup.validate(&s).is_err());
    }

    #[test]
    fn options_builders() {
        let o = TableOptions::new()
            .with_shard_key(vec![0])
            .with_unique("pk", vec![0])
            .with_flush_threshold(10)
            .with_segment_rows(100);
        assert_eq!(o.shard_key, vec![0]);
        assert!(o.indexes[0].unique);
        assert_eq!(o.flush_threshold_rows, 10);
        assert_eq!(o.segment_rows, 100);
    }
}
