//! A compact bit vector.
//!
//! This is the representation S2DB uses for deleted rows in columnstore
//! segment metadata (paper §2.1.2, §4): scans apply it as a filter instead of
//! reconciling LSM levels, and move transactions install new versions of it.

use crate::error::{Error, Result};
use crate::io::{ByteReader, ByteWriter};

/// Fixed-length bit vector with word-at-a-time iteration over set bits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> BitVec {
        BitVec { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-one bit vector of `len` bits (tail bits beyond `len` stay zero so
    /// equality and serialization remain structural).
    pub fn ones(len: usize) -> BitVec {
        let mut b = BitVec { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// Zero any bits at positions >= `len` in the final word.
    fn mask_tail(&mut self) {
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Set bit `i` to 0.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn set_to(&mut self, i: usize, v: bool) {
        if v {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Set every bit in `[start, end)` to 1, word-at-a-time.
    pub fn set_range(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end && end <= self.len);
        let mut i = start;
        while i < end {
            let word = i / 64;
            let lo = i % 64;
            let hi = (end - word * 64).min(64);
            let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
            self.words[word] |= mask;
            i = word * 64 + hi;
        }
    }

    /// Set every bit in `[start, end)` to 0, word-at-a-time.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end && end <= self.len);
        let mut i = start;
        while i < end {
            let word = i / 64;
            let lo = i % 64;
            let hi = (end - word * 64).min(64);
            let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
            self.words[word] &= !mask;
            i = word * 64 + hi;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND with another vector of the same length.
    pub fn intersect_with(&mut self, other: &BitVec) -> Result<()> {
        if self.len != other.len {
            return Err(Error::InvalidArgument(format!(
                "bitvec length mismatch: {} vs {}",
                self.len, other.len
            )));
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        Ok(())
    }

    /// Bitwise OR with another vector of the same length.
    pub fn union_with(&mut self, other: &BitVec) -> Result<()> {
        if self.len != other.len {
            return Err(Error::InvalidArgument(format!(
                "bitvec length mismatch: {} vs {}",
                self.len, other.len
            )));
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        Ok(())
    }

    /// Iterate over the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Serialize: `u64 len` then the words.
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.put_u64(self.len as u64);
        for word in &self.words {
            w.put_u64(*word);
        }
    }

    /// Deserialize the format produced by [`BitVec::write_to`].
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<BitVec> {
        let len = r.get_u64()? as usize;
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(r.get_u64()?);
        }
        // Reject garbage in the tail word so equality stays structural.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(Error::Corruption("bitvec tail bits set beyond len".into()));
                }
            }
        }
        Ok(BitVec { words, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitVec::zeros(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitVec::zeros(200);
        for i in [3usize, 63, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn union() {
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        a.set(1);
        b.set(69);
        a.union_with(&b).unwrap();
        assert!(a.get(1) && a.get(69));
        let c = BitVec::zeros(71);
        assert!(a.union_with(&c).is_err());
    }

    #[test]
    fn ones_and_ranges() {
        let b = BitVec::ones(130);
        assert_eq!(b.count_ones(), 130);
        assert!(b.get(0) && b.get(129));
        // Tail bits stay zero: ones() round-trips through serialization.
        let mut w = ByteWriter::new();
        b.write_to(&mut w);
        let buf = w.into_bytes();
        assert_eq!(BitVec::read_from(&mut ByteReader::new(&buf)).unwrap(), b);

        let mut r = BitVec::zeros(200);
        r.set_range(3, 170);
        assert_eq!(r.count_ones(), 167);
        assert!(!r.get(2) && r.get(3) && r.get(169) && !r.get(170));
        r.clear_range(64, 128);
        assert_eq!(r.count_ones(), 167 - 64);
        assert!(r.get(63) && !r.get(64) && !r.get(127) && r.get(128));
        r.set_range(100, 100); // empty range is a no-op
        assert!(!r.get(100));
    }

    #[test]
    fn intersect() {
        let mut a = BitVec::ones(70);
        let mut b = BitVec::zeros(70);
        b.set(1);
        b.set(69);
        a.intersect_with(&b).unwrap();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 69]);
        let c = BitVec::zeros(71);
        assert!(a.intersect_with(&c).is_err());
        let mut d = BitVec::zeros(70);
        d.set_to(5, true);
        d.set_to(5, false);
        assert_eq!(d.count_ones(), 0);
    }

    #[test]
    fn roundtrip() {
        let mut b = BitVec::zeros(77);
        b.set(0);
        b.set(76);
        let mut w = ByteWriter::new();
        b.write_to(&mut w);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let back = BitVec::read_from(&mut r).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn corrupt_tail_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(3); // len 3 but word has high bits set
        w.put_u64(u64::MAX);
        let buf = w.into_bytes();
        assert!(BitVec::read_from(&mut ByteReader::new(&buf)).is_err());
    }
}
