//! CRC32 (IEEE 802.3 polynomial), table-driven, from scratch.
//!
//! Every log page and data-file footer in the workspace carries a CRC32 so
//! torn writes and corruption are detected during recovery.

/// Precomputed table for the reflected polynomial 0xEDB88320.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Compute the CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental CRC32 for streaming writers.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello world, this is a log page";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some payload bytes".to_vec();
        let orig = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), orig);
    }
}
