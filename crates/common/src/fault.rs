//! Failpoint registry for deterministic fault injection (used by s2-sim).
//!
//! Production code marks *sites* — named points in the commit, flush, merge,
//! upload and restore paths — with [`failpoint`] (fallible: the site may be
//! told to return an error) or [`crash_point`] (infallible in normal
//! operation: the site may only be told to "crash", modelled as a panic with
//! a [`CrashPoint`] payload that a harness catches with `catch_unwind` before
//! recovering a fresh engine over the surviving bytes).
//!
//! With no hook installed — the production configuration — both entry points
//! are a single relaxed atomic load, so sites are free to sit on hot paths.
//! The module keeps zero dependencies (std only) so every crate in the
//! workspace can call into it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::sync::{rank, RwLock};
use crate::{Error, Result};

/// What an installed hook wants a site to do.
pub enum FaultAction {
    /// Proceed normally.
    Continue,
    /// Return this error from the site ([`failpoint`] only; [`crash_point`]
    /// sites are infallible and treat this as [`FaultAction::Continue`]).
    Error(Error),
    /// Simulate a hard crash: unwind with a [`CrashPoint`] panic payload.
    Crash,
}

/// Decides the fate of each site hit. Implementations must be deterministic
/// given their own state if runs are to be replayable.
pub trait FaultHook: Send + Sync {
    /// Called once per site hit while the hook is installed.
    fn evaluate(&self, site: &str) -> FaultAction;
}

/// Panic payload for a simulated crash. Harnesses downcast the payload of a
/// caught unwind to this type to distinguish injected crashes from real bugs.
#[derive(Debug, Clone)]
pub struct CrashPoint {
    /// The site that crashed.
    pub site: String,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static HOOK: RwLock<Option<Arc<dyn FaultHook>>> = RwLock::new(&rank::FAULT_REGISTRY, None);

/// Install a hook; subsequent site hits consult it. Replaces any prior hook.
pub fn install(hook: Arc<dyn FaultHook>) {
    let mut slot = HOOK.write();
    *slot = Some(hook);
    ARMED.store(true, Ordering::SeqCst);
}

/// Remove the installed hook; sites return to zero-cost pass-through.
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    let mut slot = HOOK.write();
    *slot = None;
}

/// True while a hook is installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn current_hook() -> Option<Arc<dyn FaultHook>> {
    // The guard is dropped before the hook is evaluated, so hooks may take
    // locks of any rank without ordering against the registry.
    HOOK.read().clone()
}

fn crash(site: &str) -> ! {
    // panic_any keeps the payload downcastable; the guard is dropped before
    // we get here so the registry itself never poisons.
    std::panic::panic_any(CrashPoint { site: site.to_string() })
}

/// A fallible injection site. Returns `Ok(())` unless an installed hook
/// injects an error; may also unwind with a [`CrashPoint`] payload.
#[inline]
pub fn failpoint(site: &str) -> Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match current_hook() {
        None => Ok(()),
        Some(hook) => match hook.evaluate(site) {
            FaultAction::Continue => Ok(()),
            FaultAction::Error(e) => Err(e),
            FaultAction::Crash => crash(site),
        },
    }
}

/// An infallible injection site: the only injectable fault is a crash.
/// Used where an error return would wedge the engine rather than model a
/// power failure (e.g. mid-commit after row locks are resolved).
#[inline]
pub fn crash_point(site: &str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    if let Some(hook) = current_hook() {
        if matches!(hook.evaluate(site), FaultAction::Crash) {
            crash(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{rank, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // The registry is process-global; serialize tests that install hooks.
    // Ranked as the outermost harness class: the body acquires the
    // fault.registry lock (rank 800) beneath it.
    static LOCK: Mutex<()> = Mutex::new(&rank::SIM_HARNESS, ());

    struct Always(fn() -> FaultAction);
    impl FaultHook for Always {
        fn evaluate(&self, _site: &str) -> FaultAction {
            (self.0)()
        }
    }

    #[test]
    fn unarmed_sites_pass_through() {
        let _g = LOCK.lock();
        clear();
        assert!(failpoint("x").is_ok());
        crash_point("x"); // must not panic
    }

    #[test]
    fn error_injection_and_clear() {
        let _g = LOCK.lock();
        install(Arc::new(Always(|| FaultAction::Error(Error::Unavailable("inj".into())))));
        assert!(matches!(failpoint("s"), Err(Error::Unavailable(_))));
        // crash_point ignores Error actions: the site is infallible.
        crash_point("s");
        clear();
        assert!(failpoint("s").is_ok());
    }

    #[test]
    fn crash_payload_is_downcastable() {
        let _g = LOCK.lock();
        install(Arc::new(Always(|| FaultAction::Crash)));
        let err = catch_unwind(AssertUnwindSafe(|| failpoint("wal.sync"))).unwrap_err();
        let cp = err.downcast_ref::<CrashPoint>().expect("CrashPoint payload");
        assert_eq!(cp.site, "wal.sync");
        clear();
    }
}
