//! Retry policies for operations against unreliable backends (the blob
//! store above all — paper §3: blob storage is *off the commit path*, so
//! everything that talks to it must tolerate transient failure without
//! wedging a worker or a query).
//!
//! Three pieces:
//!
//! - [`jittered_backoff`]: deterministic exponential backoff with
//!   multiplicative jitter. The jitter draw is a pure function of
//!   `(salt, attempt)` — no RNG state, no wall clock — so retry schedules
//!   are replayable under the sim harness while still de-correlating
//!   concurrent retriers (each passes a different salt, e.g. a key hash).
//! - [`RetryPolicy`]: per-operation budget — max attempts, backoff shape,
//!   and a hard deadline. The deadline is the "no query ever blocks longer
//!   than its budget" half of the resilience contract.
//! - [`retry`]: drives a fallible closure under a policy, consulting
//!   [`Error::retry_class`] so permanent errors (corruption, bad arguments)
//!   fail immediately instead of burning the budget.
//!
//! The module keeps zero dependencies (std only), like the rest of this
//! crate, so every workspace layer can share one retry vocabulary.

use std::time::{Duration, Instant};

use crate::error::RetryClass;
use crate::Result;

/// FNV-1a — cheap stable salt from a string key (e.g. an object key), so
/// two uploaders retrying different keys jitter differently.
pub fn salt_from_key(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: one well-mixed 64-bit value per input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff with deterministic jitter: `base << attempt`, capped
/// at `max`, then scaled into `[50%, 100%]` by a jitter factor drawn from
/// `(salt, attempt)`. Attempt numbering starts at 0 (first *retry* delay).
///
/// The half-to-full band (rather than full jitter from zero) keeps a lower
/// bound on spacing so a hot retry loop cannot collapse into a busy spin,
/// while still spreading concurrent retriers across the window.
pub fn jittered_backoff(base: Duration, max: Duration, attempt: u32, salt: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16)).min(max);
    let bits = mix(salt ^ u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d));
    // Jitter factor in [0.5, 1.0): 2^-1 + uniform * 2^-1.
    let frac = 0.5 + ((bits >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
    exp.mul_f64(frac)
}

/// A bounded retry budget for one logical operation.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first). 1 = no retries.
    pub max_attempts: u32,
    /// First retry delay (before jitter).
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Hard wall-clock budget for the whole operation, sleeps included. No
    /// retry is begun once the deadline has passed.
    pub deadline: Duration,
}

impl RetryPolicy {
    /// Policy tuned for blob-store round trips: a few quick attempts inside
    /// a sub-second budget. Callers on latency-sensitive paths shrink
    /// `deadline`; background shippers stretch it.
    pub fn blob_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            deadline: Duration::from_millis(800),
        }
    }

    /// No retries at all: one attempt, zero added latency. Used where an
    /// outer layer (the uploader's requeue loop) owns the retry schedule
    /// and an inner retry would compound with it.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            deadline: Duration::from_secs(3600),
        }
    }

    /// The delay before retry number `attempt` (0-based), jittered by `salt`.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        jittered_backoff(self.base_delay, self.max_delay, attempt, salt)
    }
}

/// Outcome classification for [`retry`]'s bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// First attempt succeeded.
    FirstTry,
    /// Succeeded after `retries` retries.
    Retried(u32),
}

/// Run `op` under `policy`: transient errors are retried with jittered
/// backoff until the attempt or deadline budget is exhausted; permanent
/// errors (and budget exhaustion) return the last error. `salt`
/// de-correlates concurrent retriers (see [`salt_from_key`]).
pub fn retry<T>(
    policy: &RetryPolicy,
    salt: u64,
    mut op: impl FnMut() -> Result<T>,
) -> Result<(T, RetryOutcome)> {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => {
                return Ok((
                    v,
                    if attempt == 0 {
                        RetryOutcome::FirstTry
                    } else {
                        RetryOutcome::Retried(attempt)
                    },
                ))
            }
            Err(e) => {
                let class = e.retry_class();
                if class == RetryClass::Permanent || attempt + 1 >= policy.max_attempts {
                    return Err(e);
                }
                // Contended errors (lock conflicts) retry on a short fixed
                // tick — exponential spacing just delays the winner.
                let sleep = match class {
                    RetryClass::Contended => policy.base_delay,
                    _ => policy.delay(attempt, salt),
                };
                if started.elapsed() + sleep > policy.deadline {
                    return Err(e);
                }
                std::thread::sleep(sleep);
                attempt += 1;
            }
        }
    }
}

/// A deadline helper for loops that poll rather than call [`retry`] (e.g.
/// the not-found-yet window on replica cold reads). Tracks one budget and
/// answers "may I sleep `d` more?".
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBudget {
    started: Instant,
    budget: Duration,
}

impl DeadlineBudget {
    /// Start a budget of `budget` from now.
    pub fn new(budget: Duration) -> DeadlineBudget {
        DeadlineBudget { started: Instant::now(), budget }
    }

    /// Budget remaining (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.started.elapsed())
    }

    /// True once the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Sleep for `d` capped to the remaining budget; returns false (without
    /// sleeping) when the budget is already spent.
    pub fn sleep(&self, d: Duration) -> bool {
        let r = self.remaining();
        if r.is_zero() {
            return false;
        }
        std::thread::sleep(d.min(r));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(100);
        let d0 = jittered_backoff(base, max, 0, 1);
        let d3 = jittered_backoff(base, max, 3, 1);
        let d9 = jittered_backoff(base, max, 9, 1);
        assert!(d0 >= base / 2 && d0 <= base, "{d0:?}");
        assert!(d3 >= Duration::from_millis(40) && d3 <= Duration::from_millis(80), "{d3:?}");
        assert!(d9 >= max / 2 && d9 <= max, "{d9:?}");
    }

    #[test]
    fn jitter_is_deterministic_but_salt_sensitive() {
        let base = Duration::from_millis(8);
        let max = Duration::from_secs(1);
        assert_eq!(jittered_backoff(base, max, 2, 42), jittered_backoff(base, max, 2, 42));
        // Over a few salts at least one pair must differ (jitter is real).
        let d: Vec<Duration> = (0..8).map(|s| jittered_backoff(base, max, 2, s)).collect();
        assert!(d.iter().any(|x| *x != d[0]), "no jitter across salts: {d:?}");
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut left = 2;
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(1),
        };
        let (v, outcome) = retry(&policy, 7, || {
            if left > 0 {
                left -= 1;
                Err(Error::Unavailable("blip".into()))
            } else {
                Ok(99)
            }
        })
        .unwrap();
        assert_eq!(v, 99);
        assert_eq!(outcome, RetryOutcome::Retried(2));
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let mut calls = 0;
        let policy = RetryPolicy::blob_default();
        let r: Result<((), RetryOutcome)> = retry(&policy, 0, || {
            calls += 1;
            Err(Error::Corruption("bad magic".into()))
        });
        assert!(matches!(r, Err(Error::Corruption(_))));
        assert_eq!(calls, 1, "permanent error must not be retried");
    }

    #[test]
    fn attempt_budget_is_respected() {
        let mut calls = 0u32;
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            deadline: Duration::from_secs(1),
        };
        let r: Result<((), RetryOutcome)> = retry(&policy, 0, || {
            calls += 1;
            Err(Error::Unavailable("down".into()))
        });
        assert!(r.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn deadline_budget_cuts_retries_short() {
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(20),
            deadline: Duration::from_millis(60),
        };
        let t0 = Instant::now();
        let r: Result<((), RetryOutcome)> =
            retry(&policy, 0, || Err(Error::Unavailable("down".into())));
        assert!(r.is_err());
        assert!(t0.elapsed() < Duration::from_millis(500), "deadline ignored");
    }

    #[test]
    fn deadline_budget_helper() {
        let b = DeadlineBudget::new(Duration::from_millis(30));
        assert!(!b.expired());
        assert!(b.sleep(Duration::from_millis(10)));
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.expired());
        assert!(!b.sleep(Duration::from_millis(10)));
        assert_eq!(b.remaining(), Duration::ZERO);
    }
}
