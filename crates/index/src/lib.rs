//! Two-level secondary indexes for LSM columnstore storage (paper §4.1).
//!
//! Level one: per-segment *inverted indexes* mapping each distinct value of
//! an indexed column to a postings list of row offsets, built once when a
//! segment is created. Level two: a *global index* — an LSM of immutable
//! hash tables mapping value hashes to `(segment, postings offset)` pairs —
//! so point lookups probe O(log N) tables instead of O(N) per-segment
//! structures. Postings lists support forward seeking so multi-index
//! intersections skip ahead efficiently.

pub mod global;
pub mod inverted;
pub mod postings;

pub use global::{GlobalIndex, HashLevel};
pub use inverted::{InvertedIndex, InvertedIndexBuilder, INVERTED_MAGIC};
pub use postings::{encode_postings, intersect, union, PostingsReader, BLOCK_SIZE};
