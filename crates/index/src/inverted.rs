//! Per-segment inverted indexes (paper §4.1, figure 3).
//!
//! "For each segment, an inverted index is built to map values of the
//! indexed column to a postings list, which stores row offsets in the
//! segment with that value." The index is built once when the segment is
//! created and never changes. The *entry offset* of each distinct value is
//! what the global index stores inline, so a lookup lands directly on the
//! right postings list with no extra indirection.
//!
//! NULL values are not indexed (IS NULL predicates use scans), matching
//! common secondary-index semantics.

use std::collections::BTreeMap;
use std::sync::Arc;

use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{Error, Result, Value};

use crate::postings::{encode_postings, PostingsReader};

/// Inverted-index blob magic ("S2IV").
pub const INVERTED_MAGIC: u32 = 0x5649_3253;

/// Builds an inverted index while a segment is being created.
#[derive(Default)]
pub struct InvertedIndexBuilder {
    map: BTreeMap<Value, Vec<u32>>,
}

impl InvertedIndexBuilder {
    /// Empty builder.
    pub fn new() -> InvertedIndexBuilder {
        InvertedIndexBuilder::default()
    }

    /// Record that `value` occurs at segment row `row`. Rows must be added in
    /// ascending order per value (segment build order guarantees this).
    /// NULLs are skipped.
    pub fn add(&mut self, value: &Value, row: u32) {
        if value.is_null() {
            return;
        }
        self.map.entry(value.clone()).or_default().push(row);
    }

    /// Number of distinct indexed values so far.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Serialize into an immutable [`InvertedIndex`].
    pub fn finish(self) -> InvertedIndex {
        let n = self.map.len();
        // Entries first (into a scratch buffer) to learn their offsets.
        let mut entries = ByteWriter::new();
        let mut directory: Vec<(u64, u32)> = Vec::with_capacity(n); // (hash, entry_off)
        for (value, rows) in &self.map {
            directory.push((value.hash64(), entries.len() as u32));
            entries.put_value(value);
            encode_postings(&mut entries, rows);
        }
        let mut w = ByteWriter::with_capacity(entries.len() + n * 12 + 16);
        w.put_u32(INVERTED_MAGIC);
        w.put_varint(n as u64);
        // Directory: (hash, offset) pairs in value order; offsets are relative
        // to the entries section. The absolute entry offset handed to the
        // global index is `entries_start + rel`.
        for (hash, off) in &directory {
            w.put_u64(*hash);
            w.put_u32(*off);
        }
        let entries_start = w.len();
        w.put_raw(entries.as_slice());
        InvertedIndex { bytes: Arc::new(w.into_bytes()), n_entries: n, entries_start }
    }
}

/// An immutable per-segment inverted index.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    bytes: Arc<Vec<u8>>,
    n_entries: usize,
    entries_start: usize,
}

impl InvertedIndex {
    /// Parse a serialized index.
    pub fn from_bytes(bytes: Arc<Vec<u8>>) -> Result<InvertedIndex> {
        let mut r = ByteReader::new(&bytes);
        let magic = r.get_u32()?;
        if magic != INVERTED_MAGIC {
            return Err(Error::Corruption(format!("bad inverted index magic {magic:#x}")));
        }
        let n_entries = r.get_varint()? as usize;
        let dir_start = r.position();
        let entries_start = dir_start + n_entries * 12;
        if entries_start > bytes.len() {
            return Err(Error::Corruption("inverted index directory truncated".into()));
        }
        Ok(InvertedIndex { bytes: Arc::clone(&bytes), n_entries, entries_start })
    }

    /// The serialized bytes (for bundling into data files).
    pub fn as_bytes(&self) -> &Arc<Vec<u8>> {
        &self.bytes
    }

    /// Number of distinct indexed values.
    pub fn entry_count(&self) -> usize {
        self.n_entries
    }

    fn dir_entry(&self, i: usize) -> (u64, u32) {
        let off = 4 + varint_len(self.n_entries as u64) + i * 12;
        let hash = u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
        let rel = u32::from_le_bytes(self.bytes[off + 8..off + 12].try_into().unwrap());
        (hash, rel)
    }

    /// Iterate `(value_hash, absolute_entry_offset)` pairs for global-index
    /// construction.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..self.n_entries).map(move |i| {
            let (hash, rel) = self.dir_entry(i);
            (hash, (self.entries_start + rel as usize) as u32)
        })
    }

    /// Open the entry at `entry_off` (an offset produced by
    /// [`InvertedIndex::iter_entries`]), verifying the probe value matches
    /// (hash collisions are resolved here, since the global index stores only
    /// hashes — paper §4.1). Returns the postings reader, or `None` on a
    /// collision mismatch.
    pub fn postings_at(&self, entry_off: u32, probe: &Value) -> Result<Option<PostingsReader<'_>>> {
        let mut r = ByteReader::new(&self.bytes);
        r.seek(entry_off as usize)?;
        let stored = r.get_value()?;
        if &stored != probe {
            return Ok(None);
        }
        Ok(Some(PostingsReader::open(&self.bytes, r.position())?))
    }

    /// Absolute entry offset for `probe`, if indexed (binary search). Used
    /// when building the multi-column tuple index, whose global entries store
    /// the per-column entry offsets (paper §4.1.1).
    pub fn entry_offset_of(&self, probe: &Value) -> Result<Option<u32>> {
        let mut lo = 0usize;
        let mut hi = self.n_entries;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (_, rel) = self.dir_entry(mid);
            let off = self.entries_start + rel as usize;
            let mut r = ByteReader::new(&self.bytes);
            r.seek(off)?;
            let v = r.get_value()?;
            match v.total_cmp(probe) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Some(off as u32)),
            }
        }
        Ok(None)
    }

    /// Direct lookup by value (binary search over the value-ordered entries;
    /// used for rebuilds and tests — the query path goes through the global
    /// index).
    pub fn lookup(&self, probe: &Value) -> Result<Option<PostingsReader<'_>>> {
        // The directory is ordered by value; compare by decoding entries.
        let mut lo = 0usize;
        let mut hi = self.n_entries;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (_, rel) = self.dir_entry(mid);
            let off = self.entries_start + rel as usize;
            let mut r = ByteReader::new(&self.bytes);
            r.seek(off)?;
            let v = r.get_value()?;
            match v.total_cmp(probe) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return Ok(Some(PostingsReader::open(&self.bytes, r.position())?));
                }
            }
        }
        Ok(None)
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(values: &[(&str, &[u32])]) -> InvertedIndex {
        let mut b = InvertedIndexBuilder::new();
        for (v, rows) in values {
            for &r in *rows {
                b.add(&Value::str(*v), r);
            }
        }
        b.finish()
    }

    #[test]
    fn lookup_by_value() {
        let ix = build(&[("apple", &[1, 5, 9]), ("banana", &[2]), ("cherry", &[0, 3])]);
        assert_eq!(ix.entry_count(), 3);
        let mut p = ix.lookup(&Value::str("apple")).unwrap().unwrap();
        assert_eq!(p.collect_remaining().unwrap(), vec![1, 5, 9]);
        assert!(ix.lookup(&Value::str("durian")).unwrap().is_none());
    }

    #[test]
    fn entry_offsets_resolve_with_verification() {
        let ix = build(&[("x", &[1]), ("y", &[2, 3])]);
        let entries: Vec<(u64, u32)> = ix.iter_entries().collect();
        assert_eq!(entries.len(), 2);
        for (hash, off) in entries {
            // Find which value this entry belongs to by probing both.
            let px = ix.postings_at(off, &Value::str("x")).unwrap();
            let py = ix.postings_at(off, &Value::str("y")).unwrap();
            assert!(px.is_some() ^ py.is_some(), "exactly one value matches");
            if let Some(mut p) = px {
                assert_eq!(hash, Value::str("x").hash64());
                assert_eq!(p.collect_remaining().unwrap(), vec![1]);
            }
        }
        // A collision probe with the wrong value is rejected.
        let (_, off0) = ix.iter_entries().next().unwrap();
        assert!(ix.postings_at(off0, &Value::str("zzz")).unwrap().is_none());
    }

    #[test]
    fn nulls_not_indexed() {
        let mut b = InvertedIndexBuilder::new();
        b.add(&Value::Null, 0);
        b.add(&Value::Int(1), 1);
        let ix = b.finish();
        assert_eq!(ix.entry_count(), 1);
        assert!(ix.lookup(&Value::Null).unwrap().is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let ix = build(&[("a", &[0, 1, 2]), ("b", &[3])]);
        let back = InvertedIndex::from_bytes(Arc::clone(ix.as_bytes())).unwrap();
        let mut p = back.lookup(&Value::str("a")).unwrap().unwrap();
        assert_eq!(p.collect_remaining().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn int_values_ordered() {
        let mut b = InvertedIndexBuilder::new();
        for (v, r) in [(100i64, 0u32), (5, 1), (50, 2), (5, 3)] {
            b.add(&Value::Int(v), r);
        }
        let ix = b.finish();
        let mut p = ix.lookup(&Value::Int(5)).unwrap().unwrap();
        assert_eq!(p.collect_remaining().unwrap(), vec![1, 3]);
        assert!(ix.lookup(&Value::Int(7)).unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(InvertedIndex::from_bytes(Arc::new(vec![0, 1, 2, 3, 4])).is_err());
    }
}
