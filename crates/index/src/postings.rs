//! Postings lists: ascending row offsets, delta-varint encoded in blocks
//! with a skip directory so readers can *forward seek* (paper §4.1:
//! "S2DB's postings list format supports forward seeking, so that sections
//! in a long postings list can be skipped during the merge").

use s2_common::io::{ByteReader, ByteWriter};
use s2_common::Result;

/// Row offsets per skip block.
pub const BLOCK_SIZE: usize = 128;

/// Encode an ascending list of row offsets.
///
/// Layout: `varint count | varint n_blocks | n_blocks × (u32 first_row,
/// u32 byte_off) | delta-varint payload` where `byte_off` is relative to the
/// payload start.
pub fn encode_postings(w: &mut ByteWriter, rows: &[u32]) {
    debug_assert!(rows.windows(2).all(|p| p[0] < p[1]), "postings must be strictly ascending");
    w.put_varint(rows.len() as u64);
    let n_blocks = rows.len().div_ceil(BLOCK_SIZE);
    w.put_varint(n_blocks as u64);
    // First pass: encode payload per block to learn offsets.
    let mut payload = ByteWriter::new();
    let mut directory = Vec::with_capacity(n_blocks);
    for block in rows.chunks(BLOCK_SIZE) {
        directory.push((block[0], payload.len() as u32));
        let mut prev = 0u32;
        for (i, &r) in block.iter().enumerate() {
            // First entry of each block is absolute so blocks decode standalone.
            if i == 0 {
                payload.put_varint(r as u64);
            } else {
                payload.put_varint((r - prev) as u64);
            }
            prev = r;
        }
    }
    for (first, off) in directory {
        w.put_u32(first);
        w.put_u32(off);
    }
    w.put_raw(payload.as_slice());
}

/// Streaming reader over an encoded postings list with forward seeking.
pub struct PostingsReader<'a> {
    buf: &'a [u8],
    count: usize,
    /// (first_row, payload_byte_off) per block.
    directory: Vec<(u32, u32)>,
    payload_start: usize,
    /// Cursor state.
    consumed: usize,
    block: usize,
    in_block: usize,
    cursor: usize,
    prev: u32,
}

impl<'a> PostingsReader<'a> {
    /// Open a postings list at `offset` within `buf`.
    pub fn open(buf: &'a [u8], offset: usize) -> Result<PostingsReader<'a>> {
        let mut r = ByteReader::new(buf);
        r.seek(offset)?;
        let count = r.get_varint()? as usize;
        let n_blocks = r.get_varint()? as usize;
        let mut directory = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let first = r.get_u32()?;
            let off = r.get_u32()?;
            directory.push((first, off));
        }
        let payload_start = r.position();
        Ok(PostingsReader {
            buf,
            count,
            directory,
            payload_start,
            consumed: 0,
            block: 0,
            in_block: 0,
            cursor: payload_start,
            prev: 0,
        })
    }

    /// Total entries in the list.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn read_varint(&mut self) -> Result<u64> {
        let mut r = ByteReader::new(self.buf);
        r.seek(self.cursor)?;
        let v = r.get_varint()?;
        self.cursor = r.position();
        Ok(v)
    }

    /// Next row offset, or `None` at end. Not an [`Iterator`]: decoding can
    /// fail, so the signature is `Result<Option<_>>` rather than `Option<_>`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<u32>> {
        if self.consumed >= self.count {
            return Ok(None);
        }
        let delta = self.read_varint()? as u32;
        let row = if self.in_block == 0 { delta } else { self.prev + delta };
        self.prev = row;
        self.consumed += 1;
        self.in_block += 1;
        if self.in_block == BLOCK_SIZE {
            self.block += 1;
            self.in_block = 0;
        }
        Ok(Some(row))
    }

    /// Advance to the first entry `>= target`, skipping whole blocks via the
    /// directory, and return it (or `None` if the list is exhausted).
    pub fn seek(&mut self, target: u32) -> Result<Option<u32>> {
        // Jump over blocks whose successor block still starts below target.
        while self.block + 1 < self.directory.len() && self.directory[self.block + 1].0 <= target {
            self.block += 1;
            self.in_block = 0;
            self.cursor = self.payload_start + self.directory[self.block].1 as usize;
            self.consumed = self.block * BLOCK_SIZE;
            self.prev = 0;
        }
        while let Some(row) = self.next()? {
            if row >= target {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Decode the remaining entries into a vector.
    pub fn collect_remaining(&mut self) -> Result<Vec<u32>> {
        let mut out = Vec::with_capacity(self.count - self.consumed);
        while let Some(r) = self.next()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Intersect several postings lists (AND over indexed filters, paper §4.1)
/// using forward seeking: the current candidate leapfrogs across lists.
pub fn intersect(mut readers: Vec<PostingsReader<'_>>) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    if readers.is_empty() {
        return Ok(out);
    }
    if readers.iter().any(|r| r.is_empty()) {
        return Ok(out);
    }
    // Start from the first list's head.
    let mut candidate = match readers[0].next()? {
        Some(c) => c,
        None => return Ok(out),
    };
    let n = readers.len();
    let mut agreed = 1usize; // how many consecutive lists matched candidate
    let mut i = 1usize % n;
    loop {
        if agreed == n {
            out.push(candidate);
            // Advance the current list past the candidate.
            match readers[i].seek(candidate + 1)? {
                Some(next) => {
                    candidate = next;
                    agreed = 1;
                    i = (i + 1) % n;
                }
                None => break,
            }
            continue;
        }
        match readers[i].seek(candidate)? {
            None => break,
            Some(row) if row == candidate => {
                agreed += 1;
                i = (i + 1) % n;
            }
            Some(row) => {
                candidate = row;
                agreed = 1;
                i = (i + 1) % n;
            }
        }
    }
    Ok(out)
}

/// Union several postings lists (OR over indexed filters), deduplicated.
pub fn union(mut readers: Vec<PostingsReader<'_>>) -> Result<Vec<u32>> {
    let mut all = Vec::new();
    for r in &mut readers {
        all.extend(r.collect_remaining()?);
    }
    all.sort_unstable();
    all.dedup();
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(rows: &[u32]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        encode_postings(&mut w, rows);
        w.into_bytes()
    }

    #[test]
    fn roundtrip_small_and_large() {
        for rows in
            [vec![], vec![0u32], vec![5, 10, 1000], (0..1000).map(|i| i * 3).collect::<Vec<u32>>()]
        {
            let buf = encode(&rows);
            let mut r = PostingsReader::open(&buf, 0).unwrap();
            assert_eq!(r.len(), rows.len());
            assert_eq!(r.collect_remaining().unwrap(), rows);
        }
    }

    #[test]
    fn seek_skips_blocks() {
        let rows: Vec<u32> = (0..2000).map(|i| i * 2).collect();
        let buf = encode(&rows);
        let mut r = PostingsReader::open(&buf, 0).unwrap();
        assert_eq!(r.seek(1001).unwrap(), Some(1002));
        assert_eq!(r.next().unwrap(), Some(1004));
        assert_eq!(r.seek(3998).unwrap(), Some(3998));
        assert_eq!(r.seek(5000).unwrap(), None);
    }

    #[test]
    fn seek_is_forward_only_monotonic() {
        let rows: Vec<u32> = (0..500).collect();
        let buf = encode(&rows);
        let mut r = PostingsReader::open(&buf, 0).unwrap();
        assert_eq!(r.seek(100).unwrap(), Some(100));
        // Seeking backward returns the next entry forward (cursor never rewinds).
        assert_eq!(r.seek(50).unwrap(), Some(101));
    }

    #[test]
    fn intersect_basics() {
        let a = encode(&[1, 3, 5, 7, 9, 100, 200]);
        let b = encode(&[2, 3, 7, 8, 100, 150, 200]);
        let c = encode(&[3, 7, 99, 100, 200, 201]);
        let got = intersect(vec![
            PostingsReader::open(&a, 0).unwrap(),
            PostingsReader::open(&b, 0).unwrap(),
            PostingsReader::open(&c, 0).unwrap(),
        ])
        .unwrap();
        assert_eq!(got, vec![3, 7, 100, 200]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = encode(&[1, 2, 3]);
        let b = encode(&[]);
        let got = intersect(vec![
            PostingsReader::open(&a, 0).unwrap(),
            PostingsReader::open(&b, 0).unwrap(),
        ])
        .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn intersect_large_skewed_lists() {
        let big: Vec<u32> = (0..10_000).collect();
        let small: Vec<u32> = vec![17, 4242, 9999];
        let a = encode(&big);
        let b = encode(&small);
        let got = intersect(vec![
            PostingsReader::open(&a, 0).unwrap(),
            PostingsReader::open(&b, 0).unwrap(),
        ])
        .unwrap();
        assert_eq!(got, small);
    }

    #[test]
    fn union_dedups() {
        let a = encode(&[1, 3, 5]);
        let b = encode(&[3, 4, 5, 6]);
        let got =
            union(vec![PostingsReader::open(&a, 0).unwrap(), PostingsReader::open(&b, 0).unwrap()])
                .unwrap();
        assert_eq!(got, vec![1, 3, 4, 5, 6]);
    }

    #[test]
    fn multiple_lists_in_one_buffer() {
        let mut w = ByteWriter::new();
        encode_postings(&mut w, &[1, 2, 3]);
        let second_off = w.len();
        encode_postings(&mut w, &[10, 20]);
        let buf = w.into_bytes();
        let mut r2 = PostingsReader::open(&buf, second_off).unwrap();
        assert_eq!(r2.collect_remaining().unwrap(), vec![10, 20]);
    }
}
