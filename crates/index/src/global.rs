//! The global secondary-index structure: an LSM of immutable hash tables
//! (paper §4.1).
//!
//! Each level is an open-addressing hash table mapping a 64-bit *value hash*
//! (values themselves are never stored here — they live in the per-segment
//! inverted indexes, which keeps global-index write amplification low for
//! wide columns) to the list of `(segment id, entry offsets...)` pairs for
//! segments containing that value. When a segment is created its hash table
//! becomes a new level; levels are merged size-tiered so lookups probe
//! O(log N) tables instead of O(N) per-segment structures.
//!
//! Deletions are lazy (paper §4.1): lookups skip pairs whose segment is no
//! longer live, and maintenance rewrites a level once at least half of the
//! segments it covers are dead.

use std::collections::HashSet;

use s2_common::SegmentId;

/// One immutable hash-table level.
pub struct HashLevel {
    /// Probe table: slot -> entry ordinal + 1 (0 = empty).
    slots: Vec<u32>,
    /// Distinct hashes in this level.
    entries: Vec<LevelEntry>,
    /// Flattened pairs: for entry `e`, pairs `pairs[e.start .. e.start+e.len]`.
    pair_segments: Vec<SegmentId>,
    /// Flattened entry offsets: `arity` u32s per pair.
    pair_offsets: Vec<u32>,
    /// Offsets stored per pair.
    arity: usize,
    /// All segments covered by this level (for lazy-deletion accounting).
    covered: HashSet<SegmentId>,
}

struct LevelEntry {
    hash: u64,
    start: u32,
    len: u32,
}

impl HashLevel {
    /// Build a level from `(hash, segment, offsets)` tuples. Tuples for the
    /// same hash are grouped.
    fn build(arity: usize, mut input: Vec<(u64, SegmentId, Vec<u32>)>) -> HashLevel {
        input.sort_by_key(|(h, s, _)| (*h, *s));
        let mut entries: Vec<LevelEntry> = Vec::new();
        let mut pair_segments = Vec::with_capacity(input.len());
        let mut pair_offsets = Vec::with_capacity(input.len() * arity);
        let mut covered = HashSet::new();
        for (hash, seg, offs) in input {
            debug_assert_eq!(offs.len(), arity);
            covered.insert(seg);
            match entries.last_mut() {
                Some(e) if e.hash == hash => e.len += 1,
                _ => entries.push(LevelEntry { hash, start: pair_segments.len() as u32, len: 1 }),
            }
            pair_segments.push(seg);
            pair_offsets.extend_from_slice(&offs);
        }
        // Open addressing at 50% max load.
        let cap = (entries.len() * 2).next_power_of_two().max(8);
        let mut slots = vec![0u32; cap];
        let mask = cap - 1;
        for (i, e) in entries.iter().enumerate() {
            let mut slot = (e.hash as usize) & mask;
            while slots[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            slots[slot] = (i + 1) as u32;
        }
        HashLevel { slots, entries, pair_segments, pair_offsets, arity, covered }
    }

    /// Probe for `hash`, appending live pairs to `out`.
    fn lookup_into(
        &self,
        hash: u64,
        is_live: &dyn Fn(SegmentId) -> bool,
        out: &mut Vec<(SegmentId, Vec<u32>)>,
    ) {
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let tag = self.slots[slot];
            if tag == 0 {
                return;
            }
            let e = &self.entries[(tag - 1) as usize];
            if e.hash == hash {
                for p in e.start..e.start + e.len {
                    let seg = self.pair_segments[p as usize];
                    if is_live(seg) {
                        let o = p as usize * self.arity;
                        out.push((seg, self.pair_offsets[o..o + self.arity].to_vec()));
                    }
                }
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// All tuples in this level (for merging), optionally dropping dead segments.
    fn drain_tuples(&self, is_live: &dyn Fn(SegmentId) -> bool) -> Vec<(u64, SegmentId, Vec<u32>)> {
        let mut out = Vec::with_capacity(self.pair_segments.len());
        for e in &self.entries {
            for p in e.start..e.start + e.len {
                let seg = self.pair_segments[p as usize];
                if is_live(seg) {
                    let o = p as usize * self.arity;
                    out.push((e.hash, seg, self.pair_offsets[o..o + self.arity].to_vec()));
                }
            }
        }
        out
    }

    /// Distinct hashes in this level.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Segments covered by this level.
    pub fn covered_segments(&self) -> usize {
        self.covered.len()
    }

    fn dead_fraction(&self, is_live: &dyn Fn(SegmentId) -> bool) -> f64 {
        if self.covered.is_empty() {
            return 0.0;
        }
        let dead = self.covered.iter().filter(|&&s| !is_live(s)).count();
        dead as f64 / self.covered.len() as f64
    }
}

/// The global index: newest-first list of immutable hash-table levels.
pub struct GlobalIndex {
    levels: Vec<HashLevel>,
    arity: usize,
    /// Merge when more levels than this accumulate.
    max_levels: usize,
}

impl GlobalIndex {
    /// New index storing `arity` entry offsets per (hash, segment) pair —
    /// 1 for a single-column index, N for the tuple index of an N-column
    /// index (paper §4.1.1).
    pub fn new(arity: usize) -> GlobalIndex {
        GlobalIndex { levels: Vec::new(), arity, max_levels: 6 }
    }

    /// Override the merge trigger (tests and ablation benches).
    pub fn with_max_levels(arity: usize, max_levels: usize) -> GlobalIndex {
        GlobalIndex { levels: Vec::new(), arity, max_levels: max_levels.max(1) }
    }

    /// Offsets stored per pair.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of levels (lookup cost is one probe per level — the paper's
    /// O(log N) vs O(N) argument).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Register a new segment's hash table: `entries` maps each distinct
    /// value hash to the entry offsets in the segment's inverted index(es).
    pub fn add_segment(&mut self, segment: SegmentId, entries: Vec<(u64, Vec<u32>)>) {
        let tuples = entries.into_iter().map(|(h, offs)| (h, segment, offs)).collect();
        self.levels.insert(0, HashLevel::build(self.arity, tuples));
        if self.levels.len() > self.max_levels {
            self.merge_smallest(&|_| true);
        }
    }

    /// Merge the two smallest levels ("over time, the hash tables for
    /// different segments get merged together using the LSM tree merging
    /// algorithm", paper §4.1).
    fn merge_smallest(&mut self, is_live: &dyn Fn(SegmentId) -> bool) {
        if self.levels.len() < 2 {
            return;
        }
        let mut order: Vec<usize> = (0..self.levels.len()).collect();
        order.sort_by_key(|&i| self.levels[i].entry_count());
        let (a, b) = (order[0].min(order[1]), order[0].max(order[1]));
        let lb = self.levels.remove(b);
        let la = self.levels.remove(a);
        let mut tuples = la.drain_tuples(is_live);
        tuples.extend(lb.drain_tuples(is_live));
        self.levels.push(HashLevel::build(self.arity, tuples));
    }

    /// Look up every live `(segment, offsets)` pair for `hash`.
    pub fn lookup(
        &self,
        hash: u64,
        is_live: &dyn Fn(SegmentId) -> bool,
    ) -> Vec<(SegmentId, Vec<u32>)> {
        let mut out = Vec::new();
        for level in &self.levels {
            level.lookup_into(hash, is_live, &mut out);
        }
        out
    }

    /// Lazy-deletion maintenance: rewrite any level where at least half of
    /// the covered segments are dead (paper §4.1). Returns rewritten count.
    pub fn maintain(&mut self, is_live: &dyn Fn(SegmentId) -> bool) -> usize {
        let mut rewritten = 0;
        for level in &mut self.levels {
            if level.dead_fraction(is_live) >= 0.5 {
                let tuples = level.drain_tuples(is_live);
                *level = HashLevel::build(self.arity, tuples);
                rewritten += 1;
            }
        }
        // Drop empty levels entirely.
        self.levels.retain(|l| l.entry_count() > 0);
        rewritten
    }

    /// Rebuild from scratch (recovery path): the global index is derivable
    /// from the per-segment inverted indexes, so it is not persisted.
    pub fn rebuild(
        arity: usize,
        per_segment: impl IntoIterator<Item = (SegmentId, Vec<(u64, Vec<u32>)>)>,
    ) -> GlobalIndex {
        let mut ix = GlobalIndex::new(arity);
        let mut all: Vec<(u64, SegmentId, Vec<u32>)> = Vec::new();
        for (seg, entries) in per_segment {
            for (h, offs) in entries {
                all.push((h, seg, offs));
            }
        }
        ix.levels.push(HashLevel::build(arity, all));
        ix
    }

    /// Total pairs across all levels (diagnostics / write-amplification benches).
    pub fn total_pairs(&self) -> usize {
        self.levels.iter().map(|l| l.pair_segments.len()).sum()
    }
}

/// A per-segment probe count comparator for the ablation bench: looking up a
/// value with only per-segment structures costs one probe per segment
/// (O(N)); with the global index it costs one probe per level (O(log N)).
pub fn probes_without_global_index(segment_count: usize) -> usize {
    segment_count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_all(_: SegmentId) -> bool {
        true
    }

    #[test]
    fn lookup_across_levels() {
        let mut g = GlobalIndex::with_max_levels(1, 10);
        g.add_segment(1, vec![(100, vec![10]), (200, vec![20])]);
        g.add_segment(2, vec![(100, vec![30])]);
        let hits = g.lookup(100, &live_all);
        let segs: HashSet<SegmentId> = hits.iter().map(|(s, _)| *s).collect();
        assert_eq!(segs, HashSet::from([1, 2]));
        let offs: Vec<u32> = hits.iter().flat_map(|(_, o)| o.clone()).collect();
        assert!(offs.contains(&10) && offs.contains(&30));
        assert!(g.lookup(999, &live_all).is_empty());
    }

    #[test]
    fn levels_merge_to_stay_logarithmic() {
        let mut g = GlobalIndex::with_max_levels(1, 3);
        for seg in 0..10u64 {
            g.add_segment(seg, vec![(1000 + seg, vec![1]), (42, vec![2])]);
        }
        assert!(g.level_count() <= 3 + 1, "levels: {}", g.level_count());
        // Value 42 appears in every segment and must survive merging.
        let hits = g.lookup(42, &live_all);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn lazy_deletion_skips_dead_segments() {
        let mut g = GlobalIndex::with_max_levels(1, 10);
        g.add_segment(1, vec![(5, vec![0])]);
        g.add_segment(2, vec![(5, vec![0])]);
        let live = |s: SegmentId| s != 1;
        let hits = g.lookup(5, &live);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
        assert_eq!(g.total_pairs(), 2, "dead pair still physically present");
    }

    #[test]
    fn maintenance_rewrites_half_dead_levels() {
        let mut g = GlobalIndex::with_max_levels(1, 10);
        // One level covering two segments, one of which dies -> 50% dead.
        let tuples: Vec<(u64, Vec<u32>)> = vec![(1, vec![0]), (2, vec![0])];
        g.add_segment(1, tuples.clone());
        g.add_segment(2, tuples);
        let live = |s: SegmentId| s != 1;
        let rewritten = g.maintain(&live);
        assert_eq!(rewritten, 1, "level covering only segment 1 rewritten away");
        assert_eq!(g.total_pairs(), 2);
        assert!(g.lookup(1, &live).iter().all(|(s, _)| *s == 2));
    }

    #[test]
    fn multi_offset_arity() {
        let mut g = GlobalIndex::new(3);
        g.add_segment(7, vec![(99, vec![11, 22, 33])]);
        let hits = g.lookup(99, &live_all);
        assert_eq!(hits, vec![(7, vec![11, 22, 33])]);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let entries = |seed: u64| vec![(seed, vec![1u32]), (seed + 1, vec![2])];
        let mut inc = GlobalIndex::with_max_levels(1, 2);
        for s in 0..5u64 {
            inc.add_segment(s, entries(s * 10));
        }
        let re = GlobalIndex::rebuild(1, (0..5u64).map(|s| (s, entries(s * 10))));
        for h in [0u64, 1, 10, 11, 40, 41, 999] {
            let mut a = inc.lookup(h, &live_all);
            let mut b = re.lookup(h, &live_all);
            a.sort();
            b.sort();
            assert_eq!(a, b, "hash {h}");
        }
    }

    #[test]
    fn hash_collisions_return_both_pairs() {
        // Two different segments register the same hash; both come back and
        // the caller disambiguates at the inverted index (paper: hashes only).
        let mut g = GlobalIndex::new(1);
        g.add_segment(1, vec![(777, vec![5])]);
        g.add_segment(2, vec![(777, vec![9])]);
        assert_eq!(g.lookup(777, &live_all).len(), 2);
    }
}
