//! Blob-store health tracking: a circuit breaker per store plus the
//! process-global registry behind it.
//!
//! The paper's availability claim (§3) is that blob storage is off the
//! commit path: commits stay durable from the local replicated WAL while
//! uploads and cold reads *tolerate* an unreliable object store. Tolerating
//! means distinguishing a transient blip (retry with backoff) from a
//! sustained outage (stop hammering the store, fail queries fast, park the
//! upload backlog, and probe for recovery). That distinction is this
//! module's job.
//!
//! - [`BreakerCore`] is the pure Closed → Open → HalfOpen state machine,
//!   driven by a logical millisecond clock so tests (including the proptest
//!   suite) can exercise every transition deterministically.
//! - [`BlobHealth`] wraps a core with a real clock and exports state through
//!   s2-obs: gauge `blob.health.state` (0 healthy / 1 degraded / 2 outage),
//!   event `blob.breaker` on every transition.
//! - [`store_health`] is the process-global per-store registry: every layer
//!   touching the same store (uploader, cold reads, snapshot shipping)
//!   shares one health view, so the first layer to see an outage shields
//!   the rest.
//! - [`ResilientStore`] wraps any [`ObjectStore`] with the breaker plus a
//!   bounded [`RetryPolicy`]: fail-fast when open, jittered bounded retries
//!   when closed, outcomes recorded into the shared health.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use s2_common::retry::salt_from_key;
use s2_common::sync::{rank, Mutex, RwLock};
use s2_common::{Error, Result, RetryClass, RetryPolicy};

use crate::store::ObjectStore;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long Open rejects everything before allowing a HalfOpen probe.
    pub open_cooldown: Duration,
    /// Cooldown escalation cap (doubles on every failed probe).
    pub max_cooldown: Duration,
    /// Probe successes required to close from HalfOpen.
    pub probe_successes: u32,
    /// A failure within this window keeps health at Degraded even while the
    /// breaker stays Closed.
    pub degraded_window: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_secs(2),
            probe_successes: 1,
            degraded_window: Duration::from_secs(2),
        }
    }
}

/// Breaker states (the classic three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Normal operation; failures are counted.
    Closed,
    /// Sustained failure: reject immediately until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request at a time tests for recovery.
    HalfOpen,
}

/// Coarse store health derived from breaker state and recent outcomes —
/// what dashboards and degraded-mode decisions consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHealth {
    /// No recent failures.
    Healthy,
    /// Breaker closed but failures seen recently (transient blips, or
    /// recovery still being confirmed).
    Degraded,
    /// Breaker open or probing: the store is treated as down.
    Outage,
}

impl StoreHealth {
    /// Gauge encoding (0/1/2) for `blob.health.state`.
    pub fn as_gauge(self) -> i64 {
        match self {
            StoreHealth::Healthy => 0,
            StoreHealth::Degraded => 1,
            StoreHealth::Outage => 2,
        }
    }
}

/// The pure breaker state machine, on a logical millisecond clock. All
/// transitions happen inside [`BreakerCore::allow`], [`BreakerCore::on_success`]
/// and [`BreakerCore::on_failure`]; the caller supplies `now_ms` monotonic
/// non-decreasing.
#[derive(Debug)]
pub struct BreakerCore {
    cfg: BreakerConfig,
    state: CircuitState,
    consecutive_failures: u32,
    /// When the current Open period started.
    opened_at_ms: u64,
    /// Current (escalating) cooldown, ms.
    cooldown_ms: u64,
    /// A HalfOpen probe is in flight; further requests are rejected until
    /// it reports — or until the probe timeout (the current cooldown)
    /// passes, after which the token is presumed lost and reissued.
    probe_inflight: bool,
    /// When the in-flight probe token was granted.
    probe_started_ms: u64,
    probe_successes: u32,
    last_failure_ms: Option<u64>,
}

impl BreakerCore {
    /// A closed breaker with `cfg`.
    pub fn new(cfg: BreakerConfig) -> BreakerCore {
        BreakerCore {
            cooldown_ms: cfg.open_cooldown.as_millis() as u64,
            cfg,
            state: CircuitState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
            probe_inflight: false,
            probe_started_ms: 0,
            probe_successes: 0,
            last_failure_ms: None,
        }
    }

    /// Current state (transitions lazily on `allow`).
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// May a request proceed at `now_ms`? Open transitions to HalfOpen once
    /// the cooldown has elapsed; HalfOpen admits a single probe at a time.
    ///
    /// A probe token that is never reported back (its holder died, or the
    /// outcome was swallowed) expires after the current cooldown: the next
    /// `allow` reissues it, so a lost token degrades into one extra probe
    /// instead of wedging the breaker in HalfOpen forever.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            CircuitState::Closed => true,
            CircuitState::Open => {
                if now_ms.saturating_sub(self.opened_at_ms) >= self.cooldown_ms {
                    self.state = CircuitState::HalfOpen;
                    self.probe_inflight = true;
                    self.probe_started_ms = now_ms;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
            CircuitState::HalfOpen => {
                let probe_timeout = self.cooldown_ms.max(1);
                if self.probe_inflight
                    && now_ms.saturating_sub(self.probe_started_ms) < probe_timeout
                {
                    false
                } else {
                    self.probe_inflight = true;
                    self.probe_started_ms = now_ms;
                    true
                }
            }
        }
    }

    /// Record a successful request.
    pub fn on_success(&mut self, _now_ms: u64) {
        match self.state {
            CircuitState::Closed => self.consecutive_failures = 0,
            CircuitState::HalfOpen => {
                self.probe_inflight = false;
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.probe_successes {
                    self.state = CircuitState::Closed;
                    self.consecutive_failures = 0;
                    self.cooldown_ms = self.cfg.open_cooldown.as_millis() as u64;
                }
            }
            // A straggler that got its token before the breaker opened:
            // evidence of life, but recovery is only believed via a probe.
            CircuitState::Open => {}
        }
    }

    /// Record a failed (transient-class) request.
    pub fn on_failure(&mut self, now_ms: u64) {
        self.last_failure_ms = Some(now_ms);
        match self.state {
            CircuitState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = CircuitState::Open;
                    self.opened_at_ms = now_ms;
                }
            }
            CircuitState::HalfOpen => {
                // Failed probe: back to Open with an escalated cooldown.
                self.probe_inflight = false;
                self.probe_successes = 0;
                self.state = CircuitState::Open;
                self.opened_at_ms = now_ms;
                self.cooldown_ms =
                    (self.cooldown_ms * 2).min(self.cfg.max_cooldown.as_millis() as u64).max(1);
            }
            // Stragglers while Open don't extend the cooldown (nothing new
            // is being attempted; extending would fight the probe timer).
            CircuitState::Open => {}
        }
    }

    /// Coarse health at `now_ms` (see [`StoreHealth`]).
    pub fn health(&self, now_ms: u64) -> StoreHealth {
        match self.state {
            CircuitState::Open | CircuitState::HalfOpen => StoreHealth::Outage,
            CircuitState::Closed => {
                let recent = self.last_failure_ms.is_some_and(|t| {
                    now_ms.saturating_sub(t) < self.cfg.degraded_window.as_millis() as u64
                });
                if self.consecutive_failures > 0 || recent {
                    StoreHealth::Degraded
                } else {
                    StoreHealth::Healthy
                }
            }
        }
    }

    /// While Open: ms until a probe will be admitted (0 = now). `None` when
    /// not Open.
    pub fn retry_in_ms(&self, now_ms: u64) -> Option<u64> {
        match self.state {
            CircuitState::Open => {
                Some((self.opened_at_ms + self.cooldown_ms).saturating_sub(now_ms))
            }
            _ => None,
        }
    }
}

/// Shared health for one blob store: [`BreakerCore`] + real clock + obs.
pub struct BlobHealth {
    label: String,
    core: Mutex<BreakerCore>,
    epoch: Instant,
}

impl BlobHealth {
    /// Health tracker with default tuning.
    pub fn new(label: impl Into<String>) -> Arc<BlobHealth> {
        BlobHealth::with_config(label, BreakerConfig::default())
    }

    /// Health tracker with explicit breaker tuning.
    pub fn with_config(label: impl Into<String>, cfg: BreakerConfig) -> Arc<BlobHealth> {
        Arc::new(BlobHealth {
            label: label.into(),
            core: Mutex::new(&rank::BLOB_BREAKER, BreakerCore::new(cfg)),
            // s2-lint: allow(wall-clock, BlobHealth is the real-clock adapter over the pure BreakerCore)
            epoch: Instant::now(),
        })
    }

    /// The store label (registry key / event prefix).
    pub fn label(&self) -> &str {
        &self.label
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn observe<R>(&self, f: impl FnOnce(&mut BreakerCore, u64) -> R) -> R {
        let now = self.now_ms();
        let mut core = self.core.lock();
        let before = (core.state(), core.health(now));
        let out = f(&mut core, now);
        let after = (core.state(), core.health(now));
        if before != after {
            s2_obs::gauge!("blob.health.state").set(after.1.as_gauge());
            if before.0 != after.0 {
                s2_obs::counter!("blob.breaker.transitions").inc();
                s2_obs::event(
                    "blob.breaker",
                    format!("{}: {:?} -> {:?}", self.label, before.0, after.0),
                );
            }
        }
        out
    }

    /// May a request proceed right now? (May grant a HalfOpen probe token —
    /// callers that take `true` must report the outcome via
    /// [`BlobHealth::on_success`] / [`BlobHealth::on_failure`].)
    pub fn allow(&self) -> bool {
        self.observe(|c, now| c.allow(now))
    }

    /// Record a success.
    pub fn on_success(&self) {
        self.observe(|c, now| c.on_success(now));
    }

    /// Record a transient-class failure.
    pub fn on_failure(&self) {
        self.observe(|c, now| c.on_failure(now));
    }

    /// Record the outcome of an attempt. Only transient errors count
    /// against the breaker. A permanent-class error (NotFound, bad key) is
    /// a *completed round trip*: the store answered, which is positive
    /// evidence of reachability — so it counts as a success. This matters
    /// most in HalfOpen: the probe token must be released on every
    /// completed attempt, or a NotFound probe (e.g. the first cold read
    /// after an outage racing a parked upload) would leak the token and
    /// wedge the breaker in HalfOpen forever.
    pub fn on_outcome<T>(&self, r: &Result<T>) {
        match r {
            Err(e) if e.retry_class() == RetryClass::Transient => self.on_failure(),
            Ok(_) | Err(_) => self.on_success(),
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> CircuitState {
        self.core.lock().state()
    }

    /// Coarse health now.
    pub fn health(&self) -> StoreHealth {
        let now = self.now_ms();
        self.core.lock().health(now)
    }

    /// While Open: how long until a probe will be admitted. `None` when the
    /// breaker is not Open (requests may proceed, or a probe is running).
    pub fn retry_in(&self) -> Option<Duration> {
        let now = self.now_ms();
        self.core.lock().retry_in_ms(now).map(Duration::from_millis)
    }
}

static REGISTRY: OnceLock<RwLock<BTreeMap<String, Arc<BlobHealth>>>> = OnceLock::new();

/// Process-global per-store health: every caller naming the same store
/// label shares one breaker, so the uploader tripping it also shields cold
/// reads and snapshot shipping (and vice versa).
pub fn store_health(label: &str) -> Arc<BlobHealth> {
    let reg = REGISTRY.get_or_init(|| RwLock::new(&rank::BLOB_HEALTH_REGISTRY, BTreeMap::new()));
    if let Some(h) = reg.read().get(label) {
        return Arc::clone(h);
    }
    let mut w = reg.write();
    Arc::clone(w.entry(label.to_string()).or_insert_with(|| BlobHealth::new(label)))
}

/// An [`ObjectStore`] wrapper enforcing the resilience contract on every
/// operation: fail fast with [`Error::Unavailable`] while the breaker is
/// open, bounded jittered retries while it is closed, outcomes recorded
/// into the shared [`BlobHealth`].
pub struct ResilientStore {
    inner: Arc<dyn ObjectStore>,
    health: Arc<BlobHealth>,
    policy: RetryPolicy,
}

impl ResilientStore {
    /// Wrap `inner`, guarding it with `health` under `policy`.
    pub fn new(
        inner: Arc<dyn ObjectStore>,
        health: Arc<BlobHealth>,
        policy: RetryPolicy,
    ) -> ResilientStore {
        ResilientStore { inner, health, policy }
    }

    /// The shared health this wrapper reports into.
    pub fn health(&self) -> &Arc<BlobHealth> {
        &self.health
    }

    fn guarded<T>(&self, key: &str, mut attempt: impl FnMut() -> Result<T>) -> Result<T> {
        // Mirrors `s2_common::retry::retry`, with one difference: a breaker
        // rejection is synthesized here, not a real store attempt, so it
        // returns immediately — an open breaker must cost microseconds, not
        // a retry schedule's worth of backoff sleeps.
        let salt = salt_from_key(key);
        // s2-lint: allow(wall-clock, retry deadlines are real elapsed time; sim covers this via FaultyStore)
        let started = Instant::now();
        let mut attempt_no = 0u32;
        loop {
            if !self.health.allow() {
                s2_obs::counter!("blob.breaker.fail_fast").inc();
                return Err(Error::Unavailable(format!(
                    "blob store {:?} circuit open",
                    self.health.label()
                )));
            }
            let r = attempt();
            self.health.on_outcome(&r);
            let e = match r {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let class = e.retry_class();
            if class == RetryClass::Permanent || attempt_no + 1 >= self.policy.max_attempts {
                return Err(e);
            }
            let sleep = match class {
                // Contended errors retry on a short fixed tick.
                RetryClass::Contended => self.policy.base_delay,
                _ => self.policy.delay(attempt_no, salt),
            };
            if started.elapsed() + sleep > self.policy.deadline {
                return Err(e);
            }
            std::thread::sleep(sleep);
            attempt_no += 1;
        }
    }
}

impl ObjectStore for ResilientStore {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.guarded(key, || self.inner.put(key, Arc::clone(&bytes)))
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.guarded(key, || self.inner.get(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.guarded(prefix, || self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.guarded(key, || self.inner.delete(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyStore;
    use crate::store::MemoryStore;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_millis(400),
            probe_successes: 1,
            degraded_window: Duration::from_millis(500),
        }
    }

    #[test]
    fn closed_to_open_on_consecutive_failures() {
        let mut b = BreakerCore::new(cfg());
        assert!(b.allow(0));
        b.on_failure(0);
        b.on_success(1); // success resets the streak
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.state(), CircuitState::Closed);
        b.on_failure(4);
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow(5), "open rejects immediately");
        assert_eq!(b.retry_in_ms(5), Some(99));
    }

    #[test]
    fn open_half_open_probe_cycle() {
        let mut b = BreakerCore::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow(50));
        // Cooldown elapses: exactly one probe admitted.
        assert!(b.allow(102));
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(!b.allow(103), "second request while probe in flight");
        // Failed probe: back to Open, cooldown doubled.
        b.on_failure(104);
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.allow(204), "escalated cooldown (200ms) not elapsed");
        assert!(b.allow(305));
        b.on_success(306);
        assert_eq!(b.state(), CircuitState::Closed);
        // Cooldown resets after closing.
        for t in 310..313 {
            b.on_failure(t);
        }
        assert_eq!(b.retry_in_ms(313), Some(99));
    }

    #[test]
    fn health_tracks_degraded_and_outage() {
        let mut b = BreakerCore::new(cfg());
        assert_eq!(b.health(0), StoreHealth::Healthy);
        b.on_failure(10);
        assert_eq!(b.health(11), StoreHealth::Degraded);
        b.on_failure(12);
        b.on_failure(13);
        assert_eq!(b.health(14), StoreHealth::Outage);
        // Recover via probe.
        assert!(b.allow(150));
        b.on_success(151);
        // Closed, but a failure is still inside the degraded window.
        assert_eq!(b.health(152), StoreHealth::Degraded);
        assert_eq!(b.health(13 + 501), StoreHealth::Healthy);
    }

    #[test]
    fn resilient_store_fails_fast_when_open_and_recovers() {
        let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
        faulty.put("k", Arc::new(vec![1])).unwrap();
        // Generous cooldown so the "still open" probe below cannot race it.
        let health = BlobHealth::with_config(
            "test-store",
            BreakerConfig { open_cooldown: Duration::from_millis(300), ..cfg() },
        );
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            deadline: Duration::from_millis(200),
        };
        let rs = ResilientStore::new(
            Arc::clone(&faulty) as Arc<dyn ObjectStore>,
            Arc::clone(&health),
            policy,
        );
        assert_eq!(rs.get("k").unwrap().as_slice(), &[1]);
        assert_eq!(health.health(), StoreHealth::Healthy);

        faulty.set_unavailable(true);
        // Enough failed ops to trip the breaker (2 attempts each).
        assert!(rs.get("k").is_err());
        assert!(rs.get("k").is_err());
        assert_eq!(health.state(), CircuitState::Open);
        assert_eq!(health.health(), StoreHealth::Outage);
        // Heal the store but not the breaker: the next read must still fail
        // fast without touching the store — proof the rejection is the
        // breaker's, not the store's.
        faulty.set_unavailable(false);
        let (_, gets_before, _, _) = faulty.stats.snapshot();
        let t0 = Instant::now();
        assert!(matches!(rs.get("k"), Err(Error::Unavailable(_))));
        let (_, gets_after, _, _) = faulty.stats.snapshot();
        assert_eq!(gets_before, gets_after, "open breaker must not touch the store");
        assert!(t0.elapsed() < Duration::from_millis(250), "fail-fast, not cooldown-blocked");

        // Recovery: after the cooldown a probe closes the breaker.
        std::thread::sleep(Duration::from_millis(330));
        assert_eq!(rs.get("k").unwrap().as_slice(), &[1]);
        assert_eq!(health.state(), CircuitState::Closed);
    }

    #[test]
    fn not_found_is_not_a_health_signal() {
        let health = BlobHealth::with_config("nf-store", cfg());
        let rs = ResilientStore::new(
            Arc::new(MemoryStore::new()) as Arc<dyn ObjectStore>,
            Arc::clone(&health),
            RetryPolicy::no_retries(),
        );
        for _ in 0..10 {
            assert!(matches!(rs.get("missing"), Err(Error::NotFound(_))));
        }
        assert_eq!(health.state(), CircuitState::Closed);
        assert_eq!(health.health(), StoreHealth::Healthy);
    }

    #[test]
    fn not_found_probe_releases_token_and_closes() {
        // The review-found wedge: during an outage uploads park, so the
        // first cold read after the cooldown probes a not-yet-uploaded key
        // and gets NotFound. That completed round trip must release the
        // probe token (and close the breaker — the store answered), not
        // leak it and reject everything forever.
        let mut b = BreakerCore::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        assert!(b.allow(150), "probe admitted after cooldown");
        assert_eq!(b.state(), CircuitState::HalfOpen);
        // Probe outcome is NotFound: BlobHealth maps it to on_success.
        b.on_success(151);
        assert_eq!(b.state(), CircuitState::Closed, "reachable store closes the breaker");
        assert!(b.allow(152), "breaker must not stay wedged");

        // And end to end through on_outcome: a NotFound during HalfOpen.
        let health = BlobHealth::with_config("nf-probe", cfg());
        for _ in 0..3 {
            health.on_failure();
        }
        assert_eq!(health.state(), CircuitState::Open);
        std::thread::sleep(Duration::from_millis(120));
        assert!(health.allow(), "probe after cooldown");
        health.on_outcome::<()>(&Err(Error::NotFound("missing".into())));
        assert_eq!(health.state(), CircuitState::Closed);
        assert!(health.allow());
    }

    #[test]
    fn lost_probe_token_self_heals() {
        let mut b = BreakerCore::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        assert!(b.allow(150), "probe admitted after cooldown");
        assert!(!b.allow(151), "token out, second request rejected");
        // The probe holder dies without reporting. After the probe timeout
        // (= current cooldown, 100ms) a replacement token is issued.
        assert!(!b.allow(249), "still inside the probe timeout");
        assert!(b.allow(250), "lost token reissued after the probe timeout");
        b.on_success(251);
        assert_eq!(b.state(), CircuitState::Closed);
    }

    #[test]
    fn open_breaker_rejection_skips_retry_sleeps() {
        let health = BlobHealth::with_config("fast-reject", cfg());
        for _ in 0..3 {
            health.on_failure();
        }
        assert_eq!(health.state(), CircuitState::Open);
        // Long backoffs: if the synthesized rejection went through the
        // retry loop, this call would sleep ~hundreds of ms.
        let rs = ResilientStore::new(
            Arc::new(MemoryStore::new()) as Arc<dyn ObjectStore>,
            Arc::clone(&health),
            RetryPolicy {
                max_attempts: 5,
                base_delay: Duration::from_millis(200),
                max_delay: Duration::from_millis(400),
                deadline: Duration::from_secs(5),
            },
        );
        let t0 = Instant::now();
        assert!(matches!(rs.get("k"), Err(Error::Unavailable(_))));
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "breaker-open rejection slept through the retry schedule: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn registry_shares_one_health_per_label() {
        let a = store_health("shared-store-x");
        let b = store_health("shared-store-x");
        let c = store_health("shared-store-y");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
