//! Background uploader: ships data files and sealed log chunks to blob
//! storage asynchronously, off the commit path (paper §3.1: "newly committed
//! columnstore data files are uploaded asynchronously to blob storage as
//! quickly as possible after being committed").
//!
//! Resilience contract (paper §3: commits must tolerate an unreliable
//! object store):
//!
//! - the backlog is **bounded**: once `capacity` jobs are outstanding,
//!   `enqueue` blocks — that block *is* the backpressure signal, surfaced
//!   through the `blob.upload.backpressure_waits` counter and the
//!   `blob.upload.queue_depth` gauge. Callers that must never wait on the
//!   blob store (the commit path above all) use [`Uploader::try_enqueue`]
//!   instead, which reports a full backlog without blocking so the caller
//!   can defer the job (the file stays pinned locally; a maintenance sweep
//!   resubmits it);
//! - a failed attempt **re-queues with jittered exponential backoff**
//!   instead of sleeping on the worker thread, so one failing key cannot
//!   stall a worker for its whole retry window;
//! - under a sustained outage the shared [`BlobHealth`] breaker opens and
//!   jobs **park** (re-queued until the breaker admits a probe) rather than
//!   burning their attempt budget — nothing is dropped because the store is
//!   down; the backlog drains after recovery;
//! - `enqueue` after shutdown returns [`Error::Unavailable`] instead of
//!   panicking, and shutdown completes parked jobs with an error callback
//!   (their files stay pinned locally — durability is never the uploader's
//!   to lose).

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use s2_common::retry::{jittered_backoff, salt_from_key};
use s2_common::sync::{rank, Condvar, Mutex, MutexGuard};
use s2_common::{Error, Result, RetryClass};

use crate::health::{BlobHealth, CircuitState};
use crate::store::ObjectStore;

/// One upload job: an object plus a completion callback (e.g. "advance
/// `uploaded_lp`", "mark data file evictable").
pub struct UploadJob {
    /// Destination object key.
    pub key: String,
    /// Object payload.
    pub bytes: Arc<Vec<u8>>,
    /// Invoked with the upload outcome on the uploader thread.
    pub on_done: Box<dyn FnOnce(Result<()>) + Send>,
    /// Transient attempts made while the breaker was closed. Reset when the
    /// job parks under an open breaker: an outage must not consume the
    /// budget meant for genuine per-key trouble.
    attempts: u32,
    /// Jitter salt (key hash) de-correlating concurrent retry schedules.
    salt: u64,
}

/// Uploader tuning.
#[derive(Debug, Clone, Copy)]
pub struct UploaderConfig {
    /// Worker threads.
    pub threads: usize,
    /// Maximum outstanding jobs (queued + deferred + in flight). `enqueue`
    /// blocks at the bound — the backpressure signal.
    pub capacity: usize,
    /// Transient failures per job (while the breaker is closed) before the
    /// failure is reported to the callback.
    pub max_attempts: u32,
    /// First retry delay (pre-jitter).
    pub base_backoff: Duration,
    /// Retry delay cap.
    pub max_backoff: Duration,
}

impl Default for UploaderConfig {
    fn default() -> Self {
        UploaderConfig {
            threads: 2,
            capacity: 4096,
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

struct QueueState {
    /// Jobs ready to attempt now.
    ready: VecDeque<UploadJob>,
    /// Jobs waiting out a backoff or an open breaker: `(not_before, job)`.
    /// Small and scanned linearly — the backlog bound caps it.
    deferred: Vec<(Instant, UploadJob)>,
    /// Jobs currently being attempted by a worker.
    inflight: usize,
    /// Monotonic totals; `pending = enqueued - completed` is read under
    /// this one lock so it can never transiently observe `completed >
    /// enqueued` (the old two-atomics underflow).
    enqueued: u64,
    completed: u64,
    shutdown: bool,
}

impl QueueState {
    fn outstanding(&self) -> usize {
        self.ready.len() + self.deferred.len() + self.inflight
    }

    /// Move due deferred jobs (all of them under shutdown) into `ready`;
    /// returns the earliest not-yet-due deadline, if any.
    fn promote_due(&mut self, now: Instant) -> Option<Instant> {
        let mut earliest = None;
        let mut i = 0;
        while i < self.deferred.len() {
            if self.shutdown || self.deferred[i].0 <= now {
                let (_, job) = self.deferred.swap_remove(i);
                self.ready.push_back(job);
            } else {
                let t = self.deferred[i].0;
                earliest = Some(earliest.map_or(t, |e: Instant| e.min(t)));
                i += 1;
            }
        }
        earliest
    }
}

struct Inner {
    store: Arc<dyn ObjectStore>,
    health: Arc<BlobHealth>,
    cfg: UploaderConfig,
    state: Mutex<QueueState>,
    /// Workers wait here for work (new jobs, due deferrals, shutdown).
    work_cv: Condvar,
    /// `enqueue` (space) and `drain` (completion) wait here.
    done_cv: Condvar,
}

/// Asynchronous upload service with a worker-thread pool (see module docs
/// for the resilience contract).
pub struct Uploader {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

static ANON: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Uploader {
    /// Start `threads` workers uploading to `store` with default tuning and
    /// a private health tracker.
    pub fn new(store: Arc<dyn ObjectStore>, threads: usize) -> Uploader {
        let n = ANON.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Uploader::with_config(
            store,
            UploaderConfig { threads, ..UploaderConfig::default() },
            BlobHealth::new(format!("uploader#{n}")),
        )
    }

    /// Start an uploader with explicit tuning, reporting outcomes into a
    /// (possibly shared) [`BlobHealth`].
    pub fn with_config(
        store: Arc<dyn ObjectStore>,
        cfg: UploaderConfig,
        health: Arc<BlobHealth>,
    ) -> Uploader {
        let inner = Arc::new(Inner {
            store,
            health,
            cfg,
            state: Mutex::new(
                &rank::BLOB_UPLOADER,
                QueueState {
                    ready: VecDeque::new(),
                    deferred: Vec::new(),
                    inflight: 0,
                    enqueued: 0,
                    completed: 0,
                    shutdown: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..cfg.threads.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Uploader { inner, workers }
    }

    /// The health tracker this uploader reports into.
    pub fn health(&self) -> &Arc<BlobHealth> {
        &self.inner.health
    }

    /// Queue an upload; `on_done` fires later on a worker thread.
    ///
    /// Blocks while the backlog is at capacity (backpressure). Returns
    /// [`Error::Unavailable`] after shutdown instead of panicking.
    pub fn enqueue(
        &self,
        key: impl Into<String>,
        bytes: Arc<Vec<u8>>,
        on_done: impl FnOnce(Result<()>) + Send + 'static,
    ) -> Result<()> {
        let key = key.into();
        let inner = &self.inner;
        let mut st = inner.state.lock();
        loop {
            if st.shutdown {
                return Err(Error::Unavailable("uploader shut down".into()));
            }
            if st.outstanding() < inner.cfg.capacity {
                break;
            }
            s2_obs::counter!("blob.upload.backpressure_waits").inc();
            st = inner.done_cv.wait(st);
        }
        push_job(inner, st, key, bytes, Box::new(on_done));
        Ok(())
    }

    /// Queue an upload without ever blocking: returns `Ok(true)` when the
    /// job was queued, `Ok(false)` when the backlog is at capacity (the job
    /// was *not* queued — the caller keeps ownership of the work, e.g. by
    /// leaving the file pinned and deferring to a maintenance resubmit),
    /// and [`Error::Unavailable`] after shutdown.
    ///
    /// This is the commit path's entry point: commits must keep acking
    /// during a sustained blob outage, so a full backlog defers instead of
    /// parking the committer until recovery.
    pub fn try_enqueue(
        &self,
        key: impl Into<String>,
        bytes: Arc<Vec<u8>>,
        on_done: impl FnOnce(Result<()>) + Send + 'static,
    ) -> Result<bool> {
        let inner = &self.inner;
        let st = inner.state.lock();
        if st.shutdown {
            return Err(Error::Unavailable("uploader shut down".into()));
        }
        if st.outstanding() >= inner.cfg.capacity {
            s2_obs::counter!("blob.upload.deferred_full").inc();
            return Ok(false);
        }
        push_job(inner, st, key.into(), bytes, Box::new(on_done));
        Ok(true)
    }

    /// Jobs enqueued but not yet completed (one consistent read — both
    /// counters live under the queue lock).
    pub fn pending(&self) -> u64 {
        let st = self.inner.state.lock();
        st.enqueued - st.completed
    }

    /// True while the backlog is at (or beyond) capacity — the signal
    /// callers poll to shed or delay optional work.
    pub fn backlogged(&self) -> bool {
        self.inner.state.lock().outstanding() >= self.inner.cfg.capacity
    }

    /// Block until every queued job has completed (condvar wait, not a
    /// busy-spin). Under an outage this blocks until recovery or shutdown —
    /// parked jobs count as pending.
    pub fn drain(&self) {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        while st.enqueued > st.completed {
            st = inner.done_cv.wait(st);
        }
    }
}

impl Drop for Uploader {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        // Wake everyone: workers finish the backlog (parked jobs get a final
        // attempt or an error callback), blocked enqueuers bail out.
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Append a job to the ready queue (caller has already checked shutdown and
/// capacity) and wake a worker.
fn push_job(
    inner: &Inner,
    mut st: MutexGuard<'_, QueueState>,
    key: String,
    bytes: Arc<Vec<u8>>,
    on_done: Box<dyn FnOnce(Result<()>) + Send>,
) {
    st.enqueued += 1;
    let salt = salt_from_key(&key);
    st.ready.push_back(UploadJob { key, bytes, on_done, attempts: 0, salt });
    s2_obs::gauge!("blob.upload.queue_depth").inc();
    drop(st);
    inner.work_cv.notify_one();
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.state.lock();
            loop {
                let earliest = st.promote_due(Instant::now());
                if let Some(job) = st.ready.pop_front() {
                    st.inflight += 1;
                    break job;
                }
                if st.shutdown {
                    // promote_due under shutdown moved everything to ready;
                    // both empty means this worker is done.
                    return;
                }
                st = match earliest {
                    Some(t) => {
                        let timeout = t.saturating_duration_since(Instant::now());
                        inner.work_cv.wait_timeout(st, timeout.max(Duration::from_millis(1))).0
                    }
                    None => inner.work_cv.wait(st),
                };
            }
        };
        attempt(inner, job);
    }
}

/// Park or re-queue `job` to run no earlier than `delay` from now. The job
/// leaves the in-flight set but stays pending.
fn defer(inner: &Inner, job: UploadJob, delay: Duration) {
    s2_obs::counter!("blob.upload.requeues").inc();
    let mut st = inner.state.lock();
    st.inflight -= 1;
    st.deferred.push((Instant::now() + delay, job));
    drop(st);
    // Deadlines changed: wake a waiter so it recomputes its timeout.
    inner.work_cv.notify_one();
}

/// Complete `job` with `outcome`: callback, counters, completion signal.
fn finish(inner: &Inner, job: UploadJob, outcome: Result<()>) {
    match &outcome {
        Ok(()) => {
            s2_obs::counter!("blob.upload.bytes").add(job.bytes.len() as u64);
        }
        Err(e) => {
            s2_obs::counter!("blob.upload.failures").inc();
            s2_obs::event("blob.upload_failed", format!("{}: {e}", job.key));
        }
    }
    (job.on_done)(outcome);
    let mut st = inner.state.lock();
    st.inflight -= 1;
    st.completed += 1;
    drop(st);
    s2_obs::gauge!("blob.upload.queue_depth").dec();
    inner.done_cv.notify_all();
}

/// One attempt at `job`, gated by the breaker. Runs on a worker thread with
/// no locks held; never sleeps — waiting happens by re-queueing.
fn attempt(inner: &Inner, mut job: UploadJob) {
    let shutdown = inner.state.lock().shutdown;
    if !inner.health.allow() {
        if shutdown {
            finish(inner, job, Err(Error::Unavailable("uploader shut down during outage".into())));
        } else {
            // Park until the breaker will admit a probe. Attempts reset: the
            // outage is the store's fault, not this key's.
            job.attempts = 0;
            let delay = inner.health.retry_in().unwrap_or(inner.cfg.base_backoff);
            defer(inner, job, delay.max(Duration::from_millis(1)));
        }
        return;
    }
    let timer = s2_obs::histogram!("blob.upload.latency_us").start_timer();
    // Each attempt is separately injectable, so the retry loop itself is
    // under test. Runs on the worker thread: plans must opt sites into
    // cross-thread (error-only) injection.
    let outcome = s2_common::fault::failpoint("blob.uploader.attempt")
        .and_then(|()| inner.store.put(&job.key, Arc::clone(&job.bytes)));
    timer.stop();
    inner.health.on_outcome(&outcome);
    match outcome {
        Ok(()) => finish(inner, job, Ok(())),
        Err(e) if e.retry_class() == RetryClass::Transient => {
            s2_obs::counter!("blob.upload.retries").inc();
            job.attempts += 1;
            if shutdown {
                finish(inner, job, Err(e));
            } else if inner.health.state() == CircuitState::Open {
                // This failure tripped (or confirmed) the outage: park.
                job.attempts = 0;
                let delay = inner.health.retry_in().unwrap_or(inner.cfg.base_backoff);
                defer(inner, job, delay.max(Duration::from_millis(1)));
            } else if job.attempts >= inner.cfg.max_attempts {
                finish(inner, job, Err(e));
            } else {
                let delay = jittered_backoff(
                    inner.cfg.base_backoff,
                    inner.cfg.max_backoff,
                    job.attempts - 1,
                    job.salt,
                );
                defer(inner, job, delay);
            }
        }
        Err(e) => finish(inner, job, Err(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn uploads_complete_asynchronously() {
        let store = Arc::new(MemoryStore::new());
        let up = Uploader::new(store.clone() as Arc<dyn ObjectStore>, 2);
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        up.enqueue("files/f1", Arc::new(b"data".to_vec()), move |r| {
            r.unwrap();
            flag.store(true, Ordering::SeqCst);
        })
        .unwrap();
        up.drain();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(store.get("files/f1").unwrap().as_slice(), b"data");
    }

    #[test]
    fn many_jobs_across_workers() {
        let store = Arc::new(MemoryStore::new());
        let up = Uploader::new(store.clone() as Arc<dyn ObjectStore>, 4);
        for i in 0..100 {
            up.enqueue(format!("k/{i}"), Arc::new(vec![i as u8]), |r| r.unwrap()).unwrap();
        }
        up.drain();
        assert_eq!(store.object_count(), 100);
        assert_eq!(up.pending(), 0);
    }

    #[test]
    fn outage_parks_jobs_and_shutdown_reports_failure() {
        use crate::fault::FaultyStore;
        let faulty = FaultyStore::new(
            MemoryStore::new(),
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        faulty.set_unavailable(true);
        let store: Arc<dyn ObjectStore> = Arc::new(faulty);
        let up = Uploader::new(store, 1);
        let failed = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&failed);
        up.enqueue("k", Arc::new(vec![1]), move |r| flag.store(r.is_err(), Ordering::SeqCst))
            .unwrap();
        // The job parks under the open breaker instead of being dropped; it
        // stays pending until shutdown delivers the final error callback.
        drop(up);
        assert!(failed.load(Ordering::SeqCst), "shutdown must complete parked jobs with Err");
    }

    #[test]
    fn enqueue_after_shutdown_returns_unavailable() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let mut up = Uploader::new(store, 1);
        up.enqueue("a", Arc::new(vec![1]), |r| r.unwrap()).unwrap();
        up.drain();
        // Simulate shutdown without dropping the handle.
        {
            let mut st = up.inner.state.lock();
            st.shutdown = true;
        }
        up.inner.work_cv.notify_all();
        up.inner.done_cv.notify_all();
        for w in up.workers.drain(..) {
            let _ = w.join();
        }
        let r = up.enqueue("b", Arc::new(vec![2]), |_| {});
        assert!(matches!(r, Err(Error::Unavailable(_))));
    }

    #[test]
    fn one_failing_key_does_not_stall_other_uploads() {
        /// Fails every put of keys containing "bad" with a transient error.
        struct SelectiveStore {
            inner: MemoryStore,
            bad_puts: AtomicU64,
        }
        impl ObjectStore for SelectiveStore {
            fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
                if key.contains("bad") {
                    self.bad_puts.fetch_add(1, Ordering::SeqCst);
                    return Err(Error::Unavailable("selective failure".into()));
                }
                self.inner.put(key, bytes)
            }
            fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
                self.inner.get(key)
            }
            fn list(&self, prefix: &str) -> Result<Vec<String>> {
                self.inner.list(prefix)
            }
            fn delete(&self, key: &str) -> Result<()> {
                self.inner.delete(key)
            }
        }
        let store =
            Arc::new(SelectiveStore { inner: MemoryStore::new(), bad_puts: AtomicU64::new(0) });
        // One worker: with on-thread retry sleeps the bad key would serialize
        // in front of every good one for its whole backoff window.
        let up = Uploader::with_config(
            Arc::clone(&store) as Arc<dyn ObjectStore>,
            UploaderConfig {
                threads: 1,
                // Wide spacing between bad-key retries; good keys must slip
                // through the gaps instead of waiting them out.
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(200),
                max_attempts: 4,
                ..UploaderConfig::default()
            },
            // High threshold: this test is about per-key retry scheduling,
            // not the breaker — the bad key must exhaust its own budget
            // instead of tripping an outage and parking forever.
            crate::health::BlobHealth::with_config(
                "selective-test",
                crate::health::BreakerConfig { failure_threshold: 100, ..Default::default() },
            ),
        );
        let bad_failed = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&bad_failed);
        up.enqueue("bad/key", Arc::new(vec![0]), move |r| flag.store(r.is_err(), Ordering::SeqCst))
            .unwrap();
        for i in 0..20 {
            up.enqueue(format!("good/{i}"), Arc::new(vec![i as u8]), |r| r.unwrap()).unwrap();
        }
        // All good keys land while the bad key is still inside its backoff
        // schedule (4 attempts ≥ 150ms of spacing; 20 in-memory puts are
        // orders of magnitude faster than that).
        let t0 = Instant::now();
        while store.inner.object_count() < 20 {
            assert!(t0.elapsed() < Duration::from_secs(5), "good uploads stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            store.bad_puts.load(Ordering::SeqCst) < 4,
            "good keys finished before the bad key's backoff schedule did"
        );
        up.drain();
        assert!(bad_failed.load(Ordering::SeqCst), "bad key reported failure after its budget");
        assert_eq!(up.pending(), 0);
    }

    #[test]
    fn try_enqueue_never_blocks_at_capacity() {
        use crate::fault::FaultyStore;
        let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
        faulty.set_unavailable(true);
        let up = Uploader::with_config(
            Arc::clone(&faulty) as Arc<dyn ObjectStore>,
            UploaderConfig { threads: 1, capacity: 2, ..UploaderConfig::default() },
            BlobHealth::new("try-enqueue-test"),
        );
        // Fill the backlog during the outage; jobs park, nothing completes.
        let mut queued = 0;
        let t0 = Instant::now();
        while queued < 2 {
            if up.try_enqueue(format!("k/{queued}"), Arc::new(vec![1]), |_| {}).unwrap() {
                queued += 1;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "backlog never filled");
        }
        // At capacity: try_enqueue reports full immediately instead of
        // parking the caller until recovery.
        let t0 = Instant::now();
        let mut deferred = false;
        // In-flight jobs requeue continuously, so a slot can transiently
        // open; what matters is that no call ever blocks.
        for i in 0..50 {
            let r = up.try_enqueue(format!("extra/{i}"), Arc::new(vec![2]), |_| {}).unwrap();
            deferred |= !r;
        }
        assert!(deferred, "a full backlog must report Ok(false) at least once");
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "try_enqueue blocked: {:?}",
            t0.elapsed()
        );
        faulty.set_unavailable(false);
        up.drain();
        // After shutdown: Unavailable, not a panic or a block.
        drop(up);
        let up2 = Uploader::new(Arc::new(MemoryStore::new()) as Arc<dyn ObjectStore>, 1);
        {
            let mut st = up2.inner.state.lock();
            st.shutdown = true;
        }
        assert!(matches!(
            up2.try_enqueue("x", Arc::new(vec![1]), |_| {}),
            Err(Error::Unavailable(_))
        ));
    }

    #[test]
    fn bounded_backlog_applies_backpressure() {
        use crate::fault::FaultyStore;
        let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
        faulty.set_unavailable(true);
        let up = Arc::new(Uploader::with_config(
            Arc::clone(&faulty) as Arc<dyn ObjectStore>,
            UploaderConfig { threads: 1, capacity: 4, ..UploaderConfig::default() },
            BlobHealth::new("backpressure-test"),
        ));
        // Fill the backlog during the outage (jobs park, nothing completes).
        for i in 0..4 {
            up.enqueue(format!("k/{i}"), Arc::new(vec![i as u8]), |_| {}).unwrap();
        }
        let t0 = Instant::now();
        while !up.backlogged() {
            assert!(t0.elapsed() < Duration::from_secs(5), "backlog never filled");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The fifth enqueue blocks until the store recovers and a slot frees.
        let up2 = Arc::clone(&up);
        let unblocked = Arc::new(AtomicBool::new(false));
        let unblocked2 = Arc::clone(&unblocked);
        let h = std::thread::spawn(move || {
            up2.enqueue("k/extra", Arc::new(vec![9]), |r| r.unwrap()).unwrap();
            unblocked2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!unblocked.load(Ordering::SeqCst), "enqueue must block at capacity");
        faulty.set_unavailable(false);
        h.join().unwrap();
        assert!(unblocked.load(Ordering::SeqCst));
        up.drain();
        assert_eq!(up.pending(), 0);
    }
}
