//! Background uploader: ships data files and sealed log chunks to blob
//! storage asynchronously, off the commit path (paper §3.1: "newly committed
//! columnstore data files are uploaded asynchronously to blob storage as
//! quickly as possible after being committed").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use s2_common::Result;

use crate::store::ObjectStore;

/// One upload job: an object plus a completion callback (e.g. "advance
/// `uploaded_lp`", "mark data file evictable").
pub struct UploadJob {
    /// Destination object key.
    pub key: String,
    /// Object payload.
    pub bytes: Arc<Vec<u8>>,
    /// Invoked with the upload outcome on the uploader thread.
    pub on_done: Box<dyn FnOnce(Result<()>) + Send>,
}

/// Asynchronous upload service with a worker-thread pool.
pub struct Uploader {
    tx: Option<Sender<UploadJob>>,
    workers: Vec<JoinHandle<()>>,
    enqueued: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl Uploader {
    /// Start `threads` workers uploading to `store`. Failed uploads are
    /// retried a bounded number of times (blob stores have transient errors)
    /// before reporting the failure to the job's callback.
    pub fn new(store: Arc<dyn ObjectStore>, threads: usize) -> Uploader {
        let (tx, rx) = unbounded::<UploadJob>();
        let enqueued = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = rx.clone();
                let store = Arc::clone(&store);
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let timer = s2_obs::histogram!("blob.upload.latency_us").start_timer();
                        let mut outcome = Ok(());
                        for attempt in 0..3 {
                            // Each attempt is separately injectable, so the
                            // retry loop itself is under test. Runs on the
                            // worker thread: plans must opt sites into
                            // cross-thread (error-only) injection.
                            outcome = s2_common::fault::failpoint("blob.uploader.attempt")
                                .and_then(|()| store.put(&job.key, Arc::clone(&job.bytes)));
                            match &outcome {
                                Ok(()) => break,
                                Err(e) if e.is_retryable() && attempt < 2 => {
                                    s2_obs::counter!("blob.upload.retries").inc();
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        10 << attempt,
                                    ));
                                }
                                Err(_) => break,
                            }
                        }
                        timer.stop();
                        match &outcome {
                            Ok(()) => {
                                s2_obs::counter!("blob.upload.bytes").add(job.bytes.len() as u64);
                            }
                            Err(e) => {
                                s2_obs::counter!("blob.upload.failures").inc();
                                s2_obs::event("blob.upload_failed", format!("{}: {e}", job.key));
                            }
                        }
                        (job.on_done)(outcome);
                        completed.fetch_add(1, Ordering::Release);
                        s2_obs::gauge!("blob.upload.queue_depth").dec();
                    }
                })
            })
            .collect();
        Uploader { tx: Some(tx), workers, enqueued, completed }
    }

    /// Queue an upload. Returns immediately; `on_done` fires later.
    pub fn enqueue(
        &self,
        key: impl Into<String>,
        bytes: Arc<Vec<u8>>,
        on_done: impl FnOnce(Result<()>) + Send + 'static,
    ) {
        self.enqueued.fetch_add(1, Ordering::Release);
        s2_obs::gauge!("blob.upload.queue_depth").inc();
        self.tx
            .as_ref()
            .expect("uploader not shut down")
            .send(UploadJob { key: key.into(), bytes, on_done: Box::new(on_done) })
            .expect("uploader workers alive");
    }

    /// Jobs enqueued but not yet completed.
    pub fn pending(&self) -> u64 {
        self.enqueued.load(Ordering::Acquire) - self.completed.load(Ordering::Acquire)
    }

    /// Block until every queued job has completed (test/shutdown aid).
    pub fn drain(&self) {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
    }
}

impl Drop for Uploader {
    fn drop(&mut self) {
        self.tx.take(); // close the channel so workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn uploads_complete_asynchronously() {
        let store = Arc::new(MemoryStore::new());
        let up = Uploader::new(store.clone() as Arc<dyn ObjectStore>, 2);
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        up.enqueue("files/f1", Arc::new(b"data".to_vec()), move |r| {
            r.unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        up.drain();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(store.get("files/f1").unwrap().as_slice(), b"data");
    }

    #[test]
    fn many_jobs_across_workers() {
        let store = Arc::new(MemoryStore::new());
        let up = Uploader::new(store.clone() as Arc<dyn ObjectStore>, 4);
        for i in 0..100 {
            up.enqueue(format!("k/{i}"), Arc::new(vec![i as u8]), |r| r.unwrap());
        }
        up.drain();
        assert_eq!(store.object_count(), 100);
        assert_eq!(up.pending(), 0);
    }

    #[test]
    fn failure_reported_to_callback() {
        use crate::fault::FaultyStore;
        let faulty = FaultyStore::new(
            MemoryStore::new(),
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        faulty.set_unavailable(true);
        let store: Arc<dyn ObjectStore> = Arc::new(faulty);
        let up = Uploader::new(store, 1);
        let failed = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&failed);
        up.enqueue("k", Arc::new(vec![1]), move |r| flag.store(r.is_err(), Ordering::SeqCst));
        up.drain();
        assert!(failed.load(Ordering::SeqCst));
    }
}
