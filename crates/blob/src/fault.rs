//! Latency and fault injection around an [`ObjectStore`].
//!
//! The paper's headline storage claim is that commits never wait on the blob
//! store, so its latency and availability don't affect the write path
//! (§3.1: "short periods of unavailability in the blob store doesn't affect
//! the steady-state workload"). This wrapper makes those properties
//! *measurable*: benches inject realistic S3-like latency and outage windows
//! and observe that S2DB commit latency is unchanged while the
//! commit-to-blob baseline stalls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use s2_common::{Error, Result};

use crate::store::ObjectStore;

/// Operation counters for a wrapped store.
#[derive(Debug, Default)]
pub struct BlobStats {
    /// Number of put operations.
    pub puts: AtomicU64,
    /// Number of get operations.
    pub gets: AtomicU64,
    /// Bytes uploaded.
    pub bytes_up: AtomicU64,
    /// Bytes downloaded.
    pub bytes_down: AtomicU64,
}

impl BlobStats {
    /// Snapshot (puts, gets, bytes_up, bytes_down).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
            self.bytes_up.load(Ordering::Relaxed),
            self.bytes_down.load(Ordering::Relaxed),
        )
    }
}

/// An [`ObjectStore`] wrapper adding per-op latency, outage simulation and
/// traffic counters.
pub struct FaultyStore<S> {
    inner: S,
    put_latency: Duration,
    get_latency: Duration,
    unavailable: AtomicBool,
    /// Extra per-op latency (µs) on top of the fixed put/get latencies —
    /// outage drills use this for latency-spike phases.
    extra_latency_us: AtomicU64,
    /// Shared so benches can read counters while the engine owns the store.
    pub stats: Arc<BlobStats>,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wrap `inner` with the given put/get latencies.
    pub fn new(inner: S, put_latency: Duration, get_latency: Duration) -> FaultyStore<S> {
        FaultyStore {
            inner,
            put_latency,
            get_latency,
            unavailable: AtomicBool::new(false),
            extra_latency_us: AtomicU64::new(0),
            stats: Arc::new(BlobStats::default()),
        }
    }

    /// Start or end a simulated outage. While unavailable every operation
    /// fails with [`Error::Unavailable`].
    pub fn set_unavailable(&self, down: bool) {
        let was = self.unavailable.swap(down, Ordering::SeqCst);
        if was != down {
            s2_obs::event("blob.outage", if down { "begin" } else { "end" });
        }
    }

    /// Begin (non-zero) or end (zero) a latency spike: every put/get takes
    /// this much longer until reset.
    pub fn set_extra_latency(&self, extra: Duration) {
        let was = self.extra_latency_us.swap(extra.as_micros() as u64, Ordering::SeqCst);
        if (was == 0) != extra.is_zero() {
            s2_obs::event(
                "blob.latency_spike",
                if extra.is_zero() { "end".to_string() } else { format!("begin +{extra:?}") },
            );
        }
    }

    fn check_available(&self) -> Result<()> {
        if self.unavailable.load(Ordering::SeqCst) {
            s2_obs::counter!("blob.fault.unavailable_rejections").inc();
            Err(Error::Unavailable("simulated blob store outage".into()))
        } else {
            Ok(())
        }
    }

    /// Apply one injected-latency sleep, recording it so bench snapshots
    /// show how much stall the fault layer contributed.
    fn inject(&self, latency: Duration) {
        let latency = latency + Duration::from_micros(self.extra_latency_us.load(Ordering::SeqCst));
        if !latency.is_zero() {
            s2_obs::counter!("blob.fault.injected_latency_ops").inc();
            s2_obs::counter!("blob.fault.injected_latency_us").add(latency.as_micros() as u64);
            std::thread::sleep(latency);
        }
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.check_available()?;
        s2_common::fault::failpoint("blob.put")?;
        self.inject(self.put_latency);
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_up.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.inner.put(key, bytes)
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.check_available()?;
        s2_common::fault::failpoint("blob.get")?;
        self.inject(self.get_latency);
        let out = self.inner.get(key)?;
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_down.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.check_available()?;
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.check_available()?;
        s2_common::fault::failpoint("blob.delete")?;
        self.inject(self.put_latency);
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;

    #[test]
    fn counts_traffic() {
        let s = FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO);
        s.put("k", Arc::new(vec![0u8; 100])).unwrap();
        s.get("k").unwrap();
        s.get("k").unwrap();
        let (puts, gets, up, down) = s.stats.snapshot();
        assert_eq!((puts, gets, up, down), (1, 2, 100, 200));
    }

    #[test]
    fn outage_fails_everything_then_recovers() {
        let s = FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO);
        s.put("k", Arc::new(vec![1])).unwrap();
        s.set_unavailable(true);
        assert!(matches!(s.get("k"), Err(Error::Unavailable(_))));
        assert!(matches!(s.put("k2", Arc::new(vec![2])), Err(Error::Unavailable(_))));
        assert!(s.get("k").unwrap_err().is_retryable());
        s.set_unavailable(false);
        assert_eq!(s.get("k").unwrap().as_slice(), &[1]);
    }

    #[test]
    fn latency_is_applied() {
        let s = FaultyStore::new(MemoryStore::new(), Duration::from_millis(15), Duration::ZERO);
        let t0 = std::time::Instant::now();
        s.put("k", Arc::new(vec![1])).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }
}
