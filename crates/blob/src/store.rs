//! The blob ("object") store abstraction and its backends.
//!
//! Stands in for S3 (paper §3): immutable-object put/get/list/delete with no
//! efficient partial update — exactly the constraint that makes S2DB keep
//! data files immutable and the log the only appendable structure.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use s2_common::sync::{rank, RwLock};
use s2_common::{Error, Result};

/// Abstract blob store. Keys are `/`-separated paths; objects are immutable
/// (a `put` to an existing key replaces the whole object, as S3 does).
pub trait ObjectStore: Send + Sync {
    /// Store an object.
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()>;
    /// Fetch an object.
    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>>;
    /// List keys with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;
    /// Delete an object (idempotent).
    fn delete(&self, key: &str) -> Result<()>;
    /// Whether an object exists.
    fn exists(&self, key: &str) -> Result<bool> {
        match self.get(key) {
            Ok(_) => Ok(true),
            Err(Error::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// In-memory blob store (the default test/bench backend).
pub struct MemoryStore {
    objects: RwLock<BTreeMap<String, Arc<Vec<u8>>>>,
}

impl Default for MemoryStore {
    fn default() -> MemoryStore {
        MemoryStore::new()
    }
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> MemoryStore {
        MemoryStore { objects: RwLock::new(&rank::BLOB_STORE, BTreeMap::new()) }
    }

    /// Total bytes stored (diagnostics).
    pub fn total_bytes(&self) -> usize {
        self.objects.read().values().map(|v| v.len()).sum()
    }

    /// Number of objects stored.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.objects.write().insert(key.to_string(), bytes);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("object {key:?}")))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects.write().remove(key);
        Ok(())
    }
}

/// Blob store backed by a local directory (one file per object).
pub struct LocalDirStore {
    root: PathBuf,
}

impl LocalDirStore {
    /// Create (and mkdir) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<LocalDirStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalDirStore { root })
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() || key.split('/').any(|c| c.is_empty() || c == "." || c == "..") {
            return Err(Error::InvalidArgument(format!("invalid object key {key:?}")));
        }
        Ok(self.root.join(key))
    }
}

impl ObjectStore for LocalDirStore {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename for atomicity (a torn object would corrupt restores).
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes.as_slice())?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        let path = self.path_for(key)?;
        match fs::read(&path) {
            Ok(bytes) => Ok(Arc::new(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(Error::NotFound(format!("object {key:?}")))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_none_or(|e| e != "tmp") {
                    let rel = path
                        .strip_prefix(&self.root)
                        .map_err(|e| Error::Internal(e.to_string()))?;
                    let key = rel.to_string_lossy().replace('\\', "/");
                    if key.starts_with(prefix) {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.put("a/1", Arc::new(b"one".to_vec())).unwrap();
        store.put("a/2", Arc::new(b"two".to_vec())).unwrap();
        store.put("b/1", Arc::new(b"three".to_vec())).unwrap();
        assert_eq!(store.get("a/2").unwrap().as_slice(), b"two");
        assert!(matches!(store.get("nope"), Err(Error::NotFound(_))));
        assert_eq!(store.list("a/").unwrap(), vec!["a/1", "a/2"]);
        assert!(store.exists("b/1").unwrap());
        store.delete("a/1").unwrap();
        store.delete("a/1").unwrap(); // idempotent
        assert!(!store.exists("a/1").unwrap());
        // Overwrite replaces whole object.
        store.put("b/1", Arc::new(b"replaced".to_vec())).unwrap();
        assert_eq!(store.get("b/1").unwrap().as_slice(), b"replaced");
    }

    #[test]
    fn memory_store_semantics() {
        let s = MemoryStore::new();
        exercise(&s);
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn local_dir_store_semantics() {
        let dir = std::env::temp_dir().join(format!("s2blob-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = LocalDirStore::new(&dir).unwrap();
        exercise(&s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn local_dir_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("s2blob-trav-{}", std::process::id()));
        let s = LocalDirStore::new(&dir).unwrap();
        assert!(s.put("../evil", Arc::new(vec![1])).is_err());
        assert!(s.get("a//b").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
