//! The local data-file cache (paper §3.1): "hot data files are kept in a
//! cache locally on disk for use by queries and cold data files are removed
//! from local disk once uploaded".
//!
//! This reproduction keeps cached objects in memory with an LRU byte budget;
//! a cache hit models "on local ephemeral SSD", a miss models a blob-store
//! round trip (whose latency the [`crate::fault::FaultyStore`] injects).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use s2_common::sync::{rank, Mutex};
use s2_common::Result;

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// LRU clock value at last touch.
    last_used: u64,
    /// Pinned entries are the only copy of a file whose upload has not
    /// landed yet — structurally exempt from eviction (paper §3.1: files are
    /// "removed from local disk once uploaded", never before).
    pinned: bool,
}

struct CacheInner {
    map: HashMap<String, Entry>,
    bytes: usize,
}

impl CacheInner {
    /// Evict unpinned LRU entries until the budget holds (or only pinned
    /// entries remain — pinned bytes may exceed the budget; durability wins
    /// over the cap). Returns the number of evictions.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0u64;
        while self.bytes > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes.len();
            }
            evicted += 1;
        }
        evicted
    }
}

/// LRU object cache with a byte budget.
pub struct FileCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FileCache {
    /// Cache holding at most `capacity` bytes.
    pub fn new(capacity: usize) -> FileCache {
        FileCache {
            inner: Mutex::new(&rank::BLOB_CACHE, CacheInner { map: HashMap::new(), bytes: 0 }),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Get `key` from cache, or populate it by calling `fetch` (a blob-store
    /// read). The fetched object is inserted and LRU eviction applied.
    pub fn get_or_fetch(
        &self,
        key: &str,
        fetch: impl FnOnce() -> Result<Arc<Vec<u8>>>,
    ) -> Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock();
            if let Some(e) = inner.map.get_mut(key) {
                e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                s2_obs::counter!("blob.cache.hit").inc();
                return Ok(Arc::clone(&e.bytes));
            }
        }
        // Fetch outside the lock: a slow blob read must not block other hits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        s2_obs::counter!("blob.cache.miss").inc();
        let bytes = fetch()?;
        self.insert(key, Arc::clone(&bytes));
        Ok(bytes)
    }

    /// Insert (or refresh) an object, evicting LRU entries over budget.
    /// Objects larger than the whole budget are not cached.
    pub fn insert(&self, key: &str, bytes: Arc<Vec<u8>>) {
        if bytes.len() > self.capacity {
            return;
        }
        self.insert_impl(key, bytes, false);
    }

    /// Insert an object that must not be evicted until [`FileCache::unpin`]
    /// is called — used for files whose upload has not landed, where the
    /// cache holds the only copy. Pinned entries bypass the size cap (even
    /// oversized objects are kept: losing them would lose data).
    pub fn insert_pinned(&self, key: &str, bytes: Arc<Vec<u8>>) {
        self.insert_impl(key, bytes, true);
    }

    fn insert_impl(&self, key: &str, bytes: Arc<Vec<u8>>, pinned: bool) {
        let stamp = self.tick();
        let mut inner = self.inner.lock();
        // An overwrite keeps an existing pin: a plain `insert` (e.g.
        // `get_or_fetch` populating concurrently with `insert_pinned`) must
        // not silently unpin the only local copy of a not-yet-uploaded
        // file. Only `unpin` — the upload-landed callback — releases pins.
        let pinned = pinned || inner.map.get(key).is_some_and(|e| e.pinned);
        if let Some(old) = inner
            .map
            .insert(key.to_string(), Entry { bytes: Arc::clone(&bytes), last_used: stamp, pinned })
        {
            inner.bytes -= old.bytes.len();
        }
        inner.bytes += bytes.len();
        if pinned {
            s2_obs::gauge!("blob.cache.pinned_bytes")
                .set(inner.map.values().filter(|e| e.pinned).map(|e| e.bytes.len() as i64).sum());
        }
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            s2_obs::counter!("blob.cache.evictions").add(evicted);
            if evicted >= 8 {
                // One insert displacing many objects means the budget is far
                // too small for the working set — worth a structured event.
                s2_obs::event(
                    "blob.cache_pressure",
                    format!("inserting {key} ({} bytes) evicted {evicted} objects", bytes.len()),
                );
            }
        }
    }

    /// Release a pin (the upload landed): the entry becomes an ordinary LRU
    /// citizen and an eviction pass reclaims any budget overshoot the pin
    /// was allowed.
    pub fn unpin(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.get_mut(key) {
            if !e.pinned {
                return;
            }
            e.pinned = false;
        } else {
            return;
        }
        s2_obs::gauge!("blob.cache.pinned_bytes")
            .set(inner.map.values().filter(|e| e.pinned).map(|e| e.bytes.len() as i64).sum());
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            s2_obs::counter!("blob.cache.evictions").add(evicted);
        }
    }

    /// Bytes held by pinned (not-yet-uploaded) entries.
    pub fn pinned_bytes(&self) -> usize {
        self.inner.lock().map.values().filter(|e| e.pinned).map(|e| e.bytes.len()).sum()
    }

    /// Whether `key` is currently pinned.
    pub fn is_pinned(&self, key: &str) -> bool {
        self.inner.lock().map.get(key).is_some_and(|e| e.pinned)
    }

    /// Read `key` without touching LRU state (re-upload paths that must not
    /// distort recency).
    pub fn peek(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.inner.lock().map.get(key).map(|e| Arc::clone(&e.bytes))
    }

    /// Drop an object (e.g. after its segment was merged away).
    pub fn remove(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.remove(key) {
            inner.bytes -= e.bytes.len();
        }
    }

    /// Whether `key` is currently cached (does not touch LRU state).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().map.contains_key(key)
    }
}

/// An [`ObjectStore`] view that reads through a [`FileCache`] — the "local
/// ephemeral SSD" in front of blob storage for paths that read objects
/// directly (restore / workspace provisioning) rather than through a data
/// file store. Writes go through to the backing store and warm the cache;
/// sealed log chunks and snapshots are immutable, so cached reads are safe.
pub struct CachedStore {
    inner: Arc<dyn crate::ObjectStore>,
    cache: FileCache,
}

impl CachedStore {
    /// Cache up to `cache_bytes` of objects read from `inner`.
    pub fn new(inner: Arc<dyn crate::ObjectStore>, cache_bytes: usize) -> CachedStore {
        CachedStore { inner, cache: FileCache::new(cache_bytes) }
    }

    /// (cache hits, cache misses).
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

impl crate::ObjectStore for CachedStore {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.inner.put(key, Arc::clone(&bytes))?;
        self.cache.insert(key, bytes);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.cache.get_or_fetch(key, || self.inner.get(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.cache.remove(key);
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = FileCache::new(1000);
        let v = c.get_or_fetch("a", || Ok(obj(10))).unwrap();
        assert_eq!(v.len(), 10);
        c.get_or_fetch("a", || panic!("must hit")).unwrap();
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let c = FileCache::new(250);
        c.insert("a", obj(100));
        c.insert("b", obj(100));
        // Touch a so b is the LRU victim.
        c.get_or_fetch("a", || panic!()).unwrap();
        c.insert("c", obj(100));
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let c = FileCache::new(50);
        c.insert("big", obj(100));
        assert!(!c.contains("big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_fixes_accounting() {
        let c = FileCache::new(1000);
        c.insert("a", obj(100));
        c.insert("a", obj(50));
        assert_eq!(c.used_bytes(), 50);
        c.remove("a");
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let c = FileCache::new(250);
        c.insert_pinned("pinned", obj(100));
        c.insert("a", obj(100));
        c.insert("b", obj(100)); // over budget: an unpinned entry must go
        assert!(c.contains("pinned"), "pinned entry evicted under pressure");
        assert!(c.is_pinned("pinned"));
        assert_eq!(c.pinned_bytes(), 100);
        assert!(c.used_bytes() <= 250);
        // Unpinning makes it evictable again.
        c.unpin("pinned");
        assert!(!c.is_pinned("pinned"));
        assert_eq!(c.pinned_bytes(), 0);
        c.insert("d", obj(100));
        c.insert("e", obj(100));
        assert!(!c.contains("pinned"), "oldest unpinned entry must be the victim");
    }

    #[test]
    fn pinned_bytes_may_exceed_budget() {
        let c = FileCache::new(50);
        // Oversized but pinned: the only copy of a not-yet-uploaded file is
        // kept regardless of the cap.
        c.insert_pinned("big", obj(200));
        assert!(c.contains("big"));
        assert_eq!(c.used_bytes(), 200);
        // Once the upload lands the cap applies again.
        c.unpin("big");
        assert!(!c.contains("big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn plain_insert_preserves_pin() {
        let c = FileCache::new(250);
        c.insert_pinned("p", obj(100));
        // A concurrent plain insert (cache-population path) must not unpin.
        c.insert("p", obj(120));
        assert!(c.is_pinned("p"), "overwrite dropped the pin");
        assert_eq!(c.pinned_bytes(), 120);
        c.insert("a", obj(100));
        c.insert("b", obj(100)); // pressure: the pinned entry must survive
        assert!(c.contains("p"));
        // Only unpin releases it.
        c.unpin("p");
        assert!(!c.is_pinned("p"));
    }

    #[test]
    fn fetch_error_propagates_and_is_not_cached() {
        let c = FileCache::new(100);
        let r = c.get_or_fetch("x", || Err(s2_common::Error::Unavailable("down".into())));
        assert!(r.is_err());
        assert!(!c.contains("x"));
        // A later successful fetch populates.
        c.get_or_fetch("x", || Ok(obj(5))).unwrap();
        assert!(c.contains("x"));
    }
}
