//! The local data-file cache (paper §3.1): "hot data files are kept in a
//! cache locally on disk for use by queries and cold data files are removed
//! from local disk once uploaded".
//!
//! This reproduction keeps cached objects in memory with an LRU byte budget;
//! a cache hit models "on local ephemeral SSD", a miss models a blob-store
//! round trip (whose latency the [`crate::fault::FaultyStore`] injects).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use s2_common::Result;

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// LRU clock value at last touch.
    last_used: u64,
}

struct CacheInner {
    map: HashMap<String, Entry>,
    bytes: usize,
}

/// LRU object cache with a byte budget.
pub struct FileCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FileCache {
    /// Cache holding at most `capacity` bytes.
    pub fn new(capacity: usize) -> FileCache {
        FileCache {
            inner: Mutex::new(CacheInner { map: HashMap::new(), bytes: 0 }),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Get `key` from cache, or populate it by calling `fetch` (a blob-store
    /// read). The fetched object is inserted and LRU eviction applied.
    pub fn get_or_fetch(
        &self,
        key: &str,
        fetch: impl FnOnce() -> Result<Arc<Vec<u8>>>,
    ) -> Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock();
            if let Some(e) = inner.map.get_mut(key) {
                e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                s2_obs::counter!("blob.cache.hit").inc();
                return Ok(Arc::clone(&e.bytes));
            }
        }
        // Fetch outside the lock: a slow blob read must not block other hits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        s2_obs::counter!("blob.cache.miss").inc();
        let bytes = fetch()?;
        self.insert(key, Arc::clone(&bytes));
        Ok(bytes)
    }

    /// Insert (or refresh) an object, evicting LRU entries over budget.
    /// Objects larger than the whole budget are not cached.
    pub fn insert(&self, key: &str, bytes: Arc<Vec<u8>>) {
        if bytes.len() > self.capacity {
            return;
        }
        let stamp = self.tick();
        let mut inner = self.inner.lock();
        if let Some(old) =
            inner.map.insert(key.to_string(), Entry { bytes: Arc::clone(&bytes), last_used: stamp })
        {
            inner.bytes -= old.bytes.len();
        }
        inner.bytes += bytes.len();
        let mut evicted = 0u64;
        while inner.bytes > self.capacity {
            // Evict the least recently used entry.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes.len();
            }
            evicted += 1;
        }
        if evicted > 0 {
            s2_obs::counter!("blob.cache.evictions").add(evicted);
            if evicted >= 8 {
                // One insert displacing many objects means the budget is far
                // too small for the working set — worth a structured event.
                s2_obs::event(
                    "blob.cache_pressure",
                    format!("inserting {key} ({} bytes) evicted {evicted} objects", bytes.len()),
                );
            }
        }
    }

    /// Drop an object (e.g. after its segment was merged away).
    pub fn remove(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.remove(key) {
            inner.bytes -= e.bytes.len();
        }
    }

    /// Whether `key` is currently cached (does not touch LRU state).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().map.contains_key(key)
    }
}

/// An [`ObjectStore`] view that reads through a [`FileCache`] — the "local
/// ephemeral SSD" in front of blob storage for paths that read objects
/// directly (restore / workspace provisioning) rather than through a data
/// file store. Writes go through to the backing store and warm the cache;
/// sealed log chunks and snapshots are immutable, so cached reads are safe.
pub struct CachedStore {
    inner: Arc<dyn crate::ObjectStore>,
    cache: FileCache,
}

impl CachedStore {
    /// Cache up to `cache_bytes` of objects read from `inner`.
    pub fn new(inner: Arc<dyn crate::ObjectStore>, cache_bytes: usize) -> CachedStore {
        CachedStore { inner, cache: FileCache::new(cache_bytes) }
    }

    /// (cache hits, cache misses).
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

impl crate::ObjectStore for CachedStore {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.inner.put(key, Arc::clone(&bytes))?;
        self.cache.insert(key, bytes);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.cache.get_or_fetch(key, || self.inner.get(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.cache.remove(key);
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = FileCache::new(1000);
        let v = c.get_or_fetch("a", || Ok(obj(10))).unwrap();
        assert_eq!(v.len(), 10);
        c.get_or_fetch("a", || panic!("must hit")).unwrap();
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let c = FileCache::new(250);
        c.insert("a", obj(100));
        c.insert("b", obj(100));
        // Touch a so b is the LRU victim.
        c.get_or_fetch("a", || panic!()).unwrap();
        c.insert("c", obj(100));
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let c = FileCache::new(50);
        c.insert("big", obj(100));
        assert!(!c.contains("big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_fixes_accounting() {
        let c = FileCache::new(1000);
        c.insert("a", obj(100));
        c.insert("a", obj(50));
        assert_eq!(c.used_bytes(), 50);
        c.remove("a");
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn fetch_error_propagates_and_is_not_cached() {
        let c = FileCache::new(100);
        let r = c.get_or_fetch("x", || Err(s2_common::Error::Unavailable("down".into())));
        assert!(r.is_err());
        assert!(!c.contains("x"));
        // A later successful fetch populates.
        c.get_or_fetch("x", || Ok(obj(5))).unwrap();
        assert!(c.contains("x"));
    }
}
