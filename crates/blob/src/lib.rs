//! Simulated blob storage and the machinery S2DB wraps around it (paper §3):
//! an S3-like [`ObjectStore`] with in-memory and local-directory backends,
//! latency/outage injection for experiments, an LRU local file cache, a
//! background uploader that keeps blob writes off the commit path, and the
//! per-store health layer (circuit breaker + bounded retries) that keeps an
//! unreliable object store from wedging queries or dropping uploads.

pub mod cache;
pub mod fault;
pub mod health;
pub mod store;
pub mod uploader;

pub use cache::{CachedStore, FileCache};
pub use fault::{BlobStats, FaultyStore};
pub use health::{
    store_health, BlobHealth, BreakerConfig, BreakerCore, CircuitState, ResilientStore, StoreHealth,
};
pub use store::{LocalDirStore, MemoryStore, ObjectStore};
pub use uploader::{UploadJob, Uploader, UploaderConfig};
