//! Property tests for the circuit-breaker state machine ([`BreakerCore`]).
//!
//! The breaker runs on a logical millisecond clock, so randomized sequences
//! of successes, failures and time advances are fully deterministic. A
//! reference model (written independently from the documented semantics)
//! is stepped alongside the real core; every divergence — in admission
//! decisions, state, health, or retry hints — is a failure with a shrunk
//! counterexample.
//!
//! On top of model equivalence, each step asserts the structural
//! invariants the resilience layer leans on:
//!
//! - Open fails fast: no request is admitted before the cooldown elapses;
//! - transitions follow Closed → Open → HalfOpen → {Closed, Open} only;
//! - Closed trips to Open exactly at the consecutive-failure threshold;
//! - HalfOpen admits a single probe at a time — but a probe token whose
//!   holder never reports back expires after the current cooldown and is
//!   reissued, so a lost token cannot wedge the breaker in HalfOpen
//!   (exercised by the `Lost` op: admission taken, outcome never reported);
//! - `retry_in_ms` is `Some` exactly while Open, and counts down to the
//!   probe admission.

use std::time::Duration;

use proptest::prelude::*;
use s2_blob::{BreakerConfig, BreakerCore, CircuitState, StoreHealth};

#[derive(Debug, Clone)]
enum Op {
    /// Advance the logical clock.
    Advance(u64),
    /// Ask for admission; if admitted, report this outcome.
    Attempt { succeed: bool },
    /// Ask for admission and, if admitted, never report back — a caller
    /// that died (or swallowed its outcome) mid-probe.
    Lost,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..250).prop_map(Op::Advance),
        5 => any::<bool>().prop_map(|succeed| Op::Attempt { succeed }),
        1 => Just(Op::Lost),
    ]
}

fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (1u32..6, 10u64..200, 1u64..8, 1u32..4, 50u64..500).prop_map(
        |(threshold, cooldown, escalation, probes, window)| BreakerConfig {
            failure_threshold: threshold,
            open_cooldown: Duration::from_millis(cooldown),
            max_cooldown: Duration::from_millis(cooldown * escalation),
            probe_successes: probes,
            degraded_window: Duration::from_millis(window),
        },
    )
}

/// Reference implementation of the documented breaker semantics.
struct Model {
    cfg: BreakerConfig,
    state: CircuitState,
    consec: u32,
    opened_at: u64,
    cooldown_ms: u64,
    probe_inflight: bool,
    probe_started: u64,
    probe_ok: u32,
    last_failure: Option<u64>,
}

impl Model {
    fn new(cfg: BreakerConfig) -> Model {
        Model {
            cooldown_ms: cfg.open_cooldown.as_millis() as u64,
            cfg,
            state: CircuitState::Closed,
            consec: 0,
            opened_at: 0,
            probe_inflight: false,
            probe_started: 0,
            probe_ok: 0,
            last_failure: None,
        }
    }

    fn allow(&mut self, now: u64) -> bool {
        match self.state {
            CircuitState::Closed => true,
            CircuitState::Open => {
                if now.saturating_sub(self.opened_at) >= self.cooldown_ms {
                    self.state = CircuitState::HalfOpen;
                    self.probe_inflight = true;
                    self.probe_started = now;
                    self.probe_ok = 0;
                    true
                } else {
                    false
                }
            }
            CircuitState::HalfOpen => {
                // A token older than the probe timeout (= current cooldown)
                // was lost in flight; reissue it.
                let timeout = self.cooldown_ms.max(1);
                if self.probe_inflight && now.saturating_sub(self.probe_started) < timeout {
                    false
                } else {
                    self.probe_inflight = true;
                    self.probe_started = now;
                    true
                }
            }
        }
    }

    fn on_success(&mut self) {
        match self.state {
            CircuitState::Closed => self.consec = 0,
            CircuitState::HalfOpen => {
                self.probe_inflight = false;
                self.probe_ok += 1;
                if self.probe_ok >= self.cfg.probe_successes {
                    self.state = CircuitState::Closed;
                    self.consec = 0;
                    self.cooldown_ms = self.cfg.open_cooldown.as_millis() as u64;
                }
            }
            CircuitState::Open => {}
        }
    }

    fn on_failure(&mut self, now: u64) {
        self.last_failure = Some(now);
        match self.state {
            CircuitState::Closed => {
                self.consec += 1;
                if self.consec >= self.cfg.failure_threshold {
                    self.state = CircuitState::Open;
                    self.opened_at = now;
                }
            }
            CircuitState::HalfOpen => {
                self.probe_inflight = false;
                self.probe_ok = 0;
                self.state = CircuitState::Open;
                self.opened_at = now;
                self.cooldown_ms =
                    (self.cooldown_ms * 2).min(self.cfg.max_cooldown.as_millis() as u64).max(1);
            }
            CircuitState::Open => {}
        }
    }

    fn health(&self, now: u64) -> StoreHealth {
        match self.state {
            CircuitState::Open | CircuitState::HalfOpen => StoreHealth::Outage,
            CircuitState::Closed => {
                let recent = self.last_failure.is_some_and(|t| {
                    now.saturating_sub(t) < self.cfg.degraded_window.as_millis() as u64
                });
                if self.consec > 0 || recent {
                    StoreHealth::Degraded
                } else {
                    StoreHealth::Healthy
                }
            }
        }
    }
}

fn legal_transition(from: CircuitState, to: CircuitState) -> bool {
    use CircuitState::*;
    matches!(
        (from, to),
        (Closed, Closed)
            | (Closed, Open)
            | (Open, Open)
            | (Open, HalfOpen)
            | (HalfOpen, HalfOpen)
            | (HalfOpen, Open)
            | (HalfOpen, Closed)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn breaker_matches_reference_model(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut core = BreakerCore::new(cfg);
        let mut model = Model::new(cfg);
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::Advance(dt) => now += dt,
                op @ (Op::Attempt { .. } | Op::Lost) => {
                    let prev = core.state();
                    let hint = core.retry_in_ms(now);

                    // retry_in_ms is the Open-state countdown, nothing else.
                    prop_assert_eq!(hint.is_some(), prev == CircuitState::Open);

                    let admitted = core.allow(now);
                    let model_admitted = model.allow(now);
                    prop_assert_eq!(admitted, model_admitted,
                        "admission diverged at t={} (state {:?})", now, prev);

                    // Open fails fast until the countdown hits zero; once it
                    // does, the next attempt is admitted as a probe.
                    if let Some(ms) = hint {
                        prop_assert_eq!(admitted, ms == 0,
                            "open breaker admission disagrees with retry hint {}ms", ms);
                    }
                    // `allow` may lazily move Open → HalfOpen; nothing else.
                    let mid = core.state();
                    prop_assert!(
                        mid == prev
                            || (prev == CircuitState::Open && mid == CircuitState::HalfOpen),
                        "allow() made illegal transition {:?} -> {:?}", prev, mid);

                    if admitted {
                        match op {
                            Op::Attempt { succeed: true } => {
                                core.on_success(now);
                                model.on_success();
                            }
                            Op::Attempt { succeed: false } => {
                                core.on_failure(now);
                                model.on_failure(now);
                            }
                            // Lost: the token is taken but the outcome is
                            // never reported — the self-heal path must
                            // reissue it after the probe timeout.
                            _ => {}
                        }
                    }

                    prop_assert_eq!(core.state(), model.state,
                        "state diverged at t={}", now);
                    prop_assert!(legal_transition(mid, core.state()),
                        "illegal transition {:?} -> {:?}", mid, core.state());
                    prop_assert_eq!(core.health(now), model.health(now),
                        "health diverged at t={}", now);
                }
            }
        }
    }

    /// The canonical arc under any tuning: hammer failures until Open,
    /// verify fail-fast for the whole cooldown, then recover through
    /// HalfOpen probes back to Closed.
    #[test]
    fn full_recovery_cycle(cfg in config_strategy()) {
        let mut core = BreakerCore::new(cfg);
        let mut now = 5u64;

        // Trip: exactly `failure_threshold` consecutive failures open it.
        for i in 0..cfg.failure_threshold {
            prop_assert_eq!(core.state(), CircuitState::Closed, "tripped early at {}", i);
            prop_assert!(core.allow(now));
            core.on_failure(now);
        }
        prop_assert_eq!(core.state(), CircuitState::Open);

        // Fail fast for the entire cooldown.
        let cooldown = cfg.open_cooldown.as_millis() as u64;
        for dt in [0, cooldown / 2, cooldown.saturating_sub(1)] {
            if dt < cooldown {
                prop_assert!(!core.allow(now + dt), "admitted {}ms into a {}ms cooldown", dt, cooldown);
            }
        }
        prop_assert_eq!(core.retry_in_ms(now), Some(cooldown));

        // Cooldown over: exactly one probe is admitted at a time.
        now += cooldown;
        prop_assert!(core.allow(now));
        prop_assert_eq!(core.state(), CircuitState::HalfOpen);
        prop_assert!(!core.allow(now), "second concurrent probe admitted");

        // Enough probe successes close it again.
        core.on_success(now);
        for _ in 1..cfg.probe_successes {
            prop_assert!(core.allow(now));
            core.on_success(now);
        }
        prop_assert_eq!(core.state(), CircuitState::Closed);
        prop_assert!(core.allow(now));
    }

    /// A probe token whose holder never reports back is reissued after the
    /// probe timeout, no matter how many times in a row it is lost — the
    /// breaker can always still recover to Closed afterwards.
    #[test]
    fn lost_probe_token_always_self_heals(cfg in config_strategy(), lost in 1u32..5) {
        let mut core = BreakerCore::new(cfg);
        let mut now = 0u64;
        for _ in 0..cfg.failure_threshold {
            prop_assert!(core.allow(now));
            core.on_failure(now);
        }
        let cooldown = (cfg.open_cooldown.as_millis() as u64).max(1);
        now += cooldown;
        prop_assert!(core.allow(now), "probe not admitted after cooldown");
        for round in 0..lost {
            // The token is lost; within the timeout nothing is admitted...
            prop_assert!(!core.allow(now + cooldown - 1), "early reissue in round {}", round);
            // ...and at the timeout a replacement is granted.
            now += cooldown;
            prop_assert!(core.allow(now), "lost token never reissued (round {})", round);
        }
        // The surviving probe can still close the breaker normally.
        core.on_success(now);
        for _ in 1..cfg.probe_successes {
            prop_assert!(core.allow(now));
            core.on_success(now);
        }
        prop_assert_eq!(core.state(), CircuitState::Closed);
    }

    /// Failed probes escalate the cooldown (doubling, capped), so a dead
    /// store is probed less and less often — but never less than the cap
    /// allows.
    #[test]
    fn failed_probes_escalate_cooldown(cfg in config_strategy()) {
        let mut core = BreakerCore::new(cfg);
        let mut now = 0u64;
        for _ in 0..cfg.failure_threshold {
            prop_assert!(core.allow(now));
            core.on_failure(now);
        }
        let cap = cfg.max_cooldown.as_millis() as u64;
        let mut expected = cfg.open_cooldown.as_millis() as u64;
        for round in 0..6 {
            prop_assert_eq!(core.retry_in_ms(now), Some(expected),
                "cooldown wrong before probe round {}", round);
            now += expected;
            prop_assert!(core.allow(now), "probe not admitted after cooldown");
            core.on_failure(now); // probe fails: reopen, escalate
            prop_assert_eq!(core.state(), CircuitState::Open);
            expected = (expected * 2).min(cap).max(1);
        }
    }
}
