//! L1 fixture: the same inversion as `l1_violation.rs`, waived at the
//! acquisition site with the standard marker grammar.

use s2_common::sync::{rank, Mutex};

struct Cluster {
    topology: Mutex<u32>,
    tables: Mutex<u32>,
}

impl Cluster {
    fn new() -> Cluster {
        Cluster {
            topology: Mutex::new(&rank::CLUSTER_TOPOLOGY, 0),
            tables: Mutex::new(&rank::CLUSTER_TABLES, 0),
        }
    }

    fn context(&self) -> u32 {
        let tables = self.tables.lock();
        // s2-lint: allow(lock-order, fixture demonstrates a waived inversion)
        let topo = self.topology.lock();
        *tables + *topo
    }
}
