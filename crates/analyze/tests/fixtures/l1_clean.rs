//! L1 fixture: ascending acquisition order — topology (200) before
//! tables (210) — which the rank discipline allows.

use s2_common::sync::{rank, Mutex};

struct Cluster {
    topology: Mutex<u32>,
    tables: Mutex<u32>,
}

impl Cluster {
    fn new() -> Cluster {
        Cluster {
            topology: Mutex::new(&rank::CLUSTER_TOPOLOGY, 0),
            tables: Mutex::new(&rank::CLUSTER_TABLES, 0),
        }
    }

    fn context(&self) -> u32 {
        let topo = self.topology.lock();
        let tables = self.tables.lock();
        *tables + *topo
    }

    /// Scoped reacquisition: the first guard dies before the second lock.
    fn twice(&self) -> u32 {
        let first = {
            let tables = self.tables.lock();
            *tables
        };
        let topo = self.topology.lock();
        first + *topo
    }
}
