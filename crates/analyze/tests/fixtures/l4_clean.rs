//! L4 fixture: registrations in perfect sync with the doc table.

fn register() {
    s2_obs::counter!("fix.ops").inc();
    s2_obs::histogram!("fix.lat_us").observe(1);
}
