//! L4 fixture: metric-registry violations — a kind conflict, a
//! style-breaking name, and a registration missing from the doc table.

fn register() {
    s2_obs::counter!("fix.ops").inc();
    s2_obs::gauge!("fix.ops").set(0);
    s2_obs::counter!("Fix-Bad-Name").inc();
    s2_obs::counter!("fix.extra").inc();
    s2_obs::histogram!("fix.lat_us").observe(1);
}
