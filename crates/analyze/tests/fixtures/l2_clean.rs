//! L2 fixture: the group-commit leader protocol — state mutated under the
//! lock, guard dropped, THEN the fsync — which L2 must accept.

use std::fs::File;

use s2_common::sync::{rank, Condvar, Mutex};

struct Wal {
    state: Mutex<u64>,
    wakeup: Condvar,
    file: File,
}

impl Wal {
    fn open(file: File) -> Wal {
        Wal { state: Mutex::new(&rank::WAL_LOG, 0), wakeup: Condvar::new(), file }
    }

    /// Leader: stage under the lock, release, sync outside it.
    fn lead(&self) {
        s2_common::fault::crash_point("wal.fixture.lead");
        let mut g = self.state.lock();
        *g += 1;
        drop(g);
        self.file.sync_all().unwrap();
    }

    /// Condvar wait releases the guard while parked; waiting is not a
    /// blocking-while-locked violation against the lock being waited on.
    fn wait_durable(&self) {
        let mut g = self.state.lock();
        while *g == 0 {
            g = self.wakeup.wait(g);
        }
        drop(g);
    }
}
