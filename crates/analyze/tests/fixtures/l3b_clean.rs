//! L3b fixture: every ObjectStore verb has at least one implementation
//! that reaches a `fault::` hook.

type Result<T> = std::result::Result<T, ()>;

trait ObjectStore {
    fn put(&self, key: &str) -> Result<()>;
    fn get(&self, key: &str) -> Result<()>;
    fn delete(&self, key: &str) -> Result<()>;
}

struct Mem;

impl ObjectStore for Mem {
    fn put(&self, key: &str) -> Result<()> {
        s2_common::fault::failpoint("blob.fixture.put")?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<()> {
        s2_common::fault::failpoint("blob.fixture.get")?;
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        s2_common::fault::failpoint("blob.fixture.delete")?;
        Ok(())
    }
}
