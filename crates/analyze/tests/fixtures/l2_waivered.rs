//! L2 fixture: fsync-under-lock waived at the blocking call site.

use std::fs::File;

use s2_common::sync::{rank, Mutex};

struct Wal {
    state: Mutex<u64>,
    file: File,
}

impl Wal {
    fn open(file: File) -> Wal {
        Wal { state: Mutex::new(&rank::WAL_LOG, 0), file }
    }

    fn append_sync(&self) {
        s2_common::fault::crash_point("wal.fixture.append");
        let mut g = self.state.lock();
        *g += 1;
        // s2-lint: allow(blocking-locked, fixture demonstrates a waived fsync)
        self.file.sync_all().unwrap();
        drop(g);
    }
}
