//! L4 fixture: a style-breaking metric name carrying an inline waiver.

fn register() {
    // s2-lint: allow(metric-registry, fixture demonstrates a waived name)
    s2_obs::counter!("Fix-Waived-Name").inc();
    s2_obs::counter!("fix.ops").inc();
}
