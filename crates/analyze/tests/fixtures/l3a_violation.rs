//! L3a fixture (analyzed under a `crates/wal/` path): a raw-I/O mutation
//! site with no reachable `fault::` hook, so the crash matrix cannot
//! exercise a power cut at this write.

use std::fs::File;

struct Seg {
    file: File,
}

impl Seg {
    fn truncate_tail(&self, valid: u64) {
        self.file.set_len(valid).unwrap();
    }
}
