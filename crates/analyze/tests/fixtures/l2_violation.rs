//! L2 fixture: an fsync issued while a commit-section (`wal.*`) lock is
//! held — directly and through a callee.

use std::fs::File;

use s2_common::sync::{rank, Mutex};

struct Wal {
    state: Mutex<u64>,
    file: File,
}

impl Wal {
    fn open(file: File) -> Wal {
        Wal { state: Mutex::new(&rank::WAL_LOG, 0), file }
    }

    /// Direct: the state guard is alive across the sync_all call, so every
    /// committer stalls behind this thread's disk latency.
    fn append_sync(&self) {
        s2_common::fault::crash_point("wal.fixture.append");
        let mut g = self.state.lock();
        *g += 1;
        self.file.sync_all().unwrap();
        drop(g);
    }

    /// Interprocedural: the fsync hides one call away.
    fn commit(&self) {
        s2_common::fault::crash_point("wal.fixture.commit");
        let mut g = self.state.lock();
        *g += 1;
        self.flush_disk();
        drop(g);
    }

    fn flush_disk(&self) {
        self.file.sync_all().unwrap();
    }
}
