//! L3a fixture: the mutation site is preceded by a crash point, so the
//! crash matrix can cut power on either side of the write.

use std::fs::File;

struct Seg {
    file: File,
}

impl Seg {
    fn truncate_tail(&self, valid: u64) {
        s2_common::fault::crash_point("wal.fixture.truncate");
        self.file.set_len(valid).unwrap();
    }
}
