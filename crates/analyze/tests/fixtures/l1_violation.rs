//! L1 fixture: the pre-PR-9 `Cluster::context` inversion shape — the
//! topology lock taken while the tables-map guard is still alive, both
//! directly and through a callee.

use s2_common::sync::{rank, Mutex};

struct Cluster {
    topology: Mutex<u32>,
    tables: Mutex<u32>,
}

impl Cluster {
    fn new() -> Cluster {
        Cluster {
            topology: Mutex::new(&rank::CLUSTER_TOPOLOGY, 0),
            tables: Mutex::new(&rank::CLUSTER_TABLES, 0),
        }
    }

    /// Direct inversion: cluster.tables (210) held across a
    /// cluster.topology (200) acquisition.
    fn context(&self) -> u32 {
        let tables = self.tables.lock();
        let topo = self.topology.lock();
        *tables + *topo
    }

    /// Interprocedural inversion: the lower-ranked lock is taken by a
    /// callee while the tables guard is held here.
    fn refresh(&self) {
        let guard = self.tables.lock();
        self.bump_epoch();
        drop(guard);
    }

    fn bump_epoch(&self) {
        let mut topo = self.topology.lock();
        *topo += 1;
    }
}
