//! L3b fixture: an `ObjectStore` whose put/get verbs are injectable but
//! whose delete never reaches a `fault::` hook through ANY implementation.
//!
//! The second impl also pins the closure-parameter regression: `guarded`
//! calls its `attempt` PARAMETER, which must not resolve to the free
//! `attempt` function below (that one does reach a hook — resolving the
//! call there would wrongly mark every delete as covered).

type Result<T> = std::result::Result<T, ()>;

trait ObjectStore {
    fn put(&self, key: &str) -> Result<()>;
    fn get(&self, key: &str) -> Result<()>;
    fn delete(&self, key: &str) -> Result<()>;
}

struct Mem;

impl ObjectStore for Mem {
    fn put(&self, key: &str) -> Result<()> {
        s2_common::fault::failpoint("blob.fixture.put")?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<()> {
        s2_common::fault::failpoint("blob.fixture.get")?;
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        Ok(())
    }
}

struct Resilient {
    inner: Mem,
}

impl Resilient {
    fn guarded(&self, attempt: impl Fn() -> Result<()>) -> Result<()> {
        attempt()
    }
}

impl ObjectStore for Resilient {
    fn put(&self, key: &str) -> Result<()> {
        self.guarded(|| self.inner.put(key))
    }

    fn get(&self, key: &str) -> Result<()> {
        self.guarded(|| self.inner.get(key))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.guarded(|| self.inner.delete(key))
    }
}

/// A free function that DOES reach a hook; the `attempt()` call inside
/// `guarded` must not be attributed to it.
fn attempt() -> Result<()> {
    s2_common::fault::failpoint("blob.fixture.attempt")?;
    Ok(())
}
