//! L3a fixture: the same uncovered mutation site, waived in place.

use std::fs::File;

struct Seg {
    file: File,
}

impl Seg {
    fn truncate_tail(&self, valid: u64) {
        // s2-lint: allow(failpoint-coverage, fixture demonstrates a waived site)
        self.file.set_len(valid).unwrap();
    }
}
