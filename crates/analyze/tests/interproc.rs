//! Integration tests for the interprocedural checks (L1–L4): each check
//! has a seeded-violation fixture, a waivered twin, and a clean twin, plus
//! regression tests over the real WAL sources and the live workspace.

use std::path::{Path, PathBuf};

use s2_lint::workspace::{analyze_workspace, SourceFile};
use s2_lint::{all_rules, lint_source, Finding};

fn run(files: &[(&str, &str)], design: Option<&str>) -> Vec<Finding> {
    let files: Vec<SourceFile> =
        files.iter().map(|(p, s)| SourceFile { path: p.to_string(), src: s.to_string() }).collect();
    analyze_workspace(&files, design)
}

fn ids(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.id).collect()
}

// ------------------------------------------------------------------ L1

#[test]
fn l1_fires_on_cluster_context_inversion_shape() {
    let findings =
        run(&[("crates/cluster/src/ctx.rs", include_str!("fixtures/l1_violation.rs"))], None);
    assert_eq!(ids(&findings), ["L1", "L1"], "unexpected: {findings:#?}");
    // Direct inversion names both classes.
    assert!(findings[0].message.contains("cluster.topology"), "{}", findings[0].message);
    assert!(findings[0].message.contains("cluster.tables"), "{}", findings[0].message);
    // Interprocedural inversion reports the call chain to the acquire.
    let via = &findings[1];
    assert!(via.message.contains("bump_epoch"), "chain missing: {}", via.message);
}

#[test]
fn l1_waiver_suppresses_the_finding() {
    let findings =
        run(&[("crates/cluster/src/ctx.rs", include_str!("fixtures/l1_waivered.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

#[test]
fn l1_accepts_ascending_order_and_scoped_guards() {
    let findings =
        run(&[("crates/cluster/src/ctx.rs", include_str!("fixtures/l1_clean.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

// ------------------------------------------------------------------ L2

#[test]
fn l2_fires_on_fsync_under_commit_lock() {
    let findings = run(&[("crates/wal/src/w.rs", include_str!("fixtures/l2_violation.rs"))], None);
    assert_eq!(ids(&findings), ["L2", "L2"], "unexpected: {findings:#?}");
    assert!(findings[0].message.contains("wal.log"), "{}", findings[0].message);
    // The interprocedural one points through the callee.
    assert!(findings[1].message.contains("flush_disk"), "{}", findings[1].message);
}

#[test]
fn l2_waiver_suppresses_the_finding() {
    let findings = run(&[("crates/wal/src/w.rs", include_str!("fixtures/l2_waivered.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

#[test]
fn l2_accepts_group_commit_leader_protocol() {
    let findings = run(&[("crates/wal/src/w.rs", include_str!("fixtures/l2_clean.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

// ------------------------------------------------------------------ L3

#[test]
fn l3a_fires_on_uncovered_wal_mutation() {
    let findings =
        run(&[("crates/wal/src/seg.rs", include_str!("fixtures/l3a_violation.rs"))], None);
    assert_eq!(ids(&findings), ["L3"], "unexpected: {findings:#?}");
    assert!(findings[0].message.contains("truncate_tail"), "{}", findings[0].message);
}

#[test]
fn l3a_waiver_suppresses_the_finding() {
    let findings =
        run(&[("crates/wal/src/seg.rs", include_str!("fixtures/l3a_waivered.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

#[test]
fn l3a_accepts_hooked_mutation() {
    let findings = run(&[("crates/wal/src/seg.rs", include_str!("fixtures/l3a_clean.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

#[test]
fn l3b_fires_when_no_delete_impl_is_injectable() {
    // Also the closure-parameter regression: `guarded(attempt: impl Fn())`
    // calls `attempt()`; resolving that to the hooked free `attempt` fn
    // would wrongly cover every verb routed through `guarded`.
    let findings =
        run(&[("crates/blob/src/s.rs", include_str!("fixtures/l3b_violation.rs"))], None);
    assert_eq!(ids(&findings), ["L3"], "unexpected: {findings:#?}");
    assert!(findings[0].message.contains("delete"), "{}", findings[0].message);
}

#[test]
fn l3b_accepts_one_injectable_impl_per_verb() {
    let findings = run(&[("crates/blob/src/s.rs", include_str!("fixtures/l3b_clean.rs"))], None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

// ------------------------------------------------------------------ L4

#[test]
fn l4_fires_on_registry_and_doc_table_drift() {
    let findings = run(
        &[("crates/obs/src/m.rs", include_str!("fixtures/l4_violation.rs"))],
        Some(include_str!("fixtures/l4_design_violation.md")),
    );
    assert!(findings.iter().all(|f| f.id == "L4"), "unexpected: {findings:#?}");
    let has = |needle: &str| findings.iter().any(|f| f.message.contains(needle));
    assert!(has("fix.ops"), "kind conflict not reported: {findings:#?}");
    assert!(has("Fix-Bad-Name"), "style violation not reported: {findings:#?}");
    assert!(has("fix.extra"), "code-not-in-table not reported: {findings:#?}");
    assert!(has("fix.ghost"), "stale doc row not reported: {findings:#?}");
    assert!(has("fix.lat_us"), "kind mismatch not reported: {findings:#?}");
    // Doc-side findings anchor to DESIGN.md rows.
    assert!(findings.iter().any(|f| f.path == "DESIGN.md"), "unexpected: {findings:#?}");
}

#[test]
fn l4_waiver_suppresses_the_finding() {
    let findings = run(
        &[("crates/obs/src/m.rs", include_str!("fixtures/l4_waivered.rs"))],
        Some(include_str!("fixtures/l4_design_waivered.md")),
    );
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

#[test]
fn l4_accepts_synced_registry() {
    let findings = run(
        &[("crates/obs/src/m.rs", include_str!("fixtures/l4_clean.rs"))],
        Some(include_str!("fixtures/l4_design_clean.md")),
    );
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

// ---------------------------------------------------- real-source gates

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn read_real(root: &Path, rel: &str) -> SourceFile {
    SourceFile {
        path: rel.to_string(),
        src: std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}")),
    }
}

/// The PR-7 group-commit protocol (leader stages under `wal.group`, drops
/// every guard, THEN fsyncs via `Log::sync`) must pass L1/L2 unmodified.
#[test]
fn real_wal_group_commit_passes_lock_checks() {
    let root = workspace_root();
    let files = vec![
        read_real(&root, "crates/wal/src/group.rs"),
        read_real(&root, "crates/wal/src/log.rs"),
    ];
    let findings = analyze_workspace(&files, None);
    assert!(findings.is_empty(), "unexpected: {findings:#?}");
}

/// Whole-workspace regression: the live tree analyzes clean (all waivers
/// in place, DESIGN.md metrics table in sync). Mirrors the CI gate.
#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    let mut rels: Vec<PathBuf> = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
            {
                rels.push(path);
            }
        }
    }
    rels.sort();
    let files: Vec<SourceFile> = rels
        .iter()
        .map(|p| {
            let rel = p.strip_prefix(&root).unwrap().to_string_lossy().replace('\\', "/");
            read_real(&root, &rel)
        })
        .collect();
    assert!(files.len() > 50, "workspace walk found only {} files", files.len());

    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    let findings = analyze_workspace(&files, Some(&design));
    assert!(findings.is_empty(), "live workspace has findings: {findings:#?}");

    let rules = all_rules();
    for f in &files {
        let per_line = lint_source(&f.path, &f.src, &rules);
        assert!(per_line.is_empty(), "per-line findings in {}: {per_line:#?}", f.path);
    }
}

// ------------------------------------------------------------- parsing

#[test]
fn signature_params_are_captured_and_bare_calls_to_them_skipped() {
    let model = s2_lint::items::parse_file(
        "crates/x/src/a.rs",
        "fn guarded(attempt: impl Fn() -> u32, n: u32) -> u32 {\n    attempt() + n\n}\n",
    );
    assert_eq!(model.fns.len(), 1);
    assert_eq!(model.fns[0].params, ["attempt", "n"]);
}
