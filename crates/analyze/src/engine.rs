//! The rule engine: applies named rules to lexed source, honouring
//! `#[cfg(test)]` exemptions and `s2-lint: allow(rule, reason)` markers.
//!
//! Marker grammar (inside any comment):
//!
//! ```text
//! s2-lint: allow(<rule>, <reason>)
//! ```
//!
//! A marker suppresses findings of `<rule>` on its own line and on the next
//! line that contains code. The reason is mandatory; a marker without one
//! (or naming an unknown rule) is itself reported as `malformed-marker`.

use crate::lexer::{lex, Line};
use crate::rules::{rule_names, MetricNameRule, Rule, RuleKind, SafetyCommentRule, TokenRule};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`R1`..`R5`, or `lint` for marker problems).
    pub id: &'static str,
    /// Rule name (the marker key, e.g. `wall-clock`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}/{}: {}", self.path, self.line, self.id, self.rule, self.message)
    }
}

/// A parsed allow marker.
pub(crate) struct Marker {
    line: usize, // 0-based
    rule: String,
    has_reason: bool,
}

pub(crate) fn parse_markers(lines: &[Line]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let mut rest = line.comment.as_str();
        while let Some(at) = rest.find("s2-lint:") {
            rest = &rest[at + "s2-lint:".len()..];
            let body = rest.trim_start();
            let Some(args) = body.strip_prefix("allow(") else {
                out.push(Marker { line: ln, rule: String::new(), has_reason: false });
                continue;
            };
            let Some(close) = args.find(')') else {
                out.push(Marker { line: ln, rule: String::new(), has_reason: false });
                continue;
            };
            let inner = &args[..close];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), !why.trim().is_empty()),
                None => (inner.trim().to_string(), false),
            };
            out.push(Marker { line: ln, rule, has_reason: reason });
        }
    }
    out
}

/// Mark every line inside a `#[cfg(test)] mod … { … }` span (and the
/// attribute line itself) as test code. Brace depth is tracked on stripped
/// code, so braces in strings or comments cannot skew the span.
pub(crate) fn test_spans(lines: &[Line]) -> Vec<bool> {
    let mut is_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the mod (same or later line).
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                is_test[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    is_test
}

pub(crate) fn allowed(markers: &[Marker], lines: &[Line], rule: &str, ln: usize) -> bool {
    markers.iter().any(|m| {
        if m.rule != rule || !m.has_reason {
            return false;
        }
        if m.line == ln {
            return true;
        }
        // The marker covers the next line that contains code.
        if m.line < ln {
            let covers = (m.line + 1..lines.len()).find(|&k| !lines[k].code.trim().is_empty());
            return covers == Some(ln);
        }
        false
    })
}

/// Whether `needle` occurs in `hay` bounded by non-identifier characters on
/// the left (tokens like `unsafe` must not match `is_unsafe`).
fn token_match(hay: &str, needle: &str) -> bool {
    // Only tokens that start with an identifier character need a boundary;
    // `.unwrap()` is legitimately preceded by the receiver's identifier.
    let needs_boundary = needle.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(at) = hay[from..].find(needle) {
        let abs = from + at;
        let left_ok = !needs_boundary
            || abs == 0
            || !hay[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok {
            return true;
        }
        from = abs + needle.len();
    }
    false
}

/// Validate a metric/event name: two or more dot-separated segments, each
/// `[a-z][a-z0-9_]*` (see DESIGN.md "Observability").
pub(crate) fn valid_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn apply_token_rule(
    rule: &TokenRule,
    path: &str,
    lines: &[Line],
    is_test: &[bool],
    markers: &[Marker],
    findings: &mut Vec<Finding>,
) {
    if !(rule.applies)(path) {
        return;
    }
    for (ln, line) in lines.iter().enumerate() {
        if is_test[ln] {
            continue;
        }
        for token in rule.tokens {
            if token_match(&line.code, token) && !allowed(markers, lines, rule.name, ln) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: ln + 1,
                    id: rule.id,
                    rule: rule.name,
                    message: format!("{} ({token})", rule.message),
                });
            }
        }
    }
}

fn apply_safety_rule(
    rule: &SafetyCommentRule,
    path: &str,
    lines: &[Line],
    is_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (ln, line) in lines.iter().enumerate() {
        if is_test[ln] || !token_match(&line.code, "unsafe") {
            continue;
        }
        // Look upward through contiguous comment / attribute / empty-code
        // lines (and this line's own comment) for a SAFETY: tag.
        let mut ok = line.comment.contains("SAFETY:");
        let mut k = ln;
        while !ok && k > 0 {
            k -= 1;
            let prev = &lines[k];
            let code = prev.code.trim();
            let is_annotation = code.is_empty() || code.starts_with("#[");
            if prev.comment.contains("SAFETY:") {
                ok = true;
            } else if !is_annotation {
                break;
            }
        }
        if !ok {
            findings.push(Finding {
                path: path.to_string(),
                line: ln + 1,
                id: rule.id,
                rule: rule.name,
                message: "unsafe without a preceding // SAFETY: comment".to_string(),
            });
        }
    }
}

fn apply_metric_rule(
    rule: &MetricNameRule,
    path: &str,
    lines: &[Line],
    is_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (ln, line) in lines.iter().enumerate() {
        if is_test[ln] {
            continue;
        }
        let registers = rule.callsites.iter().any(|c| line.code.contains(c));
        if !registers {
            continue;
        }
        // Only the first string literal on the line is the metric/event
        // name; later ones are free-form detail payloads.
        if let Some(s) = line.strings.first() {
            if !valid_metric_name(s) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: ln + 1,
                    id: rule.id,
                    rule: rule.name,
                    message: format!(
                        "metric/event name {s:?} is not subsystem.noun_verb style \
                         (lowercase dot-separated segments)"
                    ),
                });
            }
        }
    }
}

fn apply_raw_lock_rule(
    rule: &crate::rules::RawLockRule,
    path: &str,
    lines: &[Line],
    is_test: &[bool],
    markers: &[Marker],
    findings: &mut Vec<Finding>,
) {
    if !crate::rules::raw_lock_scope(path) {
        return;
    }
    for (ln, line) in lines.iter().enumerate() {
        if is_test[ln] || allowed(markers, lines, rule.name, ln) {
            continue;
        }
        // `std::sync::Mutex`, `use std::sync::{Mutex, ..}` — any whole-word
        // lock type in the remainder of a `std::sync::` line. `MutexGuard`
        // and the atomics stay legal: only the lock types bypass the rank
        // detector.
        let Some(at) = line.code.find("std::sync::") else { continue };
        let rest = &line.code[at + "std::sync::".len()..];
        if ["Mutex", "RwLock", "Condvar"].iter().any(|t| token_match(rest, t)) {
            findings.push(Finding {
                path: path.to_string(),
                line: ln + 1,
                id: rule.id,
                rule: rule.name,
                message: "raw std::sync lock outside s2_common::sync — bypasses the rank \
                          detector and the L1/L2 static checks"
                    .to_string(),
            });
        }
    }
}

/// Lint one file's source. `path` must be repo-relative with `/` separators
/// (it drives per-rule file scoping).
pub fn lint_source(path: &str, src: &str, rules: &[Rule]) -> Vec<Finding> {
    let lines = lex(src);
    let is_test = test_spans(&lines);
    let markers = parse_markers(&lines);
    let mut findings = Vec::new();

    for m in &markers {
        if m.rule.is_empty() || !rule_names().contains(&m.rule.as_str()) {
            findings.push(Finding {
                path: path.to_string(),
                line: m.line + 1,
                id: "lint",
                rule: "malformed-marker",
                message: format!(
                    "unparseable s2-lint marker (expected `s2-lint: allow(<rule>, <reason>)` \
                     with a known rule; got rule {:?})",
                    m.rule
                ),
            });
        } else if !m.has_reason {
            findings.push(Finding {
                path: path.to_string(),
                line: m.line + 1,
                id: "lint",
                rule: "malformed-marker",
                message: format!("allow({}) marker is missing its reason", m.rule),
            });
        }
    }

    for rule in rules {
        match &rule.kind {
            RuleKind::Token(t) => {
                apply_token_rule(t, path, &lines, &is_test, &markers, &mut findings)
            }
            RuleKind::SafetyComment(r) => {
                apply_safety_rule(r, path, &lines, &is_test, &mut findings)
            }
            RuleKind::MetricName(m) => apply_metric_rule(m, path, &lines, &is_test, &mut findings),
            RuleKind::RawLock(r) => {
                apply_raw_lock_rule(r, path, &lines, &is_test, &markers, &mut findings)
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.id).cmp(&(b.line, b.id)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::all_rules;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, &all_rules())
    }

    // ---------------------------------------------------------------- R1
    #[test]
    fn r1_flags_wall_clock_in_deterministic_modules() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = lint("crates/sim/src/plan.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
        // The same source outside the deterministic set is clean.
        assert!(lint("crates/query/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r1_marker_suppresses_with_reason() {
        let src = "// s2-lint: allow(wall-clock, drill timing is real time)\n\
                   let t = Instant::now();";
        assert!(lint("crates/sim/src/outage.rs", src).is_empty());
        // Without a reason the marker itself is a finding, and the rule fires.
        let bad = "// s2-lint: allow(wall-clock)\nlet t = Instant::now();";
        let f = lint("crates/sim/src/outage.rs", bad);
        assert!(f.iter().any(|x| x.rule == "malformed-marker"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "wall-clock"), "{f:?}");
    }

    // ---------------------------------------------------------------- R2
    #[test]
    fn r2_flags_unwrap_on_commit_path_crates_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"nope\"); }";
        let f = lint("crates/wal/src/log.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unwrap"));
        assert!(lint("crates/query/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r2_exempts_test_code_and_strings() {
        let src = "fn f() { log(\"never .unwrap() here\"); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        assert!(lint("crates/core/src/partition.rs", src).is_empty());
    }

    #[test]
    fn r2_marker_on_same_line_suppresses() {
        let src = "let v = x.unwrap(); // s2-lint: allow(unwrap, length checked two lines above)";
        assert!(lint("crates/rowstore/src/mvcc.rs", src).is_empty());
    }

    // ---------------------------------------------------------------- R3
    #[test]
    fn r3_flags_sleep_and_blocking_enqueue_on_commit_path() {
        let src = "fn f(u: &Uploader) { std::thread::sleep(d); u.enqueue(k, b, cb); }";
        let f = lint("crates/core/src/partition.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "blocking"));
        // try_enqueue is the sanctioned non-blocking entry point.
        let ok = "fn f(u: &Uploader) { u.try_enqueue(k, b, cb); }";
        assert!(lint("crates/core/src/partition.rs", ok).is_empty());
    }

    // ---------------------------------------------------------------- R4
    #[test]
    fn r4_requires_safety_comment_before_unsafe() {
        let bad = "fn f(p: *const u8) { let v = unsafe { *p }; }";
        let f = lint("crates/anywhere/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "safety-comment");
        let good = "// SAFETY: p is valid for reads by contract.\n\
                    fn f(p: *const u8) { let v = unsafe { *p }; }";
        assert!(lint("crates/anywhere/src/x.rs", good).is_empty());
        // Attribute lines between the comment and the unsafe item are fine.
        let attr = "// SAFETY: all mutation is via atomics.\n#[allow(dead_code)]\n\
                    unsafe impl Send for T {}";
        assert!(lint("crates/anywhere/src/x.rs", attr).is_empty());
    }

    #[test]
    fn r4_ignores_the_word_unsafe_in_strings_and_comments() {
        let src = "// this API is unsafe to misuse\nlet s = \"unsafe\";";
        assert!(lint("crates/anywhere/src/x.rs", src).is_empty());
    }

    // ---------------------------------------------------------------- R5
    #[test]
    fn r5_checks_metric_names_at_registration_sites() {
        let bad = "s2_obs::counter!(\"BadName\").inc();\ns2_obs::event(\"oneword\", d);";
        let f = lint("crates/exec/src/pool.rs", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "metric-name"));
        let good = "s2_obs::counter!(\"exec.pool.steals\").inc();\n\
                    s2_obs::event(\"blob.cache_pressure\", d);";
        assert!(lint("crates/exec/src/pool.rs", good).is_empty());
    }

    #[test]
    fn r5_exempts_test_metric_names() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { r.counter(\"x\"); \
                   s2_obs::counter!(\"race\").inc(); }\n}";
        assert!(lint("crates/obs/src/ring.rs", src).is_empty());
    }

    // ------------------------------------------------------------ markers
    #[test]
    fn unknown_rule_in_marker_is_reported() {
        let src = "// s2-lint: allow(made-up-rule, because)\nfn f() {}";
        let f = lint("crates/anywhere/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-marker");
    }

    #[test]
    fn findings_render_machine_readable() {
        let f = lint("crates/wal/src/log.rs", "x.unwrap();");
        assert_eq!(format!("{}", f[0]), "crates/wal/src/log.rs:1: R2/unwrap: forbidden panic path on a commit-path crate (.unwrap())");
    }
}
