//! Item-level parsing on top of the surface lexer: extracts `fn`
//! definitions (with their `impl` context), call sites, ranked-lock
//! construction and acquisition sites, condvar waits, blocking
//! primitives, `fault::` hooks, raw file I/O, trait declarations and
//! metric registrations — everything the interprocedural checks
//! (L1–L4) consume.
//!
//! This is deliberately a *surface* parser: it tracks brace/paren
//! depth and token shapes, not full Rust grammar. The resolution
//! rules err on the side of precision (an ambiguous receiver is
//! dropped, not guessed), so the analyzer under-approximates rather
//! than spraying false findings; the runtime ranked-lock detector
//! remains the backstop for what the surface parse cannot see.

use crate::engine::test_spans;
use crate::lexer::{lex, Line};

/// A `sync::Mutex::new(&rank::X, ..)` / `RwLock::new(&rank::X, ..)`
/// construction site, associating a field/binding name with a lock class.
#[derive(Debug)]
pub struct LockCtor {
    /// The field (`state: Mutex::new(..)`), `let`/`static` binding, or
    /// `None` when the surrounding shape was unrecognizable.
    pub field: Option<String>,
    /// The `rank::` identifier, e.g. `WAL_GROUP` (resolved against
    /// `s2_common::sync::rank::TABLE` later).
    pub class_ident: String,
    /// Enclosing `impl` type, when the construction happens inside one.
    pub impl_ty: Option<String>,
    /// 0-based line of the construction.
    pub line: usize,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq)]
pub enum Recv {
    /// `helper(..)` — a bare (free-function) call.
    Bare,
    /// `self.method(..)` or `self.field.method(..)`; the payload is the
    /// last receiver segment before the method (`None` for plain `self`).
    Method(Option<String>),
    /// `Type::func(..)` / `module::func(..)` — the qualifying segment.
    Qual(String),
}

/// One ordered event inside a function body.
#[derive(Debug)]
pub enum RawEvent {
    /// A no-arg `.lock()` / `.try_lock()` / `.read()` / `.write()` on a
    /// receiver chain ending in `field` (previous segment in `hint`).
    Acquire {
        field: String,
        hint: Option<String>,
        /// `let g = ..` / `g = ..` binding, when present on the line.
        bind: Option<String>,
        line: usize,
        depth: u32,
    },
    /// `cv.wait(g)` / `cv.wait_timeout(g, ..)`: blocks, releasing the
    /// guard named in `guard` for the duration.
    CvWait { guard: Option<String>, rebind: Option<String>, line: usize },
    /// `drop(g)` — explicit guard release.
    DropIdent { name: String },
    /// Brace-scope exit: guards bound deeper than `depth` die here.
    Close { depth: u32 },
    /// A resolvable call site.
    Call { name: String, recv: Recv, line: usize },
    /// A directly-blocking primitive (sleep/recv/join/fsync/blob I/O…).
    Block { what: &'static str, line: usize },
    /// A `fault::failpoint(..)` / `fault::crash_point(..)` hook.
    Hook { line: usize },
    /// Raw file I/O (`write_all`/`set_len`/`flush`/`sync_*`) — the
    /// mutation sites L3 requires failpoint coverage for.
    RawIo { what: &'static str, line: usize },
}

/// One `fn` definition with its ordered body events.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl` type (`impl Log` → `Log`); for a trait default
    /// body this is the trait name.
    pub impl_ty: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` blocks.
    pub impl_trait: Option<String>,
    /// True for default method bodies declared inside `trait { .. }`.
    pub trait_default: bool,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub is_test: bool,
    /// Parameter names from the signature. Bare calls to one of these are
    /// closure-typed arguments, not free functions — the call graph must
    /// not resolve them to a same-named `fn` elsewhere.
    pub params: Vec<String>,
    pub events: Vec<RawEvent>,
}

/// A `trait Name { .. }` declaration and its method names.
#[derive(Debug)]
pub struct TraitDecl {
    pub name: String,
    pub methods: Vec<String>,
    pub line: usize,
}

/// A `counter!("..")` / `gauge!` / `histogram!` registration site.
#[derive(Debug)]
pub struct MetricReg {
    pub kind: &'static str,
    /// First string literal on (or immediately after) the macro line.
    pub name: Option<String>,
    pub line: usize,
}

/// Everything extracted from one source file.
pub struct FileModel {
    pub path: String,
    pub lines: Vec<Line>,
    pub is_test: Vec<bool>,
    pub fns: Vec<FnDef>,
    pub ctors: Vec<LockCtor>,
    pub traits: Vec<TraitDecl>,
    pub metrics: Vec<MetricReg>,
}

// ------------------------------------------------------------ tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    PathSep,
    Comma,
    Semi,
    Eq,
    Bang,
    Amp,
    Colon,
    Pipe,
    Other(char),
}

#[derive(Debug)]
struct T {
    tok: Tok,
    line: usize,
}

fn tokenize(lines: &[Line]) -> Vec<T> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        let mut prev_op = false;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            let tok = match c {
                c if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(T { tok: Tok::Ident(chars[start..i].iter().collect()), line: ln });
                    prev_op = false;
                    continue;
                }
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                '[' => Tok::LBracket,
                ']' => Tok::RBracket,
                '.' => Tok::Dot,
                ',' => Tok::Comma,
                ';' => Tok::Semi,
                '!' if next == Some('=') => {
                    i += 1;
                    Tok::Other('=')
                }
                '!' => Tok::Bang,
                '&' => Tok::Amp,
                '|' => Tok::Pipe,
                ':' if next == Some(':') => {
                    i += 1;
                    Tok::PathSep
                }
                ':' => Tok::Colon,
                '=' if matches!(next, Some('=') | Some('>')) => {
                    i += 1;
                    Tok::Other('=')
                }
                '=' if prev_op => Tok::Other('='),
                '=' => Tok::Eq,
                ' ' | '\t' => {
                    i += 1;
                    prev_op = false;
                    continue;
                }
                other => Tok::Other(other),
            };
            prev_op = matches!(c, '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|' | '<' | '>');
            out.push(T { tok, line: ln });
            i += 1;
        }
    }
    out
}

fn ident(t: Option<&T>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Method names too generic to resolve to workspace definitions: calls to
/// these are dropped rather than risking false call-graph edges into a
/// workspace function that happens to share a std method's name.
const SKIP_CALLS: &[&str] = &[
    "abs",
    "add",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dec",
    "drain",
    "else",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "extend_from_slice",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_init",
    "get_or_insert_with",
    "hash",
    "inc",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "none",
    "observe",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "pow",
    "push",
    "push_back",
    "push_front",
    "read",
    "record",
    "remove",
    "retain",
    "rev",
    "saturating_add",
    "saturating_sub",
    "send",
    "set",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_into",
    "try_lock",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Keywords and control tokens that look like calls but are not.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "while",
    "for",
    "loop",
    "match",
    "return",
    "fn",
    "let",
    "mut",
    "move",
    "ref",
    "in",
    "as",
    "use",
    "pub",
    "impl",
    "trait",
    "struct",
    "enum",
    "mod",
    "where",
    "unsafe",
    "dyn",
    "break",
    "continue",
    "crate",
    "super",
    "self",
    "Self",
    "Some",
    "None",
    "Ok",
    "Err",
    "Box",
    "Vec",
    "Arc",
    "Rc",
    "String",
    "static",
    "const",
    "type",
    "assert",
    "debug_assert",
    "matches",
    "Fn",
    "FnOnce",
    "FnMut",
];

#[derive(Debug)]
enum ScopeKind {
    Impl { ty: String, tr: Option<String> },
    Trait { idx: usize },
    Fn { idx: usize },
    Macro,
    Block,
}

/// Walk back from `from` (inclusive) collecting a dotted receiver chain,
/// skipping balanced `(..)` / `[..]` groups; returns segment idents in
/// source order (`self.a.b.lock()` from `b` → `["self", "a", "b"]`).
fn receiver_chain(toks: &[T], from: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = from as isize;
    loop {
        if j < 0 {
            break;
        }
        match &toks[j as usize].tok {
            Tok::RParen | Tok::RBracket => {
                // Skip the balanced group; the segment (if any) precedes it.
                let open =
                    if toks[j as usize].tok == Tok::RParen { Tok::LParen } else { Tok::LBracket };
                let close = toks[j as usize].tok.clone();
                let mut depth = 1;
                j -= 1;
                while j >= 0 && depth > 0 {
                    if toks[j as usize].tok == close {
                        depth += 1;
                    } else if toks[j as usize].tok == open {
                        depth -= 1;
                    }
                    j -= 1;
                }
            }
            Tok::Ident(s) => {
                segs.push(s.clone());
                j -= 1;
                // Continue only across `.` / `::` chains.
                if j >= 0 && matches!(toks[j as usize].tok, Tok::Dot | Tok::PathSep) {
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Find a `let g = ..` / `g = ..` binding ident for the call at token
/// `at` on `line`. Only walks back over the receiver chain itself
/// (idents, `.`, `::`): any other token between the chain and a `=`
/// means the call is a subexpression (`if x || m.lock()..`,
/// `Arc::clone(&m.read())`) whose guard is statement-temporary, not
/// bound.
fn binding_before(toks: &[T], at: usize, line: usize) -> Option<String> {
    let mut j = at as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 14 && toks[j as usize].line == line {
        match &toks[j as usize].tok {
            Tok::Ident(_) | Tok::Dot | Tok::PathSep => {}
            Tok::Eq => {
                // `let (g, _) = ..` / `let mut g = ..` / `g = ..`
                let mut k = j - 1;
                let mut last_ident: Option<String> = None;
                let mut first_ident: Option<String> = None;
                let mut saw_let = false;
                let mut pat_steps = 0;
                while k >= 0 && pat_steps < 12 && toks[k as usize].line == line {
                    match &toks[k as usize].tok {
                        Tok::Ident(s) if s == "let" => {
                            saw_let = true;
                            break;
                        }
                        // Wrappers and placeholders in the pattern, not
                        // bindings: `if let Some(g) = m.try_lock()`.
                        Tok::Ident(s)
                            if matches!(s.as_str(), "mut" | "Some" | "Ok" | "Err" | "_") => {}
                        Tok::Ident(s) => {
                            if last_ident.is_none() {
                                last_ident = Some(s.clone());
                            }
                            first_ident = Some(s.clone());
                        }
                        Tok::LParen | Tok::RParen | Tok::Comma | Tok::Amp => {}
                        Tok::Other('_') => {}
                        _ => break,
                    }
                    k -= 1;
                    pat_steps += 1;
                }
                // For `let (a, b) = ..` take the first pattern ident; for
                // a bare reassignment the ident just left of `=`.
                return if saw_let { first_ident } else { last_ident };
            }
            _ => return None,
        }
        j -= 1;
        steps += 1;
    }
    None
}

/// Innermost enclosing `fn` scope, if any.
fn innermost_fn(scopes: &[ScopeKind]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        ScopeKind::Fn { idx } => Some(*idx),
        _ => None,
    })
}

/// Nearest `impl`/`trait` context walking outward: `(impl_ty, impl_trait,
/// trait_default)`.
fn item_ctx(scopes: &[ScopeKind], traits: &[TraitDecl]) -> (Option<String>, Option<String>, bool) {
    for s in scopes.iter().rev() {
        match s {
            ScopeKind::Impl { ty, tr } => return (Some(ty.clone()), tr.clone(), false),
            ScopeKind::Trait { idx } => {
                return (Some(traits[*idx].name.clone()), None, true);
            }
            _ => {}
        }
    }
    (None, None, false)
}

/// Field/binding name a lock construction is being assigned to: the
/// nearest preceding `ident:` (struct field), `let ident`, or
/// `static IDENT` within the same statement.
fn ctor_field(toks: &[T], at: usize) -> Option<String> {
    let mut j = at as isize - 1;
    let mut steps = 0;
    while j >= 1 && steps < 25 {
        match &toks[j as usize].tok {
            Tok::Semi | Tok::LBrace | Tok::RBrace => return None,
            Tok::Colon => {
                if let Some(name) = ident(toks.get(j as usize - 1)) {
                    return Some(name.to_string());
                }
            }
            Tok::Eq => {
                if let Some(name) = ident(toks.get(j as usize - 1)) {
                    let before = ident(toks.get(j as usize - 2));
                    if matches!(before, Some("let") | Some("mut") | Some("static")) {
                        return Some(name.to_string());
                    }
                }
            }
            _ => {}
        }
        j -= 1;
        steps += 1;
    }
    None
}

/// Parse one file into its model. `path` is repo-relative.
pub fn parse_file(path: &str, src: &str) -> FileModel {
    let lines = lex(src);
    let is_test = test_spans(&lines);
    let toks = tokenize(&lines);

    let mut fns: Vec<FnDef> = Vec::new();
    let mut ctors: Vec<LockCtor> = Vec::new();
    let mut traits: Vec<TraitDecl> = Vec::new();
    let mut metrics: Vec<MetricReg> = Vec::new();

    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut brace_depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    let mut spawn_stack: Vec<u32> = Vec::new();
    // Pending `fn name` awaiting its body `{` (or a trait `;`).
    let mut pending_fn: Option<(String, usize)> = None;
    // Parameter names seen inside the pending signature's parens.
    let mut pending_params: Vec<String> = Vec::new();
    // Pending `impl`/`trait` header awaiting `{`:
    // (is_impl, idents at angle depth 0, angle depth, header line).
    let mut header: Option<(bool, Vec<String>, u32, usize)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;

        // ------------------------------------------------ header capture
        if header.is_some() {
            let finish = match &toks[i].tok {
                Tok::Other('<') => {
                    header.as_mut().unwrap().2 += 1;
                    false
                }
                Tok::Other('>') => {
                    let h = header.as_mut().unwrap();
                    h.2 = h.2.saturating_sub(1);
                    false
                }
                Tok::Semi => {
                    header = None;
                    false
                }
                Tok::Ident(s) => {
                    let h = header.as_mut().unwrap();
                    if h.2 == 0 {
                        h.1.push(s.clone());
                    }
                    false
                }
                Tok::LBrace => header.as_ref().is_some_and(|h| h.2 == 0),
                _ => false,
            };
            if finish {
                let (is_impl, idents, _, hline) = header.take().unwrap();
                brace_depth += 1;
                if is_impl {
                    let cut = idents.iter().position(|s| s == "where").unwrap_or(idents.len());
                    let idents = &idents[..cut];
                    let (tr, ty) = match idents.iter().position(|s| s == "for") {
                        Some(p) => (
                            idents[..p].last().cloned(),
                            idents[p + 1..].last().cloned().unwrap_or_default(),
                        ),
                        None => (None, idents.last().cloned().unwrap_or_default()),
                    };
                    scopes.push(ScopeKind::Impl { ty, tr });
                } else {
                    let name = idents.first().cloned().unwrap_or_default();
                    traits.push(TraitDecl { name, methods: Vec::new(), line: hline });
                    scopes.push(ScopeKind::Trait { idx: traits.len() - 1 });
                }
            }
            i += 1;
            continue;
        }

        match &toks[i].tok {
            Tok::LBrace => {
                brace_depth += 1;
                match pending_fn.take() {
                    Some((name, fline)) if paren_depth == 0 => {
                        let (impl_ty, impl_trait, trait_default) = item_ctx(&scopes, &traits);
                        if trait_default {
                            if let Some(ScopeKind::Trait { idx }) =
                                scopes.iter().rev().find(|s| matches!(s, ScopeKind::Trait { .. }))
                            {
                                traits[*idx].methods.push(name.clone());
                            }
                        }
                        fns.push(FnDef {
                            name,
                            impl_ty,
                            impl_trait,
                            trait_default,
                            line: fline,
                            is_test: is_test.get(fline).copied().unwrap_or(false),
                            params: std::mem::take(&mut pending_params),
                            events: Vec::new(),
                        });
                        scopes.push(ScopeKind::Fn { idx: fns.len() - 1 });
                    }
                    other => {
                        pending_fn = other;
                        scopes.push(ScopeKind::Block);
                    }
                }
            }
            Tok::RBrace => {
                brace_depth = brace_depth.saturating_sub(1);
                scopes.pop();
                if let Some(idx) = innermost_fn(&scopes) {
                    fns[idx].events.push(RawEvent::Close { depth: brace_depth });
                }
            }
            Tok::LParen => paren_depth += 1,
            Tok::RParen => {
                if spawn_stack.last() == Some(&paren_depth) {
                    spawn_stack.pop();
                }
                paren_depth = paren_depth.saturating_sub(1);
            }
            Tok::Semi if pending_fn.is_some() && paren_depth == 0 => {
                let (name, _) = pending_fn.take().unwrap();
                pending_params.clear();
                if let Some(ScopeKind::Trait { idx }) = scopes
                    .iter()
                    .rev()
                    .find(|s| matches!(s, ScopeKind::Trait { .. } | ScopeKind::Impl { .. }))
                {
                    traits[*idx].methods.push(name);
                }
            }
            Tok::Ident(w) => {
                let w = w.clone();
                match w.as_str() {
                    "fn" => {
                        if let Some(name) = ident(toks.get(i + 1)) {
                            pending_fn = Some((name.to_string(), line));
                            pending_params.clear();
                            i += 2;
                            continue;
                        }
                    }
                    "impl" | "trait"
                        if pending_fn.is_none()
                            && innermost_fn(&scopes).is_none()
                            && !scopes.iter().any(|s| matches!(s, ScopeKind::Macro))
                            && !matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                                Some(Tok::Ident(p)) if p == "dyn") =>
                    {
                        header = Some((w == "impl", Vec::new(), 0, line));
                    }
                    "macro_rules" => {
                        // `macro_rules! name { .. }` — skip arm bodies by
                        // entering a Macro scope at the opening brace.
                        let mut j = i + 1;
                        while j < toks.len() && toks[j].tok != Tok::LBrace {
                            j += 1;
                        }
                        if j < toks.len() {
                            brace_depth += 1;
                            scopes.push(ScopeKind::Macro);
                            i = j + 1;
                            continue;
                        }
                    }
                    _ => {
                        // Signature params: `name :` at paren depth >= 1
                        // while a `fn` header is pending. Generic bounds
                        // (`T: Clone`) sit at paren depth 0 and are skipped.
                        if pending_fn.is_some()
                            && paren_depth >= 1
                            && w != "self"
                            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Colon))
                        {
                            pending_params.push(w.clone());
                        }
                        let fn_idx = innermost_fn(&scopes);
                        let in_macro = scopes.iter().any(|s| matches!(s, ScopeKind::Macro));
                        collect_ident_events(
                            &toks,
                            i,
                            &w,
                            &lines,
                            &is_test,
                            &scopes,
                            brace_depth,
                            paren_depth,
                            &mut spawn_stack,
                            pending_fn.is_some(),
                            &mut fns,
                            &mut ctors,
                            &mut metrics,
                            fn_idx,
                            in_macro,
                        );
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    FileModel { path: path.to_string(), lines, is_test, fns, ctors, traits, metrics }
}

/// Event collection for one identifier token (the long tail of
/// [`parse_file`]'s walk, split out to keep the walker readable).
#[allow(clippy::too_many_arguments)]
fn collect_ident_events(
    toks: &[T],
    i: usize,
    w: &str,
    lines: &[Line],
    is_test: &[bool],
    scopes: &[ScopeKind],
    brace_depth: u32,
    paren_depth: u32,
    spawn_stack: &mut Vec<u32>,
    in_fn_sig: bool,
    fns: &mut [FnDef],
    ctors: &mut Vec<LockCtor>,
    metrics: &mut Vec<MetricReg>,
    fn_idx: Option<usize>,
    in_macro: bool,
) {
    let line = toks[i].line;
    if in_macro {
        return;
    }

    // Lock constructions are collected everywhere (non-test) — they feed
    // the class-resolution map even when outside any fn.
    if (w == "Mutex" || w == "RwLock")
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::PathSep))
        && ident(toks.get(i + 2)) == Some("new")
        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::LParen))
        && !is_test.get(line).copied().unwrap_or(false)
    {
        // `( [&] rank :: CLASS`
        let mut j = i + 4;
        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Amp)) {
            j += 1;
        }
        if ident(toks.get(j)) == Some("rank")
            && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::PathSep))
        {
            if let Some(class) = ident(toks.get(j + 2)) {
                let impl_ty = scopes.iter().rev().find_map(|s| match s {
                    ScopeKind::Impl { ty, .. } => Some(ty.clone()),
                    _ => None,
                });
                ctors.push(LockCtor {
                    field: ctor_field(toks, i),
                    class_ident: class.to_string(),
                    impl_ty,
                    line,
                });
            }
        }
        return;
    }

    // Metric registrations: `counter!(` / `gauge!(` / `histogram!(`.
    if matches!(w, "counter" | "gauge" | "histogram")
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Bang))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::LParen))
        && !is_test.get(line).copied().unwrap_or(false)
    {
        let kind = match w {
            "counter" => "counter",
            "gauge" => "gauge",
            _ => "histogram",
        };
        let name = lines
            .get(line)
            .and_then(|l| l.strings.first())
            .or_else(|| lines.get(line + 1).and_then(|l| l.strings.first()))
            .cloned();
        metrics.push(MetricReg { kind, name, line });
        return;
    }

    // Everything below needs an enclosing fn body (and not a fn signature).
    let Some(fi) = fn_idx else { return };
    if in_fn_sig || fns[fi].is_test {
        return;
    }
    let in_spawn = !spawn_stack.is_empty();
    let next_is_lparen = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::LParen));
    let next_is_macro = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Bang));
    if next_is_macro || !next_is_lparen {
        return;
    }
    let prev = toks.get(i.wrapping_sub(1)).map(|t| &t.tok);
    let is_method = i >= 2 && matches!(prev, Some(Tok::Dot));
    let qual = if i >= 2 && matches!(prev, Some(Tok::PathSep)) {
        ident(toks.get(i - 2)).map(str::to_string)
    } else {
        None
    };
    let noargs = matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::RParen));
    let ev = &mut fns[fi].events;

    match w {
        "spawn" => {
            // Closures handed to `spawn` run on another thread: nothing
            // inside them executes under the spawner's locks, so events
            // in the argument list are suppressed.
            spawn_stack.push(paren_depth + 1);
        }
        "failpoint" | "crash_point" if !in_spawn => {
            ev.push(RawEvent::Hook { line });
        }
        "lock" | "try_lock" | "read" | "write" if is_method && noargs && !in_spawn => {
            let chain = receiver_chain(toks, i - 2);
            if let Some(field) = chain.last().cloned() {
                let hint =
                    if chain.len() >= 2 { Some(chain[chain.len() - 2].clone()) } else { None };
                ev.push(RawEvent::Acquire {
                    field,
                    hint,
                    bind: binding_before(toks, i, line),
                    line,
                    depth: brace_depth,
                });
            }
        }
        "wait" | "wait_timeout" if is_method && !in_spawn => {
            let guard = ident(toks.get(i + 2))
                .filter(|_| {
                    matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Comma) | Some(Tok::RParen))
                })
                .map(str::to_string);
            ev.push(RawEvent::CvWait { guard, rebind: binding_before(toks, i, line), line });
        }
        "drop" if !is_method && !noargs && !in_spawn => {
            if let Some(name) = ident(toks.get(i + 2)) {
                if matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::RParen)) {
                    ev.push(RawEvent::DropIdent { name: name.to_string() });
                }
            }
        }
        "sleep" if qual.as_deref() == Some("thread") && !in_spawn => {
            ev.push(RawEvent::Block { what: "thread::sleep", line });
        }
        "recv" | "recv_timeout" | "recv_deadline" if is_method && !in_spawn => {
            ev.push(RawEvent::Block { what: "channel recv", line });
        }
        "join" if is_method && noargs && !in_spawn => {
            ev.push(RawEvent::Block { what: "thread join", line });
        }
        "enqueue" if is_method && !in_spawn => {
            ev.push(RawEvent::Block { what: "blocking enqueue", line });
        }
        "sync_all" | "sync_data" if is_method && !in_spawn => {
            ev.push(RawEvent::Block { what: "fsync", line });
            ev.push(RawEvent::RawIo { what: "fsync", line });
        }
        "put" | "delete" | "get" if is_method && !in_spawn => {
            // Blob I/O by receiver shape: `..store.put(..)` etc. Plain
            // map/cache `.get(..)` receivers never match these tails.
            let chain = receiver_chain(toks, i - 2);
            let tail = chain.last().map(String::as_str);
            if matches!(tail, Some("store") | Some("blob") | Some("remote")) {
                ev.push(RawEvent::Block { what: "blob I/O", line });
            }
        }
        "write_all" | "set_len" if is_method && !in_spawn => {
            ev.push(RawEvent::RawIo { what: "file write", line });
        }
        "flush" if is_method && noargs && !in_spawn => {
            ev.push(RawEvent::RawIo { what: "file flush", line });
        }
        _ if !in_spawn => {
            if KEYWORDS.contains(&w) || SKIP_CALLS.contains(&w) {
                return;
            }
            let recv = if is_method {
                let chain = receiver_chain(toks, i - 2);
                match chain.last() {
                    Some(s) if s == "self" => Recv::Method(None),
                    Some(s) => Recv::Method(Some(s.clone())),
                    None => Recv::Method(None),
                }
            } else if let Some(q) = qual {
                Recv::Qual(q)
            } else if i > 0 && matches!(prev, Some(Tok::PathSep)) {
                return;
            } else {
                Recv::Bare
            };
            ev.push(RawEvent::Call { name: w.to_string(), recv, line });
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn extracts_fns_with_impl_context() {
        let src = "impl Log {\n    pub fn sync(&self) -> Result<()> { Ok(()) }\n}\n\
                   impl ObjectStore for FaultyStore<S> {\n    fn put(&self) {}\n}\n\
                   fn free_helper() {}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "sync");
        assert_eq!(m.fns[0].impl_ty.as_deref(), Some("Log"));
        assert_eq!(m.fns[1].impl_trait.as_deref(), Some("ObjectStore"));
        assert_eq!(m.fns[1].impl_ty.as_deref(), Some("FaultyStore"));
        assert_eq!(m.fns[2].impl_ty, None);
    }

    #[test]
    fn extracts_multiline_lock_ctor_with_field() {
        let src = "impl Uploader {\n  fn new() -> Self {\n    Inner {\n      state: Mutex::new(\n        &rank::BLOB_UPLOADER,\n        QueueState::default(),\n      ),\n    }\n  }\n}\n";
        let m = model(src);
        assert_eq!(m.ctors.len(), 1);
        assert_eq!(m.ctors[0].field.as_deref(), Some("state"));
        assert_eq!(m.ctors[0].class_ident, "BLOB_UPLOADER");
        assert_eq!(m.ctors[0].impl_ty.as_deref(), Some("Uploader"));
    }

    #[test]
    fn acquisition_with_binding_and_receiver() {
        let src = "impl P {\n  fn f(&self) {\n    let _g = self.commit_lock.lock();\n    self.tables.read();\n  }\n}\n";
        let m = model(src);
        let evs = &m.fns[0].events;
        match &evs[0] {
            RawEvent::Acquire { field, bind, .. } => {
                assert_eq!(field, "commit_lock");
                assert_eq!(bind.as_deref(), Some("_g"));
            }
            other => panic!("expected acquire, got {other:?}"),
        }
        match &evs[1] {
            RawEvent::Acquire { field, bind, .. } => {
                assert_eq!(field, "tables");
                assert!(bind.is_none());
            }
            other => panic!("expected acquire, got {other:?}"),
        }
    }

    #[test]
    fn spawn_closures_are_suppressed() {
        let src = "fn f(&self) {\n  let _g = self.state.lock();\n  std::thread::spawn(move || {\n    std::thread::sleep(d);\n    other.lock();\n  });\n  helper();\n}\n";
        let m = model(src);
        let evs = &m.fns[0].events;
        assert!(
            !evs.iter().any(|e| matches!(e, RawEvent::Block { .. })),
            "spawned sleep leaked: {evs:?}"
        );
        assert!(evs.iter().any(|e| matches!(e, RawEvent::Call { name, .. } if name == "helper")));
        // Only the pre-spawn acquire survives.
        let acquires = evs.iter().filter(|e| matches!(e, RawEvent::Acquire { .. })).count();
        assert_eq!(acquires, 1, "{evs:?}");
    }

    #[test]
    fn trait_methods_and_defaults() {
        let src = "pub trait ObjectStore: Send {\n  fn put(&self) -> Result<()>;\n  fn get(&self) -> Result<()>;\n  fn exists(&self) -> bool { true }\n}\n";
        let m = model(src);
        assert_eq!(m.traits.len(), 1);
        assert_eq!(m.traits[0].methods, vec!["put", "get", "exists"]);
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].trait_default);
    }

    #[test]
    fn cv_wait_consumes_and_rebinds_guard() {
        let src = "fn f() {\n  let mut g = self.state.lock();\n  let (g2, timed) = self.cv.wait_timeout(g, d);\n}\n";
        let m = model(src);
        let evs = &m.fns[0].events;
        match &evs[1] {
            RawEvent::CvWait { guard, rebind, .. } => {
                assert_eq!(guard.as_deref(), Some("g"));
                assert_eq!(rebind.as_deref(), Some("g2"));
            }
            other => panic!("expected cv wait, got {other:?}"),
        }
    }

    #[test]
    fn metric_macros_collected_outside_tests_only() {
        let src = "fn f() { s2_obs::counter!(\"a.b\").inc(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { s2_obs::gauge!(\"t.x\").set(1); }\n}\n";
        let m = model(src);
        assert_eq!(m.metrics.len(), 1);
        assert_eq!(m.metrics[0].name.as_deref(), Some("a.b"));
        assert_eq!(m.metrics[0].kind, "counter");
    }
}
