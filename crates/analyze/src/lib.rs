//! s2-lint: the workspace's static-analysis engine.
//!
//! Zero dependencies, hand-rolled lexer, named rules with an allow-marker
//! escape hatch. See DESIGN.md "Static analysis & concurrency discipline"
//! for the rule table and the marker grammar.
//!
//! Run it with `cargo run -p s2-lint`; it prints one machine-readable line
//! per finding (`path:line: ID/rule: message`) and exits nonzero when any
//! finding survives.

pub mod engine;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod metrics;
pub mod rules;
pub mod workspace;

pub use engine::{lint_source, Finding};
pub use rules::all_rules;
pub use workspace::{analyze_workspace, SourceFile};
