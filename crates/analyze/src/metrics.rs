//! L4 `metric-registry`: consistency between the metrics registered in
//! code (`counter!` / `gauge!` / `histogram!` sites) and the canonical
//! table in DESIGN.md.
//!
//! The DESIGN.md table lives between two HTML-comment markers so it can
//! be located (and regenerated with `s2-lint --dump-metrics`) without
//! parsing the whole document:
//!
//! ```text
//! <!-- s2-lint:metrics-table:begin -->
//! | metric | kind | registered in |
//! |---|---|---|
//! | `wal.append.bytes` | counter | `crates/wal/src/log.rs` |
//! <!-- s2-lint:metrics-table:end -->
//! ```
//!
//! Checks: one kind per name (a name registered as both counter and
//! gauge is a bug — the registry get-or-registers by name), every
//! in-code name style-clean and listed in the table, every table row
//! backed by code. Duplicate same-kind registrations are fine: that is
//! the registry's get-or-register idiom.

use std::collections::BTreeMap;

use crate::engine::{valid_metric_name, Finding};
use crate::items::FileModel;

pub const TABLE_BEGIN: &str = "<!-- s2-lint:metrics-table:begin -->";
pub const TABLE_END: &str = "<!-- s2-lint:metrics-table:end -->";

/// One in-code registration, first site wins.
struct Site<'a> {
    kind: &'static str,
    path: &'a str,
    line: usize,
}

/// A parsed DESIGN.md table row.
struct Row {
    name: String,
    kind: String,
    line: usize,
}

fn parse_table(design: &str) -> Option<Vec<Row>> {
    let mut rows = Vec::new();
    let mut inside = false;
    let mut found = false;
    for (ln, line) in design.lines().enumerate() {
        let t = line.trim();
        if t == TABLE_BEGIN {
            inside = true;
            found = true;
            continue;
        }
        if t == TABLE_END {
            inside = false;
            continue;
        }
        if !inside || !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> =
            t.trim_matches('|').split('|').map(|c| c.trim().trim_matches('`')).collect();
        if cells.len() < 2 {
            continue;
        }
        let (name, kind) = (cells[0], cells[1]);
        // Skip the header and the `|---|` separator row.
        if name.is_empty() || name == "metric" || name.starts_with('-') {
            continue;
        }
        rows.push(Row { name: name.to_string(), kind: kind.to_string(), line: ln + 1 });
    }
    found.then_some(rows)
}

/// Run the L4 checks. `design` is DESIGN.md's text when available; with
/// `None` only the in-code half (kind conflicts, style) runs.
pub(crate) fn check(models: &[FileModel], design: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // First registration site per name; later conflicting kinds report.
    let mut sites: BTreeMap<&str, Site<'_>> = BTreeMap::new();
    for m in models {
        for reg in &m.metrics {
            let Some(name) = reg.name.as_deref() else { continue };
            if !valid_metric_name(name) {
                findings.push(Finding {
                    path: m.path.clone(),
                    line: reg.line + 1,
                    id: "L4",
                    rule: "metric-registry",
                    message: format!(
                        "metric name {name:?} is not dot-separated lower_snake segments"
                    ),
                });
                continue;
            }
            match sites.get(name) {
                None => {
                    sites.insert(name, Site { kind: reg.kind, path: &m.path, line: reg.line });
                }
                Some(first) if first.kind != reg.kind => {
                    findings.push(Finding {
                        path: m.path.clone(),
                        line: reg.line + 1,
                        id: "L4",
                        rule: "metric-registry",
                        message: format!(
                            "metric {name:?} registered as {} here but as {} at {}:{} — \
                             the registry is keyed by name, one kind per metric",
                            reg.kind,
                            first.kind,
                            first.path,
                            first.line + 1
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }

    let Some(design) = design else { return findings };
    let Some(rows) = parse_table(design) else {
        findings.push(Finding {
            path: "DESIGN.md".to_string(),
            line: 1,
            id: "L4",
            rule: "metric-registry",
            message: format!(
                "metrics table markers not found (expected {TABLE_BEGIN} .. {TABLE_END})"
            ),
        });
        return findings;
    };

    let by_name: BTreeMap<&str, &Row> = rows.iter().map(|r| (r.name.as_str(), r)).collect();
    for (name, site) in &sites {
        match by_name.get(name) {
            None => findings.push(Finding {
                path: site.path.to_string(),
                line: site.line + 1,
                id: "L4",
                rule: "metric-registry",
                message: format!(
                    "metric {name:?} is registered in code but missing from DESIGN.md's \
                     metrics table (regenerate with `s2-lint --dump-metrics`)"
                ),
            }),
            Some(row) if row.kind != site.kind => findings.push(Finding {
                path: "DESIGN.md".to_string(),
                line: row.line,
                id: "L4",
                rule: "metric-registry",
                message: format!(
                    "metrics table lists {name:?} as {} but code registers a {} at {}:{}",
                    row.kind,
                    site.kind,
                    site.path,
                    site.line + 1
                ),
            }),
            Some(_) => {}
        }
    }
    for row in &rows {
        if !sites.contains_key(row.name.as_str()) {
            findings.push(Finding {
                path: "DESIGN.md".to_string(),
                line: row.line,
                id: "L4",
                rule: "metric-registry",
                message: format!(
                    "metrics table lists {:?} but no code registers it (stale row?)",
                    row.name
                ),
            });
        }
    }
    findings
}

/// Render the canonical table body for `--dump-metrics` (markers and
/// header included, ready to paste into DESIGN.md).
pub fn dump_table(models: &[FileModel]) -> String {
    let mut sites: BTreeMap<&str, (&'static str, &str)> = BTreeMap::new();
    for m in models {
        for reg in &m.metrics {
            if let Some(name) = reg.name.as_deref() {
                sites.entry(name).or_insert((reg.kind, &m.path));
            }
        }
    }
    let mut out = String::new();
    out.push_str(TABLE_BEGIN);
    out.push_str("\n| metric | kind | registered in |\n|---|---|---|\n");
    for (name, (kind, path)) in &sites {
        out.push_str(&format!("| `{name}` | {kind} | `{path}` |\n"));
    }
    out.push_str(TABLE_END);
    out.push('\n');
    out
}
