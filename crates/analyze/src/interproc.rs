//! Interprocedural lock-order and blocking-call analysis (checks L1–L3).
//!
//! Builds per-function summaries — lock classes possibly acquired,
//! blocking primitives possibly reached, fault hooks possibly hit — and
//! propagates them to a fixpoint over the resolved call graph. A final
//! replay of each function body with a tracked held-lock set emits:
//!
//! - **L1 `lock-order`** — acquiring class B while a held class A has an
//!   equal or higher hierarchy rank (the static complement of the
//!   runtime detector in `s2_common::sync`, which needs the path to
//!   actually execute).
//! - **L2 `blocking-locked`** — a blocking primitive (sleep, channel
//!   recv, thread join, condvar wait, fsync, blob I/O, blocking
//!   enqueue) reachable while any `wal.*`/`core.*` commit-section lock
//!   is held. Plain local file writes are *not* blocking: the WAL
//!   writes its own file under `wal.log` by design.
//! - **L3 `failpoint-coverage`** — raw WAL I/O mutation sites and
//!   `ObjectStore` verbs that no `fault::` hook can reach, i.e. paths
//!   the s2-sim crash matrix cannot exercise.
//!
//! Call and lock resolution is deliberately conservative: an ambiguous
//! receiver or an over-wide candidate set drops the edge rather than
//! guessing, so the pass under-approximates instead of spraying false
//! findings.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use s2_common::sync::rank;

use crate::engine::Finding;
use crate::items::{FileModel, FnDef, RawEvent, Recv};

/// The lock hierarchy, loaded from `s2_common::sync::rank::TABLE`.
struct Classes {
    names: Vec<&'static str>,
    orders: Vec<u32>,
    by_ident: HashMap<&'static str, usize>,
}

impl Classes {
    fn load() -> Classes {
        let mut names = Vec::new();
        let mut orders = Vec::new();
        let mut by_ident = HashMap::new();
        for (ident, class) in rank::TABLE {
            by_ident.insert(*ident, names.len());
            names.push(class.name);
            orders.push(class.order);
        }
        Classes { names, orders, by_ident }
    }

    /// Commit-section classes: held across the WAL/commit critical path.
    fn commit_section(&self, c: usize) -> bool {
        self.names[c].starts_with("wal.") || self.names[c].starts_with("core.")
    }
}

/// `snake_case` → `CamelCase`, for receiver-name → type-name hints
/// (`self.log.sync()` → try `Log::sync`).
fn camel(s: &str) -> String {
    let mut out = String::new();
    for part in s.split('_').filter(|p| !p.is_empty()) {
        let mut cs = part.chars();
        if let Some(c) = cs.next() {
            out.extend(c.to_uppercase());
            out.push_str(&cs.as_str().to_lowercase());
        }
    }
    out
}

/// A resolved body event (the [`RawEvent`] stream with lock classes and
/// call candidates bound).
enum Ev {
    Acquire { class: usize, bind: Option<String>, line: usize, depth: u32 },
    CvWait { guard: Option<String>, rebind: Option<String>, line: usize },
    Drop { name: String },
    Close { depth: u32 },
    Call { cands: Vec<usize>, line: usize },
    Block { what: &'static str, line: usize },
    Hook,
    RawIo { what: &'static str, line: usize },
}

/// How a summary entry got there: directly at `line`, or through a call
/// to global function `callee` at `line`. Chains of `Via` reconstruct
/// the full call path for a finding message.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Wit {
    Direct(usize),
    Via(usize, usize),
}

/// Per-function fixpoint state.
#[derive(Default, Clone, PartialEq)]
struct Summary {
    /// Lock classes possibly acquired during a call to this function.
    acquires: BTreeMap<usize, Wit>,
    /// Blocking primitives possibly reached.
    blocks: BTreeMap<&'static str, Wit>,
    /// A `fault::` hook is reachable from this function.
    hook_down: bool,
}

/// Functions whose effect the surface parse cannot see but the checks
/// must know about: `Log::sync` *is* the WAL fsync (buffered bytes hit
/// the file inside it), so any caller reaching it under a commit-section
/// lock is blocking-while-locked even though the body shows only plain
/// file writes.
const INTRINSIC_BLOCKS: &[(&str, &str, &str)] = &[("Log", "sync", "wal fsync (Log::sync)")];

struct ProgFn<'a> {
    file: usize,
    def: &'a FnDef,
    events: Vec<Ev>,
    intrinsic_block: Option<&'static str>,
}

impl ProgFn<'_> {
    fn display(&self) -> String {
        match &self.def.impl_ty {
            Some(t) => format!("{t}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// One outstanding lock during a body replay.
struct Held {
    class: usize,
    /// Binding names referring to the guard (grows across condvar-wait
    /// rebinds); empty for statement-temporary guards.
    aliases: Vec<String>,
    depth: u32,
    line: usize,
}

/// Dedup key set: (fn, line, check id, detail).
type Seen = BTreeSet<(usize, usize, &'static str, String)>;

pub(crate) struct Program<'a> {
    models: &'a [FileModel],
    classes: Classes,
    fns: Vec<ProgFn<'a>>,
    unknown_classes: Vec<Finding>,
}

/// Run L1–L3 over the parsed workspace.
pub(crate) fn check(models: &[FileModel]) -> Vec<Finding> {
    let prog = Program::build(models);
    let summaries = prog.fixpoint();
    let mut findings = prog.unknown_classes.clone();
    findings.extend(prog.check_bodies(&summaries));
    findings.extend(prog.check_failpoint_coverage(&summaries));
    findings
}

impl<'a> Program<'a> {
    fn build(models: &'a [FileModel]) -> Program<'a> {
        let classes = Classes::load();

        // ---- lock construction maps (field name → class candidates)
        let mut by_impl_field: HashMap<(String, String), BTreeSet<usize>> = HashMap::new();
        let mut by_file_field: HashMap<(usize, String), BTreeSet<usize>> = HashMap::new();
        let mut by_field: HashMap<String, BTreeSet<usize>> = HashMap::new();
        let mut unknown_classes = Vec::new();
        for (fi, m) in models.iter().enumerate() {
            for ctor in &m.ctors {
                let Some(&class) = classes.by_ident.get(ctor.class_ident.as_str()) else {
                    unknown_classes.push(Finding {
                        path: m.path.clone(),
                        line: ctor.line + 1,
                        id: "L1",
                        rule: "lock-order",
                        message: format!(
                            "unknown lock class `rank::{}` (not in sync::rank::TABLE; \
                             add it so the hierarchy stays checkable)",
                            ctor.class_ident
                        ),
                    });
                    continue;
                };
                let Some(field) = ctor.field.clone() else { continue };
                if let Some(ty) = ctor.impl_ty.clone() {
                    by_impl_field.entry((ty, field.clone())).or_default().insert(class);
                }
                by_file_field.entry((fi, field.clone())).or_default().insert(class);
                by_field.entry(field).or_default().insert(class);
            }
        }
        let single = |set: Option<&BTreeSet<usize>>| match set {
            Some(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        };

        // ---- global function table (test fns excluded entirely)
        let mut fn_ids: Vec<(usize, usize)> = Vec::new();
        for (fi, m) in models.iter().enumerate() {
            for (i, f) in m.fns.iter().enumerate() {
                if !f.is_test {
                    fn_ids.push((fi, i));
                }
            }
        }
        let mut by_impl_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut method_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut file_free: HashMap<(usize, String), Vec<usize>> = HashMap::new();
        for (gi, &(fi, i)) in fn_ids.iter().enumerate() {
            let f = &models[fi].fns[i];
            match &f.impl_ty {
                Some(ty) => {
                    by_impl_name.entry((ty.clone(), f.name.clone())).or_default().push(gi);
                    method_by_name.entry(f.name.clone()).or_default().push(gi);
                }
                None => {
                    free_by_name.entry(f.name.clone()).or_default().push(gi);
                    file_free.entry((fi, f.name.clone())).or_default().push(gi);
                }
            }
        }
        let capped = |v: Option<&Vec<usize>>| -> Vec<usize> {
            match v {
                Some(v) if !v.is_empty() && v.len() <= 3 => v.clone(),
                _ => Vec::new(),
            }
        };

        // ---- resolve each body's raw events
        let mut fns = Vec::with_capacity(fn_ids.len());
        for &(fi, i) in &fn_ids {
            let def = &models[fi].fns[i];
            let mut events = Vec::new();
            for ev in &def.events {
                match ev {
                    RawEvent::Acquire { field, hint, bind, line, depth } => {
                        // Resolution ladder: enclosing impl's field → same
                        // file's field → globally-unique field → receiver
                        // hint as a type name. Ambiguity drops the event.
                        let class = def
                            .impl_ty
                            .as_ref()
                            .and_then(|t| single(by_impl_field.get(&(t.clone(), field.clone()))))
                            .or_else(|| single(by_file_field.get(&(fi, field.clone()))))
                            .or_else(|| single(by_field.get(field)))
                            .or_else(|| {
                                hint.as_ref().and_then(|h| {
                                    single(by_impl_field.get(&(camel(h), field.clone())))
                                })
                            });
                        if let Some(class) = class {
                            events.push(Ev::Acquire {
                                class,
                                bind: bind.clone(),
                                line: *line,
                                depth: *depth,
                            });
                        }
                    }
                    RawEvent::CvWait { guard, rebind, line } => events.push(Ev::CvWait {
                        guard: guard.clone(),
                        rebind: rebind.clone(),
                        line: *line,
                    }),
                    RawEvent::DropIdent { name } => events.push(Ev::Drop { name: name.clone() }),
                    RawEvent::Close { depth } => events.push(Ev::Close { depth: *depth }),
                    RawEvent::Block { what, line } => events.push(Ev::Block { what, line: *line }),
                    RawEvent::Hook { .. } => events.push(Ev::Hook),
                    RawEvent::RawIo { what, line } => events.push(Ev::RawIo { what, line: *line }),
                    RawEvent::Call { name, recv, line } => {
                        let cands = match recv {
                            Recv::Method(None) => match &def.impl_ty {
                                Some(ty) => capped(by_impl_name.get(&(ty.clone(), name.clone()))),
                                None => Vec::new(),
                            },
                            Recv::Method(Some(seg)) => {
                                let by_ty = capped(by_impl_name.get(&(camel(seg), name.clone())));
                                if !by_ty.is_empty() {
                                    by_ty
                                } else {
                                    // Fall back to a globally-unique method
                                    // name; anything wider is too risky.
                                    match method_by_name.get(name) {
                                        Some(v) if v.len() == 1 => v.clone(),
                                        _ => Vec::new(),
                                    }
                                }
                            }
                            Recv::Qual(q) => {
                                if q.chars().next().is_some_and(char::is_uppercase) {
                                    capped(by_impl_name.get(&(q.clone(), name.clone())))
                                } else {
                                    match free_by_name.get(name) {
                                        Some(v) if v.len() == 1 => v.clone(),
                                        _ => Vec::new(),
                                    }
                                }
                            }
                            Recv::Bare if def.params.iter().any(|p| p == name) => {
                                // Call through a closure-typed parameter:
                                // not a free fn, and we can't see its body.
                                Vec::new()
                            }
                            Recv::Bare => {
                                let local = capped(file_free.get(&(fi, name.clone())));
                                if !local.is_empty() {
                                    local
                                } else {
                                    match free_by_name.get(name) {
                                        Some(v) if v.len() == 1 => v.clone(),
                                        _ => Vec::new(),
                                    }
                                }
                            }
                        };
                        if !cands.is_empty() {
                            events.push(Ev::Call { cands, line: *line });
                        }
                    }
                }
            }
            let intrinsic_block = INTRINSIC_BLOCKS.iter().find_map(|(ty, name, what)| {
                (def.impl_ty.as_deref() == Some(*ty) && def.name == *name).then_some(*what)
            });
            fns.push(ProgFn { file: fi, def, events, intrinsic_block });
        }

        Program { models, classes, fns, unknown_classes }
    }

    fn path(&self, gi: usize) -> &str {
        &self.models[self.fns[gi].file].path
    }

    /// Propagate summaries to a fixpoint (monotone: sets only grow).
    fn fixpoint(&self) -> Vec<Summary> {
        let mut sums = vec![Summary::default(); self.fns.len()];
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for gi in 0..self.fns.len() {
                let f = &self.fns[gi];
                let mut s = Summary::default();
                if let Some(what) = f.intrinsic_block {
                    s.blocks.insert(what, Wit::Direct(f.def.line));
                }
                for ev in &f.events {
                    match ev {
                        Ev::Acquire { class, line, .. } => {
                            s.acquires.entry(*class).or_insert(Wit::Direct(*line));
                        }
                        Ev::Block { what, line } => {
                            s.blocks.entry(what).or_insert(Wit::Direct(*line));
                        }
                        Ev::CvWait { line, .. } => {
                            s.blocks.entry("condvar wait").or_insert(Wit::Direct(*line));
                        }
                        Ev::Hook => s.hook_down = true,
                        Ev::Call { cands, line } => {
                            for &c in cands {
                                let cs = &sums[c];
                                for &cls in cs.acquires.keys() {
                                    s.acquires.entry(cls).or_insert(Wit::Via(c, *line));
                                }
                                for &what in cs.blocks.keys() {
                                    s.blocks.entry(what).or_insert(Wit::Via(c, *line));
                                }
                                s.hook_down |= cs.hook_down;
                            }
                        }
                        _ => {}
                    }
                }
                if s != sums[gi] {
                    sums[gi] = s;
                    changed = true;
                }
            }
        }
        sums
    }

    /// Format the call path by which `gi` reaches `target`, e.g.
    /// `wait_durable -> lead -> lead_inner -> Log::sync`.
    fn chain_to<F>(&self, sums: &[Summary], mut gi: usize, lookup: F) -> String
    where
        F: Fn(&Summary) -> Option<Wit>,
    {
        let mut out = self.fns[gi].display();
        for _ in 0..12 {
            match lookup(&sums[gi]) {
                Some(Wit::Via(next, _)) => {
                    gi = next;
                    out.push_str(" -> ");
                    out.push_str(&self.fns[gi].display());
                }
                Some(Wit::Direct(line)) => {
                    out.push_str(&format!(" ({}:{})", self.path(gi), line + 1));
                    return out;
                }
                None => return out,
            }
        }
        out
    }

    /// Emit L1 findings for acquiring class `b` (directly or via the call
    /// chain in `via`) with `held` locks outstanding.
    #[allow(clippy::too_many_arguments)]
    fn l1(
        &self,
        seen: &mut Seen,
        gi: usize,
        held: &[Held],
        b: usize,
        line: usize,
        via: Option<&str>,
        findings: &mut Vec<Finding>,
    ) {
        let cls = &self.classes;
        for h in held {
            // Same-class re-acquire is exempt: statically a second
            // *instance* of the class (sharded locks) is indistinguishable
            // from a true re-entry, and the runtime detector owns that case.
            if h.class != b && cls.orders[h.class] >= cls.orders[b] {
                let key = (gi, line, "L1", format!("{}<{}", h.class, b));
                if seen.insert(key) {
                    let how = match via {
                        Some(chain) => format!("call chain {chain} acquires"),
                        None => "acquires".to_string(),
                    };
                    findings.push(Finding {
                        path: self.path(gi).to_string(),
                        line: line + 1,
                        id: "L1",
                        rule: "lock-order",
                        message: format!(
                            "lock-order inversion: {how} `{}` (rank {}) while `{}` \
                             (rank {}, acquired line {}) is held",
                            cls.names[b],
                            cls.orders[b],
                            cls.names[h.class],
                            cls.orders[h.class],
                            h.line + 1
                        ),
                    });
                }
            }
        }
    }

    /// Replay every body with a tracked held-lock set; emit L1/L2.
    fn check_bodies(&self, sums: &[Summary]) -> Vec<Finding> {
        let cls = &self.classes;
        let mut findings = Vec::new();
        let mut seen: Seen = BTreeSet::new();

        for (gi, f) in self.fns.iter().enumerate() {
            let mut held: Vec<Held> = Vec::new();
            for ev in &f.events {
                // Unnamed guards (`self.x.lock().len()`) live to the end of
                // their statement; approximate that as "their source line".
                let cur_line = match ev {
                    Ev::Acquire { line, .. }
                    | Ev::CvWait { line, .. }
                    | Ev::Call { line, .. }
                    | Ev::Block { line, .. }
                    | Ev::RawIo { line, .. } => Some(*line),
                    _ => None,
                };
                if let Some(l) = cur_line {
                    held.retain(|h| !h.aliases.is_empty() || h.line == l);
                }
                match ev {
                    Ev::Acquire { class, bind, line, depth } => {
                        self.l1(&mut seen, gi, &held, *class, *line, None, &mut findings);
                        held.push(Held {
                            class: *class,
                            aliases: bind.clone().into_iter().collect(),
                            depth: *depth,
                            line: *line,
                        });
                    }
                    Ev::CvWait { guard, rebind, line } => {
                        for h in &held {
                            let is_guard =
                                guard.as_ref().is_some_and(|g| h.aliases.iter().any(|a| a == g));
                            if !is_guard && cls.commit_section(h.class) {
                                let key = (gi, *line, "L2", cls.names[h.class].to_string());
                                if seen.insert(key) {
                                    findings.push(Finding {
                                        path: self.path(gi).to_string(),
                                        line: *line + 1,
                                        id: "L2",
                                        rule: "blocking-locked",
                                        message: format!(
                                            "condvar wait while commit-section lock `{}` \
                                             (acquired line {}) is held and not released \
                                             by the wait",
                                            cls.names[h.class],
                                            h.line + 1
                                        ),
                                    });
                                }
                            }
                        }
                        if let Some(g) = guard {
                            if let Some(h) =
                                held.iter_mut().find(|h| h.aliases.iter().any(|a| a == g))
                            {
                                match rebind {
                                    // The wait returns the same guard under a
                                    // new name; keep the old alias too (the
                                    // common `let (g2,_) = wait(g); g = g2;`
                                    // shape re-uses it).
                                    Some(r) => h.aliases.push(r.clone()),
                                    None => {
                                        let idx = held
                                            .iter()
                                            .position(|h| h.aliases.iter().any(|a| a == g))
                                            .unwrap();
                                        held.remove(idx);
                                    }
                                }
                            }
                        }
                    }
                    Ev::Drop { name } => {
                        held.retain(|h| !h.aliases.iter().any(|a| a == name));
                    }
                    Ev::Close { depth } => held.retain(|h| h.depth <= *depth),
                    Ev::Block { what, line } => {
                        for h in &held {
                            if cls.commit_section(h.class) {
                                let key = (gi, *line, "L2", cls.names[h.class].to_string());
                                if seen.insert(key) {
                                    findings.push(Finding {
                                        path: self.path(gi).to_string(),
                                        line: *line + 1,
                                        id: "L2",
                                        rule: "blocking-locked",
                                        message: format!(
                                            "blocking call ({what}) while commit-section \
                                             lock `{}` (acquired line {}) is held",
                                            cls.names[h.class],
                                            h.line + 1
                                        ),
                                    });
                                }
                            }
                        }
                    }
                    Ev::Call { cands, line } => {
                        if held.is_empty() {
                            continue;
                        }
                        for &c in cands {
                            for &b in sums[c].acquires.keys() {
                                let chain = self.chain_to(sums, c, |s| s.acquires.get(&b).copied());
                                self.l1(
                                    &mut seen,
                                    gi,
                                    &held,
                                    b,
                                    *line,
                                    Some(&chain),
                                    &mut findings,
                                );
                            }
                            if held.iter().any(|h| cls.commit_section(h.class)) {
                                for &what in sums[c].blocks.keys() {
                                    let h =
                                        held.iter().find(|h| cls.commit_section(h.class)).unwrap();
                                    let key = (gi, *line, "L2", format!("{}/{what}", h.class));
                                    if seen.insert(key) {
                                        let chain =
                                            self.chain_to(sums, c, |s| s.blocks.get(what).copied());
                                        findings.push(Finding {
                                            path: self.path(gi).to_string(),
                                            line: *line + 1,
                                            id: "L2",
                                            rule: "blocking-locked",
                                            message: format!(
                                                "call chain {chain} blocks ({what}) while \
                                                 commit-section lock `{}` (acquired line \
                                                 {}) is held",
                                                cls.names[h.class],
                                                h.line + 1
                                            ),
                                        });
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        findings
    }

    /// L3: failpoint coverage for raw WAL I/O and `ObjectStore` verbs.
    fn check_failpoint_coverage(&self, sums: &[Summary]) -> Vec<Finding> {
        let mut findings = Vec::new();

        // Forward closure from every function with a reachable hook: if an
        // ancestor with a hook calls into f, the crash matrix covers f.
        let mut covered_up = vec![false; self.fns.len()];
        let mut work: Vec<usize> = (0..self.fns.len()).filter(|&gi| sums[gi].hook_down).collect();
        for &gi in &work {
            covered_up[gi] = true;
        }
        while let Some(gi) = work.pop() {
            for ev in &self.fns[gi].events {
                if let Ev::Call { cands, .. } = ev {
                    for &c in cands {
                        if !covered_up[c] {
                            covered_up[c] = true;
                            work.push(c);
                        }
                    }
                }
            }
        }

        // L3a: raw I/O mutation sites in the WAL crate.
        for (gi, f) in self.fns.iter().enumerate() {
            if !self.path(gi).starts_with("crates/wal/") {
                continue;
            }
            if sums[gi].hook_down || covered_up[gi] {
                continue;
            }
            // `Log::append*` mutates the durable stream even when the body is
            // memory-only (the bytes become durable at the next sync), so the
            // name is the mutation signal there, not a raw-I/O token.
            let log_append = f.def.impl_ty.as_deref() == Some("Log")
                && f.def.name.starts_with("append")
                && !f.def.is_test;
            let raw_io = f.events.iter().find_map(|e| match e {
                Ev::RawIo { what, line } => Some((*what, *line)),
                _ => None,
            });
            if let Some((what, line)) =
                raw_io.or_else(|| log_append.then_some(("log append", f.def.line)))
            {
                findings.push(Finding {
                    path: self.path(gi).to_string(),
                    line: line + 1,
                    id: "L3",
                    rule: "failpoint-coverage",
                    message: format!(
                        "WAL mutation site ({what}) in `{}` reaches no fault:: hook — \
                         the s2-sim crash matrix cannot exercise this path",
                        f.display()
                    ),
                });
            }
        }

        // L3b: every ObjectStore verb needs >= 1 impl reaching a hook.
        let declares_store =
            self.models.iter().any(|m| m.traits.iter().any(|t| t.name == "ObjectStore"));
        if declares_store {
            for verb in ["put", "get", "delete"] {
                let impls: Vec<usize> = self
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| {
                        f.def.impl_trait.as_deref() == Some("ObjectStore")
                            && f.def.name == verb
                            && !f.def.trait_default
                    })
                    .map(|(gi, _)| gi)
                    .collect();
                if !impls.is_empty() && !impls.iter().any(|&gi| sums[gi].hook_down) {
                    let gi = impls[0];
                    findings.push(Finding {
                        path: self.path(gi).to_string(),
                        line: self.fns[gi].def.line + 1,
                        id: "L3",
                        rule: "failpoint-coverage",
                        message: format!(
                            "no ObjectStore::{verb} implementation reaches a fault:: \
                             hook — blob {verb} faults cannot be injected"
                        ),
                    });
                }
            }
        }

        findings
    }
}
