//! Whole-workspace driver for the interprocedural checks: builds the
//! program model over every source file, runs L1–L4, and applies the
//! same `s2-lint: allow(..)` waiver grammar the per-line rules use.

use crate::engine::{allowed, parse_markers, Finding};
use crate::interproc;
use crate::items::{parse_file, FileModel};
use crate::metrics;

/// One source file handed to the analyzer (repo-relative path + text).
pub struct SourceFile {
    pub path: String,
    pub src: String,
}

/// Run the interprocedural checks (L1–L4) over the whole workspace.
/// `design` is the text of DESIGN.md when available; without it the L4
/// doc-sync half is skipped (the in-code half still runs).
pub fn analyze_workspace(files: &[SourceFile], design: Option<&str>) -> Vec<Finding> {
    let models: Vec<FileModel> = files.iter().map(|f| parse_file(&f.path, &f.src)).collect();

    let mut findings = Vec::new();
    findings.extend(interproc::check(&models));
    findings.extend(metrics::check(&models, design));

    // Waivers: a finding is dropped when its line (or the line above it)
    // carries an allow(<rule>, <reason>) marker for its rule — the same
    // grammar the per-line rules honour.
    findings.retain(|f| {
        let Some(model) = models.iter().find(|m| m.path == f.path) else {
            return true; // DESIGN.md rows have no source lines to waive from
        };
        let markers = parse_markers(&model.lines);
        !allowed(&markers, &model.lines, f.rule, f.line.saturating_sub(1))
    });
    findings.sort_by(|a, b| (&a.path, a.line, a.id).cmp(&(&b.path, b.line, b.id)));
    findings
}
