//! A minimal Rust surface lexer: splits each source line into *code*,
//! *comment text* and *string-literal contents* so rules can match tokens
//! without being fooled by strings or comments (including this file's own
//! rule descriptions).
//!
//! This is not a full Rust lexer — it understands exactly what the rules
//! need: line comments, nested block comments, string literals (with
//! escapes), raw strings (`r"…"`, `r#"…"#`, any hash depth, multiline),
//! byte strings, and character literals vs. lifetimes. Everything else
//! passes through as code.

/// One source line, split by syntactic role.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and every string/char literal replaced by
    /// an empty `""` placeholder (so `"x.unwrap()"` cannot trip a rule).
    pub code: String,
    /// Concatenated comment text on this line (line + block comments).
    pub comment: String,
    /// Contents of string literals that *start* on this line.
    pub strings: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    /// `doc: true` for `///` and `//!` comments, whose text is discarded:
    /// markers and SAFETY tags live in plain `//` comments, and doc text
    /// routinely *describes* markers without meaning them.
    LineComment {
        doc: bool,
    },
    BlockComment(u32),
    Str {
        raw_hashes: Option<u32>,
    },
}

/// Lex `src` into per-line buffers. Multiline constructs (block comments,
/// raw strings) contribute to every line they span.
pub fn lex(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut cur_str = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;

    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '\n' => {
                    newline!();
                    i += 1;
                }
                '/' if next == Some('/') => {
                    let third = chars.get(i + 2).copied();
                    state = State::LineComment { doc: third == Some('/') || third == Some('!') };
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    state = State::Str { raw_hashes: None };
                    cur_str.clear();
                    i += 1;
                }
                'r' | 'b' => {
                    // r"…", r#"…"#, br"…", b"…" — count hashes after the
                    // prefix and enter raw/byte string mode when a quote
                    // follows. A bare identifier containing r/b stays code.
                    let prev_ident =
                        cur.code.chars().last().is_some_and(|p| p.is_alphanumeric() || p == '_');
                    let mut j = i + 1;
                    if !prev_ident {
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = j > i + 1 || hashes > 0;
                        if chars.get(j) == Some(&'"') && (is_raw || c == 'b') {
                            state =
                                State::Str { raw_hashes: if is_raw { Some(hashes) } else { None } };
                            cur_str.clear();
                            i = j + 1;
                            continue;
                        }
                    }
                    cur.code.push(c);
                    i += 1;
                }
                '\'' => {
                    // Character literal vs. lifetime. A literal is 'x' or
                    // '\…'; a lifetime is 'ident with no closing quote.
                    let is_escape = next == Some('\\');
                    let closes = if is_escape {
                        // Scan from past the escaped character, so '\'' and
                        // multi-char escapes like '\u{7f}' terminate right.
                        let mut j = i + 3;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        chars.get(j) == Some(&'\'')
                    } else {
                        chars.get(i + 2) == Some(&'\'')
                    };
                    if closes {
                        // Swallow the whole literal.
                        cur.code.push_str("\"\"");
                        let mut j = if is_escape { i + 3 } else { i + 1 };
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else {
                        cur.code.push(c); // lifetime tick stays in code
                        i += 1;
                    }
                }
                _ => {
                    cur.code.push(c);
                    i += 1;
                }
            },
            State::LineComment { doc } => {
                if c == '\n' {
                    state = State::Code;
                    newline!();
                } else if !doc {
                    cur.comment.push(c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Keep escapes verbatim in the captured content;
                            // rules only substring-match, exactness is moot.
                            if let Some(n) = next {
                                cur_str.push(c);
                                if n != '\n' {
                                    cur_str.push(n);
                                }
                                i += 2;
                                if n == '\n' {
                                    newline!();
                                }
                                continue;
                            }
                            i += 1;
                        } else if c == '"' {
                            cur.code.push_str("\"\"");
                            cur.strings.push(std::mem::take(&mut cur_str));
                            state = State::Code;
                            i += 1;
                        } else {
                            if c == '\n' {
                                cur_str.push('\n');
                                newline!();
                            } else {
                                cur_str.push(c);
                            }
                            i += 1;
                        }
                    }
                    Some(hashes) => {
                        let mut closed = false;
                        if c == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k as usize) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                cur.code.push_str("\"\"");
                                cur.strings.push(std::mem::take(&mut cur_str));
                                state = State::Code;
                                i += 1 + hashes as usize;
                                closed = true;
                            }
                        }
                        if !closed {
                            if c == '\n' {
                                cur_str.push('\n');
                                newline!();
                            } else {
                                cur_str.push(c);
                            }
                            i += 1;
                        }
                    }
                }
            }
        }
    }
    // Flush the final (unterminated) line.
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.strings.is_empty() {
        lines.push(cur);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_leave_code() {
        let src = "let x = \"a.unwrap()\"; // call .unwrap() later\nfoo();";
        let lines = lex(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains(".unwrap()"), "string content leaked: {}", lines[0].code);
        assert!(lines[0].comment.contains(".unwrap()"));
        assert_eq!(lines[0].strings, vec!["a.unwrap()".to_string()]);
        assert_eq!(lines[1].code, "foo();");
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "a /* x /* y */ z */ b\nlet s = r#\"multi\nline \"quoted\"\"#; c";
        let lines = lex(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains('y'));
        assert!(lines[1].code.contains("let s ="));
        assert_eq!(lines[2].strings, vec!["multi\nline \"quoted\"".to_string()]);
        assert!(lines[2].code.contains("; c"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\n'; let q = '\"'; }";
        let lines = lex(src);
        assert!(lines[0].code.contains("<'a>"), "lifetime mangled: {}", lines[0].code);
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains("\\n"));
        // The '"' literal must not open a string state.
        assert!(lines[0].code.ends_with('}'));
    }

    #[test]
    fn multiline_plain_string() {
        let src = "let s = \"line one\nline two\"; done();";
        let lines = lex(src);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].strings, vec!["line one\nline two".to_string()]);
        assert!(lines[1].code.contains("done();"));
    }
}
