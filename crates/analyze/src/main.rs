//! CLI driver: lint every `crates/**/src/**/*.rs` file in the workspace.
//!
//! Output is one line per finding, `path:line: ID/rule: message`, sorted by
//! path then line, plus a trailing per-rule summary on stderr. Exit status
//! is nonzero iff any finding was produced, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use s2_lint::{all_rules, lint_source};

/// Workspace root: this crate lives at `<root>/crates/analyze`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collect every `.rs` file under a `src/` directory of any crate, sorted
/// for deterministic output.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
            {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn main() -> ExitCode {
    let root = workspace_root();
    let rules = all_rules();
    let mut total = 0usize;
    let mut by_rule: Vec<(String, usize)> = Vec::new();

    for path in collect_sources(&root) {
        let rel = path.strip_prefix(&root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("s2-lint: cannot read {rel}: {e}");
                total += 1;
                continue;
            }
        };
        for finding in lint_source(&rel, &src, &rules) {
            println!("{finding}");
            total += 1;
            let key = format!("{}/{}", finding.id, finding.rule);
            match by_rule.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((key, 1)),
            }
        }
    }

    if total == 0 {
        eprintln!("s2-lint: clean ({} rules)", rules.len());
        ExitCode::SUCCESS
    } else {
        by_rule.sort();
        let summary: Vec<String> = by_rule.iter().map(|(k, n)| format!("{k}: {n}")).collect();
        eprintln!("s2-lint: {total} finding(s) [{}]", summary.join(", "));
        ExitCode::FAILURE
    }
}
