//! CLI driver: lint every `crates/**/src/**/*.rs` file in the workspace
//! with the per-line rules (R1–R6), then run the interprocedural checks
//! (L1–L4) over the whole program model plus DESIGN.md.
//!
//! Output is one line per finding, `path:line: ID/rule: message`, sorted
//! by path then line, plus a trailing per-rule summary on stderr. Exit
//! status is nonzero iff any finding was produced, so CI can gate on it.
//!
//! Flags:
//! - `--json <path>` — also write the findings as a JSON array.
//! - `--explain <ID>` — print what a rule checks and why; exit.
//! - `--dump-metrics` — print the canonical DESIGN.md metrics table
//!   (markers included) built from the code's registration sites; exit.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use s2_lint::workspace::{analyze_workspace, SourceFile};
use s2_lint::{all_rules, lint_source, Finding};

/// Workspace root: this crate lives at `<root>/crates/analyze`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collect every `.rs` file under a `src/` directory of any crate, sorted
/// for deterministic output.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
            {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"path\": \"{}\", \"line\": {}, \"id\": \"{}\", \"rule\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            json_escape(&f.path),
            f.line,
            f.id,
            f.rule,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<PathBuf> = None;
    let mut dump_metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--explain" => {
                let Some(id) = args.get(i + 1) else {
                    eprintln!("s2-lint: --explain needs a rule id (R1..R6, L1..L4)");
                    return ExitCode::FAILURE;
                };
                return match s2_lint::rules::explain(id) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("s2-lint: unknown rule {id:?} (try R1..R6, L1..L4)");
                        ExitCode::FAILURE
                    }
                };
            }
            "--json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("s2-lint: --json needs an output path");
                    return ExitCode::FAILURE;
                };
                json_path = Some(PathBuf::from(p));
                i += 2;
                continue;
            }
            "--dump-metrics" => {
                dump_metrics = true;
                i += 1;
            }
            other => {
                eprintln!("s2-lint: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let rules = all_rules();

    let mut files: Vec<SourceFile> = Vec::new();
    let mut unreadable = 0usize;
    for path in collect_sources(&root) {
        let rel = path.strip_prefix(&root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(&path) {
            Ok(src) => files.push(SourceFile { path: rel, src }),
            Err(e) => {
                eprintln!("s2-lint: cannot read {rel}: {e}");
                unreadable += 1;
            }
        }
    }

    if dump_metrics {
        let models: Vec<_> =
            files.iter().map(|f| s2_lint::items::parse_file(&f.path, &f.src)).collect();
        print!("{}", s2_lint::metrics::dump_table(&models));
        return ExitCode::SUCCESS;
    }

    // Per-line rules (R1–R6), then the interprocedural pass (L1–L4).
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        findings.extend(lint_source(&f.path, &f.src, &rules));
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    findings.extend(analyze_workspace(&files, design.as_deref()));
    findings.sort_by(|a, b| (&a.path, a.line, a.id).cmp(&(&b.path, b.line, b.id)));

    if let Some(p) = &json_path {
        if let Some(dir) = p.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(p, to_json(&findings)) {
            eprintln!("s2-lint: cannot write {}: {e}", p.display());
            unreadable += 1;
        }
    }

    let mut by_rule: Vec<(String, usize)> = Vec::new();
    for finding in &findings {
        println!("{finding}");
        let key = format!("{}/{}", finding.id, finding.rule);
        match by_rule.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((key, 1)),
        }
    }

    let total = findings.len() + unreadable;
    if total == 0 {
        eprintln!("s2-lint: clean ({} rules + L1-L4 over {} files)", rules.len(), files.len());
        ExitCode::SUCCESS
    } else {
        by_rule.sort();
        let summary: Vec<String> = by_rule.iter().map(|(k, n)| format!("{k}: {n}")).collect();
        eprintln!("s2-lint: {total} finding(s) [{}]", summary.join(", "));
        ExitCode::FAILURE
    }
}
