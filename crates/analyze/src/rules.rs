//! The rule table. Every rule has a stable id (`R1`..`R5`), a marker name
//! (what `s2-lint: allow(<name>, …)` refers to), and a scope predicate over
//! repo-relative paths. Adding a rule = adding an entry to [`all_rules`] and
//! a line to DESIGN.md's rule table.

/// A token-presence rule: flag lines of non-test code whose stripped code
/// contains any of `tokens`, within the files selected by `applies`.
pub struct TokenRule {
    pub id: &'static str,
    pub name: &'static str,
    pub tokens: &'static [&'static str],
    pub message: &'static str,
    pub applies: fn(&str) -> bool,
}

/// R4: every `unsafe` must be annotated with a `// SAFETY:` comment on the
/// same line or on the contiguous comment/attribute block above it.
pub struct SafetyCommentRule {
    pub id: &'static str,
    pub name: &'static str,
}

/// R5: string literals passed at metric/event registration sites must be
/// `subsystem.noun_verb` style.
pub struct MetricNameRule {
    pub id: &'static str,
    pub name: &'static str,
    pub callsites: &'static [&'static str],
}

pub enum RuleKind {
    Token(TokenRule),
    SafetyComment(SafetyCommentRule),
    MetricName(MetricNameRule),
}

pub struct Rule {
    pub kind: RuleKind,
}

/// R1 scope: modules that must stay deterministic — the pure breaker core,
/// the fault-injection registry, and the whole simulation harness. These are
/// replayed from seeds; a wall-clock read makes replays diverge.
fn deterministic_module(path: &str) -> bool {
    path == "crates/blob/src/health.rs"
        || path == "crates/common/src/fault.rs"
        || path.starts_with("crates/sim/src/")
}

/// R2/R3 scope: crates on the commit path, where a panic or a blocking call
/// stalls every writer behind the partition commit lock.
fn commit_path_crate(path: &str) -> bool {
    path.starts_with("crates/wal/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/rowstore/src/")
        || path == "crates/blob/src/uploader.rs"
}

/// R3 scope: the modules that run while holding the commit lock. Narrower
/// than R2: the rowstore and uploader never sleep by construction, and the
/// cluster crate's sleeps are legitimate tick/wait loops.
fn commit_critical_section(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/wal/src/")
}

/// Names usable in allow-markers. `malformed-marker` is not allowlistable.
pub fn rule_names() -> &'static [&'static str] {
    &["wall-clock", "unwrap", "blocking", "safety-comment", "metric-name"]
}

pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R1",
                name: "wall-clock",
                tokens: &["Instant::now", "SystemTime::now"],
                message: "wall-clock read in a deterministic module",
                applies: deterministic_module,
            }),
        },
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R2",
                name: "unwrap",
                tokens: &[".unwrap()", ".expect("],
                message: "forbidden panic path on a commit-path crate",
                applies: commit_path_crate,
            }),
        },
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R3",
                name: "blocking",
                tokens: &["thread::sleep", ".enqueue("],
                message: "blocking call inside the commit critical section",
                applies: commit_critical_section,
            }),
        },
        Rule {
            kind: RuleKind::SafetyComment(SafetyCommentRule { id: "R4", name: "safety-comment" }),
        },
        Rule {
            kind: RuleKind::MetricName(MetricNameRule {
                id: "R5",
                name: "metric-name",
                callsites: &["counter!(", "gauge!(", "histogram!(", "s2_obs::event(", ".event("],
            }),
        },
    ]
}
