//! The rule table. Every rule has a stable id (`R1`..`R6` for the
//! per-line rules, `L1`..`L4` for the interprocedural checks in
//! `interproc`/`metrics`), a marker name (what `s2-lint: allow(<name>, …)`
//! refers to), and a scope predicate over repo-relative paths. Adding a
//! rule = adding an entry to [`all_rules`] (or a check module), a line to
//! DESIGN.md's rule table, and an [`explain`] entry.

/// A token-presence rule: flag lines of non-test code whose stripped code
/// contains any of `tokens`, within the files selected by `applies`.
pub struct TokenRule {
    pub id: &'static str,
    pub name: &'static str,
    pub tokens: &'static [&'static str],
    pub message: &'static str,
    pub applies: fn(&str) -> bool,
}

/// R4: every `unsafe` must be annotated with a `// SAFETY:` comment on the
/// same line or on the contiguous comment/attribute block above it.
pub struct SafetyCommentRule {
    pub id: &'static str,
    pub name: &'static str,
}

/// R5: string literals passed at metric/event registration sites must be
/// `subsystem.noun_verb` style.
pub struct MetricNameRule {
    pub id: &'static str,
    pub name: &'static str,
    pub callsites: &'static [&'static str],
}

/// R6: raw `std::sync` lock construction outside the ranked wrappers.
pub struct RawLockRule {
    pub id: &'static str,
    pub name: &'static str,
}

pub enum RuleKind {
    Token(TokenRule),
    SafetyComment(SafetyCommentRule),
    MetricName(MetricNameRule),
    RawLock(RawLockRule),
}

pub struct Rule {
    pub kind: RuleKind,
}

/// R1 scope: modules that must stay deterministic — the pure breaker core,
/// the fault-injection registry, and the whole simulation harness. These are
/// replayed from seeds; a wall-clock read makes replays diverge.
fn deterministic_module(path: &str) -> bool {
    path == "crates/blob/src/health.rs"
        || path == "crates/common/src/fault.rs"
        || path.starts_with("crates/sim/src/")
}

/// R2/R3 scope: crates on the commit path, where a panic or a blocking call
/// stalls every writer behind the partition commit lock.
fn commit_path_crate(path: &str) -> bool {
    path.starts_with("crates/wal/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/rowstore/src/")
        || path == "crates/blob/src/uploader.rs"
}

/// R3 scope: the modules that run while holding the commit lock. Narrower
/// than R2: the rowstore and uploader never sleep by construction, and the
/// cluster crate's sleeps are legitimate tick/wait loops.
fn commit_critical_section(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/wal/src/")
}

/// R6 scope: everywhere except the ranked-wrapper implementation itself
/// and the shims crate (which wraps third-party types as-is).
pub(crate) fn raw_lock_scope(path: &str) -> bool {
    path != "crates/common/src/sync.rs" && !path.starts_with("crates/shims/")
}

/// Names usable in allow-markers. `malformed-marker` is not allowlistable.
pub fn rule_names() -> &'static [&'static str] {
    &[
        "wall-clock",
        "unwrap",
        "blocking",
        "safety-comment",
        "metric-name",
        "raw-lock",
        "lock-order",
        "blocking-locked",
        "failpoint-coverage",
        "metric-registry",
    ]
}

/// `--explain <ID>` text: what each rule checks and why it exists.
pub fn explain(id: &str) -> Option<&'static str> {
    Some(match id {
        "R1" | "wall-clock" => {
            "R1 wall-clock: `Instant::now`/`SystemTime::now` in a deterministic module \
             (breaker core, fault registry, s2-sim). These modules replay from seeds; a \
             wall-clock read makes replays diverge. Use the injected clock instead."
        }
        "R2" | "unwrap" => {
            "R2 unwrap: `.unwrap()`/`.expect(` on a commit-path crate (wal, core, \
             rowstore, blob uploader). A panic there poisons the partition commit lock \
             and stalls every writer. Return an error or handle the case."
        }
        "R3" | "blocking" => {
            "R3 blocking: `thread::sleep`/`.enqueue(` tokens in core/wal source. The \
             same-file half of the blocking discipline; L2 is the interprocedural half."
        }
        "R4" | "safety-comment" => {
            "R4 safety-comment: every `unsafe` needs a `// SAFETY:` comment on the same \
             line or the contiguous comment block above, stating the invariant relied on."
        }
        "R5" | "metric-name" => {
            "R5 metric-name: string literals at metric/event registration sites must be \
             dot-separated lower_snake segments (`subsystem.noun_verb`), so dashboards \
             can group by prefix."
        }
        "R6" | "raw-lock" => {
            "R6 raw-lock: `std::sync::{Mutex,RwLock,Condvar}` named outside \
             crates/common/src/sync.rs or crates/shims/. Raw locks bypass the rank \
             detector and the L1/L2 static checks; use `s2_common::sync` wrappers with \
             a `rank::` class."
        }
        "L1" | "lock-order" => {
            "L1 lock-order: a path (direct or through calls) acquires lock class B while \
             a held class A has an equal or higher hierarchy rank. The static complement \
             of the runtime rank detector, which only sees executed paths. The message \
             carries the full call chain; fix the order or re-rank in sync::rank."
        }
        "L2" | "blocking-locked" => {
            "L2 blocking-locked: a blocking primitive (sleep, channel recv, thread join, \
             condvar wait, fsync via Log::sync, blob put/get/delete, blocking enqueue) \
             is reachable while a `wal.*`/`core.*` commit-section lock is held. The \
             paper's commit path must never stall on blob I/O or scheduling; move the \
             blocking work outside the critical section (see the wal.group leader \
             protocol). Plain local file writes are exempt: the WAL writes its own file \
             under `wal.log` by design."
        }
        "L3" | "failpoint-coverage" => {
            "L3 failpoint-coverage: a WAL raw-I/O mutation site (write/truncate/fsync) \
             or an ObjectStore verb (put/get/delete) that no `fault::failpoint`/\
             `crash_point` can reach. Such paths silently escape the s2-sim crash \
             matrix; add a hook at the site or on an enclosing path."
        }
        "L4" | "metric-registry" => {
            "L4 metric-registry: every registered metric name must be style-clean, have \
             one kind (the registry is keyed by name), and match DESIGN.md's metrics \
             table both ways. Regenerate the table with `s2-lint --dump-metrics`."
        }
        "lint" | "malformed-marker" => {
            "lint malformed-marker: an `s2-lint: allow(..)` marker naming an unknown \
             rule or missing its mandatory reason. Not allowlistable."
        }
        _ => return None,
    })
}

pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R1",
                name: "wall-clock",
                tokens: &["Instant::now", "SystemTime::now"],
                message: "wall-clock read in a deterministic module",
                applies: deterministic_module,
            }),
        },
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R2",
                name: "unwrap",
                tokens: &[".unwrap()", ".expect("],
                message: "forbidden panic path on a commit-path crate",
                applies: commit_path_crate,
            }),
        },
        Rule {
            kind: RuleKind::Token(TokenRule {
                id: "R3",
                name: "blocking",
                tokens: &["thread::sleep", ".enqueue("],
                message: "blocking call inside the commit critical section",
                applies: commit_critical_section,
            }),
        },
        Rule {
            kind: RuleKind::SafetyComment(SafetyCommentRule { id: "R4", name: "safety-comment" }),
        },
        Rule {
            kind: RuleKind::MetricName(MetricNameRule {
                id: "R5",
                name: "metric-name",
                callsites: &["counter!(", "gauge!(", "histogram!(", "s2_obs::event(", ".event("],
            }),
        },
        Rule { kind: RuleKind::RawLock(RawLockRule { id: "R6", name: "raw-lock" }) },
    ]
}
