//! `CdbEngine`: the cloud operational database comparator ("CDB" in the
//! paper's §6).
//!
//! Models the properties the paper attributes to row-oriented operational
//! databases: B-tree-style primary and secondary indexes give competitive
//! OLTP point reads and writes, but analytics run row-at-a-time over
//! uncompressed rows — no columnar layout, no vectorization, no segment
//! elimination, no encoded execution — which is why the paper's CDB is
//! orders of magnitude slower on TPC-H ("because of the use of a
//! row-oriented storage format and single-host query execution on complex
//! query operations").

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;
use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{Error, Result, Row, Schema, Value};
use s2_exec::{AggFunc, Aggregate, Expr, JoinType, SortDir};
use s2_query::Plan;

/// Serialize a row the way a heap page stores tuples: length-prefixed,
/// all columns inline. Scans must decode the whole tuple to read any
/// column — the defining analytical cost of a row-oriented format
/// (no late materialization, no columnar compression).
fn encode_row(row: &Row) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(row.len() as u64);
    for v in row.values() {
        w.put_value(v);
    }
    w.into_bytes()
}

fn decode_row(bytes: &[u8]) -> Result<Row> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_varint()? as usize;
    Ok(Row::new((0..n).map(|_| r.get_value()).collect::<Result<_>>()?))
}

/// One row-oriented table: primary B-tree over serialized tuples plus
/// secondary indexes.
struct CdbTable {
    schema: Schema,
    pk_cols: Vec<usize>,
    /// Primary index: PK -> serialized tuple.
    rows: BTreeMap<Vec<Value>, Vec<u8>>,
    /// Secondary indexes: columns -> (key values -> PKs).
    secondary: Vec<(Vec<usize>, SecondaryIndex)>,
}

/// One secondary index: key values -> PKs of matching rows.
type SecondaryIndex = BTreeMap<Vec<Value>, Vec<Vec<Value>>>;

impl CdbTable {
    fn index_row(&mut self, row: &Row) {
        let pk = row.project(&self.pk_cols);
        for (cols, index) in &mut self.secondary {
            index.entry(row.project(cols)).or_default().push(pk.clone());
        }
    }

    fn unindex_row(&mut self, row: &Row) {
        let pk = row.project(&self.pk_cols);
        for (cols, index) in &mut self.secondary {
            if let Some(pks) = index.get_mut(&row.project(cols)) {
                pks.retain(|p| p != &pk);
            }
        }
    }
}

/// The row-store comparator engine.
pub struct CdbEngine {
    tables: RwLock<HashMap<String, Arc<RwLock<CdbTable>>>>,
}

impl Default for CdbEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CdbEngine {
    /// Empty engine.
    pub fn new() -> CdbEngine {
        CdbEngine { tables: RwLock::new(HashMap::new()) }
    }

    /// Create a table with a primary key and optional secondary indexes.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        pk_cols: Vec<usize>,
        secondary: Vec<Vec<usize>>,
    ) -> Result<()> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::InvalidArgument(format!("table {name:?} exists")));
        }
        tables.insert(
            name,
            Arc::new(RwLock::new(CdbTable {
                schema,
                pk_cols,
                rows: BTreeMap::new(),
                secondary: secondary.into_iter().map(|c| (c, BTreeMap::new())).collect(),
            })),
        );
        Ok(())
    }

    fn table(&self, name: &str) -> Result<Arc<RwLock<CdbTable>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name:?}")))
    }

    /// Insert a row (duplicate PK = error).
    pub fn insert(&self, table: &str, row: Row) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        let row = Row::checked(row.into_values(), &t.schema)?;
        let pk = row.project(&t.pk_cols);
        if t.rows.contains_key(&pk) {
            return Err(Error::DuplicateKey(format!("table {table:?}, key {pk:?}")));
        }
        t.index_row(&row);
        t.rows.insert(pk, encode_row(&row));
        Ok(())
    }

    /// Point read by PK (decodes one tuple, as a buffer-pool read would).
    pub fn get(&self, table: &str, pk: &[Value]) -> Result<Option<Row>> {
        let t = self.table(table)?;
        let t = t.read();
        t.rows.get(pk).map(|b| decode_row(b)).transpose()
    }

    /// Read-modify-write by PK. Returns false when absent.
    pub fn update_with(
        &self,
        table: &str,
        pk: &[Value],
        f: impl FnOnce(&Row) -> Row,
    ) -> Result<bool> {
        let t = self.table(table)?;
        let mut t = t.write();
        let Some(old) = t.rows.get(pk).map(|b| decode_row(b)).transpose()? else {
            return Ok(false);
        };
        let new_row = Row::checked(f(&old).into_values(), &t.schema)?;
        if new_row.project(&t.pk_cols) != pk {
            return Err(Error::InvalidArgument("update cannot change the PK".into()));
        }
        t.unindex_row(&old);
        t.index_row(&new_row);
        t.rows.insert(pk.to_vec(), encode_row(&new_row));
        Ok(true)
    }

    /// Delete by PK.
    pub fn delete(&self, table: &str, pk: &[Value]) -> Result<bool> {
        let t = self.table(table)?;
        let mut t = t.write();
        let Some(old) = t.rows.remove(pk) else { return Ok(false) };
        t.unindex_row(&decode_row(&old)?);
        Ok(true)
    }

    /// Secondary-index equality lookup.
    pub fn lookup_secondary(&self, table: &str, cols: &[usize], key: &[Value]) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let t = t.read();
        let (_, index) = t
            .secondary
            .iter()
            .find(|(c, _)| c.as_slice() == cols)
            .ok_or_else(|| Error::NotFound(format!("secondary index on {cols:?}")))?;
        match index.get(key) {
            None => Ok(Vec::new()),
            Some(pks) => {
                pks.iter().filter_map(|pk| t.rows.get(pk)).map(|b| decode_row(b)).collect()
            }
        }
    }

    /// Row-at-a-time filtered scan (the OLTP access path for non-indexed
    /// predicates, e.g. TPC-C stock-level).
    pub fn scan_filter(&self, table: &str, filter: &Expr) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let t = t.read();
        let mut out = Vec::new();
        for bytes in t.rows.values() {
            let row = decode_row(bytes)?;
            let get = |c: usize| row.get(c).clone();
            if filter.eval_bool(&get)? {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Table row count.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.table(table)?.read().rows.len())
    }

    /// Execute an analytical plan **row-at-a-time** — the deliberate
    /// anti-pattern this engine models. Every operator materializes
    /// `Vec<Row>` and evaluates expressions one row at a time with full-width
    /// rows (no projection pushdown, no pruning, no vectorization).
    pub fn execute(&self, plan: &Plan) -> Result<Vec<Row>> {
        match plan {
            Plan::Scan { table, projection, filter } => {
                let t = self.table(table)?;
                let t = t.read();
                let mut out = Vec::new();
                // Row-at-a-time heap scan: every tuple fully decoded before
                // the filter can even look at one column.
                for bytes in t.rows.values() {
                    let row = decode_row(bytes)?;
                    if let Some(f) = filter {
                        let get = |c: usize| row.get(c).clone();
                        if !f.eval_bool(&get)? {
                            continue;
                        }
                    }
                    out.push(Row::new(projection.iter().map(|&c| row.get(c).clone()).collect()));
                }
                Ok(out)
            }
            Plan::Filter { input, predicate } => {
                let rows = self.execute(input)?;
                let mut out = Vec::new();
                for row in rows {
                    let get = |c: usize| row.get(c).clone();
                    if predicate.eval_bool(&get)? {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Project { input, exprs } => {
                let rows = self.execute(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let get = |c: usize| row.get(c).clone();
                    let vals: Vec<Value> =
                        exprs.iter().map(|(e, _)| e.eval(&get)).collect::<Result<_>>()?;
                    out.push(Row::new(vals));
                }
                Ok(out)
            }
            Plan::Join { left, right, left_keys, right_keys, join_type, residual } => {
                let lrows = self.execute(left)?;
                let rrows = self.execute(right)?;
                // Hash join, but over cloned row values (row-at-a-time build
                // and probe).
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, r) in rrows.iter().enumerate() {
                    let key = r.project(right_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    table.entry(key).or_default().push(i);
                }
                let lw = lrows.first().map_or(0, Row::len);
                let rw = rrows.first().map_or(0, Row::len);
                let mut out = Vec::new();
                for l in &lrows {
                    let key = l.project(left_keys);
                    let mut matched = false;
                    if !key.iter().any(Value::is_null) {
                        if let Some(cands) = table.get(&key) {
                            for &ri in cands {
                                let r = &rrows[ri];
                                if let Some(res) = residual {
                                    let get = |c: usize| {
                                        if c < lw {
                                            l.get(c).clone()
                                        } else {
                                            r.get(c - lw).clone()
                                        }
                                    };
                                    if !res.eval_bool(&get)? {
                                        continue;
                                    }
                                }
                                matched = true;
                                match join_type {
                                    JoinType::Inner | JoinType::Left => {
                                        let mut vals = l.values().to_vec();
                                        vals.extend(r.values().iter().cloned());
                                        out.push(Row::new(vals));
                                    }
                                    JoinType::Semi => {
                                        out.push(l.clone());
                                        break;
                                    }
                                    JoinType::Anti => break,
                                }
                            }
                        }
                    }
                    match join_type {
                        JoinType::Left if !matched => {
                            let mut vals = l.values().to_vec();
                            vals.extend(std::iter::repeat_n(Value::Null, rw));
                            out.push(Row::new(vals));
                        }
                        JoinType::Anti if !matched => out.push(l.clone()),
                        _ => {}
                    }
                }
                Ok(out)
            }
            Plan::Aggregate { input, group_by, aggregates } => {
                let rows = self.execute(input)?;
                row_aggregate(&rows, group_by, aggregates)
            }
            Plan::Sort { input, keys, limit } => {
                let mut rows = self.execute(input)?;
                rows.sort_by(|a, b| {
                    for &(c, dir) in keys {
                        let o = a.get(c).total_cmp(b.get(c));
                        if o != std::cmp::Ordering::Equal {
                            return match dir {
                                SortDir::Asc => o,
                                SortDir::Desc => o.reverse(),
                            };
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                if let Some(l) = limit {
                    rows.truncate(*l);
                }
                Ok(rows)
            }
            Plan::Limit { input, n } => {
                let mut rows = self.execute(input)?;
                rows.truncate(*n);
                Ok(rows)
            }
        }
    }
}

fn row_aggregate(rows: &[Row], group_by: &[Expr], aggregates: &[Aggregate]) -> Result<Vec<Row>> {
    struct State {
        count: u64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
    }
    let mut groups: HashMap<Vec<Value>, Vec<State>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let get = |c: usize| row.get(c).clone();
        let key: Vec<Value> = group_by.iter().map(|g| g.eval(&get)).collect::<Result<_>>()?;
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggregates.iter().map(|_| State { count: 0, sum: 0.0, min: None, max: None }).collect()
        });
        for (s, a) in states.iter_mut().zip(aggregates) {
            let v = a.input.eval(&get)?;
            if v.is_null() {
                continue;
            }
            s.count += 1;
            if let Ok(d) = v.as_double() {
                s.sum += d;
            }
            if s.min.as_ref().is_none_or(|m| &v < m) {
                s.min = Some(v.clone());
            }
            if s.max.as_ref().is_none_or(|m| &v > m) {
                s.max = Some(v);
            }
        }
    }
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|_| State { count: 0, sum: 0.0, min: None, max: None }).collect(),
        );
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let states = &groups[&key];
        let mut vals = key.clone();
        for (s, a) in states.iter().zip(aggregates) {
            vals.push(match a.func {
                AggFunc::Count => Value::Int(s.count as i64),
                AggFunc::Sum => {
                    if s.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(s.sum)
                    }
                }
                AggFunc::Avg => {
                    if s.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(s.sum / s.count as f64)
                    }
                }
                AggFunc::Min => s.min.clone().unwrap_or(Value::Null),
                AggFunc::Max => s.max.clone().unwrap_or(Value::Null),
            });
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::schema::ColumnDef;
    use s2_common::DataType;
    use s2_exec::CmpOp;

    fn engine() -> CdbEngine {
        let e = CdbEngine::new();
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("grp", DataType::Str),
            ColumnDef::new("amount", DataType::Double),
        ])
        .unwrap();
        e.create_table("t", schema, vec![0], vec![vec![1]]).unwrap();
        for i in 0..100i64 {
            e.insert(
                "t",
                Row::new(vec![
                    Value::Int(i),
                    Value::str(["a", "b"][(i % 2) as usize]),
                    Value::Double(i as f64),
                ]),
            )
            .unwrap();
        }
        e
    }

    #[test]
    fn crud() {
        let e = engine();
        assert!(e.get("t", &[Value::Int(5)]).unwrap().is_some());
        assert!(e
            .insert("t", Row::new(vec![Value::Int(5), Value::str("a"), Value::Double(0.0)]))
            .is_err());
        assert!(e
            .update_with("t", &[Value::Int(5)], |r| Row::new(vec![
                r.get(0).clone(),
                Value::str("z"),
                Value::Double(99.0)
            ]))
            .unwrap());
        assert_eq!(e.get("t", &[Value::Int(5)]).unwrap().unwrap().get(2), &Value::Double(99.0));
        assert!(e.delete("t", &[Value::Int(5)]).unwrap());
        assert!(!e.delete("t", &[Value::Int(5)]).unwrap());
        assert_eq!(e.row_count("t").unwrap(), 99);
    }

    #[test]
    fn secondary_lookup_stays_consistent() {
        let e = engine();
        let b_rows = e.lookup_secondary("t", &[1], &[Value::str("b")]).unwrap();
        assert_eq!(b_rows.len(), 50);
        e.update_with("t", &[Value::Int(1)], |r| {
            Row::new(vec![r.get(0).clone(), Value::str("a"), r.get(2).clone()])
        })
        .unwrap();
        let b_rows = e.lookup_secondary("t", &[1], &[Value::str("b")]).unwrap();
        assert_eq!(b_rows.len(), 49);
    }

    #[test]
    fn analytical_plan_matches_expectations() {
        let e = engine();
        let plan = Plan::scan("t", vec![1, 2], Some(Expr::cmp(2, CmpOp::Lt, 10.0)))
            .aggregate(
                vec![Expr::Column(0)],
                vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }],
            )
            .sort(vec![(0, SortDir::Asc)], None);
        let rows = e.execute(&plan).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::str("a"));
        assert_eq!(rows[0].get(1), &Value::Int(5));
    }

    #[test]
    fn join_plan() {
        let e = engine();
        let schema = Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("label", DataType::Str),
        ])
        .unwrap();
        e.create_table("g", schema, vec![0], vec![]).unwrap();
        e.insert("g", Row::new(vec![Value::str("a"), Value::str("alpha")])).unwrap();
        let plan = Plan::scan("t", vec![0, 1], None).join(
            Plan::scan("g", vec![0, 1], None),
            vec![1],
            vec![0],
        );
        let rows = e.execute(&plan).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r.get(3) == &Value::str("alpha")));
    }
}
