//! `CdwEngine`: the cloud data warehouse comparator ("CDW1/CDW2" in §6).
//!
//! Models the properties the paper attributes to cloud data warehouses:
//! excellent columnar scans (compressed segments, min/max zone maps,
//! vectorized execution — competitive with S2DB on TPC-H), but a commit
//! path that must write data to blob storage before a transaction is
//! durable ("they force new data for a write transaction to be written out
//! to blob storage before that transaction can be considered committed"),
//! and no fine-grained OLTP machinery: no unique-key enforcement, no
//! secondary indexes, no row-level locking, no point updates/deletes —
//! which is why "CDW1 and CDW2 do not support running TPC-C".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use s2_blob::ObjectStore;
use s2_columnstore::{build_segment, SegmentMeta, SegmentReader};
use s2_common::{Error, Result, Row, Schema, Value};
use s2_exec::{hash_aggregate, hash_join, sort_batch, Batch, Expr};
use s2_query::Plan;

struct CdwSegment {
    meta: SegmentMeta,
    reader: SegmentReader,
}

struct CdwTable {
    schema: Schema,
    segments: Vec<CdwSegment>,
    next_id: u64,
}

/// The batch-columnstore comparator engine.
pub struct CdwEngine {
    blob: Arc<dyn ObjectStore>,
    tables: RwLock<HashMap<String, Arc<RwLock<CdwTable>>>>,
    commits: AtomicU64,
}

impl CdwEngine {
    /// Engine over `blob` (inject latency there to model S3 round trips).
    pub fn new(blob: Arc<dyn ObjectStore>) -> CdwEngine {
        CdwEngine { blob, tables: RwLock::new(HashMap::new()), commits: AtomicU64::new(0) }
    }

    /// Create a table (schema only — no keys, no indexes: CDWs don't have
    /// them).
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::InvalidArgument(format!("table {name:?} exists")));
        }
        tables.insert(
            name,
            Arc::new(RwLock::new(CdwTable { schema, segments: Vec::new(), next_id: 1 })),
        );
        Ok(())
    }

    fn table(&self, name: &str) -> Result<Arc<RwLock<CdwTable>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name:?}")))
    }

    /// Load a batch of rows as one (or more) columnstore segments.
    ///
    /// **The data file is written to blob storage synchronously before the
    /// call returns** — this is the commit-latency property under test.
    pub fn load_batch(&self, table: &str, rows: Vec<Row>) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        let schema = t.schema.clone();
        let id = t.next_id;
        t.next_id += 1;
        let (meta, data) = build_segment(id, rows, &schema, &[])?;
        let bytes = Arc::new(data.encode());
        // Synchronous blob write on the commit path (the paper's CDW model).
        self.blob.put(&format!("cdw/{table}/{id:010}"), bytes)?;
        let reader = SegmentReader::new(data);
        t.segments.push(CdwSegment { meta, reader });
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Single-row insert: a degenerate one-row batch, each paying a full
    /// blob round trip. This is what makes OLTP-style write workloads
    /// impractical on the CDW model.
    pub fn insert_row(&self, table: &str, row: Row) -> Result<()> {
        self.load_batch(table, vec![row])
    }

    /// Point update: unsupported (no primary keys, no row locks).
    pub fn update(&self, _table: &str, _key: &[Value]) -> Result<()> {
        Err(Error::InvalidArgument(
            "CDW model does not support point updates (no unique keys or row-level locking)".into(),
        ))
    }

    /// Point delete: unsupported.
    pub fn delete(&self, _table: &str, _key: &[Value]) -> Result<()> {
        Err(Error::InvalidArgument(
            "CDW model does not support point deletes (no unique keys or row-level locking)".into(),
        ))
    }

    /// Total rows.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.segments.iter().map(|s| s.meta.row_count).sum())
    }

    /// Vectorized columnar scan with zone-map (min/max) pruning — CDWs are
    /// good at this; it's the write path they give up.
    fn scan(&self, table: &str, projection: &[usize], filter: Option<&Expr>) -> Result<Batch> {
        let t = self.table(table)?;
        let t = t.read();
        let types: Vec<s2_common::DataType> =
            projection.iter().map(|&c| t.schema.column(c).data_type).collect();
        let conjuncts: Vec<Expr> = filter.map(|f| f.clone().split_conjuncts()).unwrap_or_default();
        let ranges: Vec<_> = conjuncts.iter().filter_map(Expr::as_column_range).collect();
        let mut parts: Vec<Batch> = Vec::new();
        for seg in &t.segments {
            if ranges
                .iter()
                .any(|(c, lo, hi)| !seg.meta.may_overlap_range(*c, lo.as_ref(), hi.as_ref()))
            {
                continue;
            }
            // Vectorized filtering: decode filter columns, evaluate clause by
            // clause over shrinking selections, then materialize the
            // projection late.
            let mut sel: Option<Vec<u32>> = None;
            for clause in &conjuncts {
                let cols = clause.referenced_columns();
                let domain: Vec<u32> = match &sel {
                    Some(s) => s.clone(),
                    None => (0..seg.meta.row_count as u32).collect(),
                };
                if domain.is_empty() {
                    break;
                }
                let mut vectors = Vec::with_capacity(cols.len());
                for &c in &cols {
                    vectors.push(seg.reader.column(c)?.decode_vector(Some(&domain))?);
                }
                let pos: HashMap<usize, usize> =
                    cols.iter().enumerate().map(|(i, &c)| (c, i)).collect();
                let remapped = clause.remap_columns(&|c| pos[&c]);
                let local = Batch::new(vectors).filter(&remapped, None)?;
                sel = Some(local.into_iter().map(|i| domain[i as usize]).collect());
            }
            let sel = match sel {
                Some(s) => s,
                None => (0..seg.meta.row_count as u32).collect(),
            };
            if sel.is_empty() {
                continue;
            }
            let mut cols = Vec::with_capacity(projection.len());
            for &c in projection {
                cols.push(seg.reader.column(c)?.decode_vector(Some(&sel))?);
            }
            parts.push(Batch::new(cols));
        }
        if parts.is_empty() {
            Ok(Batch::empty(&types))
        } else {
            Batch::concat(&parts)
        }
    }

    /// Execute an analytical plan with the vectorized kernels (the CDW's
    /// strength; shares kernels with S2DB so the comparison isolates
    /// storage-layer differences).
    pub fn execute(&self, plan: &Plan) -> Result<Batch> {
        match plan {
            Plan::Scan { table, projection, filter } => {
                self.scan(table, projection, filter.as_ref())
            }
            Plan::Filter { input, predicate } => {
                let b = self.execute(input)?;
                let sel = b.filter(predicate, None)?;
                Ok(b.gather(&sel))
            }
            Plan::Project { input, exprs } => {
                let b = self.execute(input)?;
                let mut cols = Vec::with_capacity(exprs.len());
                for (e, t) in exprs {
                    cols.push(b.eval_expr(e, *t)?);
                }
                Ok(Batch::new(cols))
            }
            Plan::Join { left, right, left_keys, right_keys, join_type, residual } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                hash_join(&l, &r, left_keys, right_keys, *join_type, residual.as_ref())
            }
            Plan::Aggregate { input, group_by, aggregates } => {
                let b = self.execute(input)?;
                hash_aggregate(&b, group_by, aggregates)
            }
            Plan::Sort { input, keys, limit } => {
                let b = self.execute(input)?;
                Ok(sort_batch(&b, keys, *limit))
            }
            Plan::Limit { input, n } => {
                let b = self.execute(input)?;
                let sel: Vec<u32> = (0..b.rows().min(*n) as u32).collect();
                Ok(b.gather(&sel))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_blob::MemoryStore;
    use s2_common::schema::ColumnDef;
    use s2_common::DataType;
    use s2_exec::{AggFunc, Aggregate, CmpOp};

    fn engine() -> CdwEngine {
        let e = CdwEngine::new(Arc::new(MemoryStore::new()));
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("amount", DataType::Double),
        ])
        .unwrap();
        e.create_table("t", schema).unwrap();
        for chunk in 0..4 {
            let rows: Vec<Row> = (0..250)
                .map(|i| {
                    let id = chunk * 250 + i;
                    Row::new(vec![Value::Int(id), Value::Double(id as f64)])
                })
                .collect();
            e.load_batch("t", rows).unwrap();
        }
        e
    }

    #[test]
    fn batch_load_and_scan() {
        let e = engine();
        assert_eq!(e.row_count("t").unwrap(), 1000);
        let plan = Plan::scan("t", vec![0], Some(Expr::cmp(0, CmpOp::Lt, 100i64)));
        let out = e.execute(&plan).unwrap();
        assert_eq!(out.rows(), 100);
    }

    #[test]
    fn aggregates() {
        let e = engine();
        let plan = Plan::scan("t", vec![1], None)
            .aggregate(vec![], vec![Aggregate { func: AggFunc::Sum, input: Expr::Column(0) }]);
        let out = e.execute(&plan).unwrap();
        let expected: f64 = (0..1000).map(|i| i as f64).sum();
        assert_eq!(out.value(0, 0), Value::Double(expected));
    }

    #[test]
    fn point_dml_unsupported() {
        let e = engine();
        assert!(e.update("t", &[Value::Int(1)]).is_err());
        assert!(e.delete("t", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn commit_is_synchronous_with_blob() {
        use s2_blob::FaultyStore;
        use std::time::Duration;
        let faulty =
            FaultyStore::new(MemoryStore::new(), Duration::from_millis(20), Duration::ZERO);
        let e = CdwEngine::new(Arc::new(faulty));
        let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int64)]).unwrap();
        e.create_table("t", schema).unwrap();
        let t0 = std::time::Instant::now();
        e.insert_row("t", Row::new(vec![Value::Int(1)])).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20), "commit paid the blob latency");
    }
}
