//! Baseline comparator engines for the paper's §6 evaluation.
//!
//! The paper compares S2DB against two closed-source cloud data warehouses
//! ("CDW1"/"CDW2") and a closed-source cloud operational database ("CDB").
//! Per the reproduction's substitution rule, this crate implements open
//! models of each that capture exactly the properties the paper's argument
//! rests on:
//!
//! - [`CdbEngine`] — row-oriented storage with B-tree-style indexes:
//!   competitive OLTP, row-at-a-time analytics (orders of magnitude slower
//!   on TPC-H-style queries).
//! - [`CdwEngine`] — batch columnstore committing synchronously to blob
//!   storage: competitive OLAP scans, but write latency bound to the blob
//!   store and no unique keys / row locks / point DML (cannot run TPC-C).

pub mod cdb;
pub mod cdw;

pub use cdb::CdbEngine;
pub use cdw::CdwEngine;
