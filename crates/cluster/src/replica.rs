//! Log-stream replication (paper §2, §3).
//!
//! A replica is a full [`Partition`] kept in sync by applying the master's
//! log byte stream. Chunks arrive in append order (possibly split at
//! arbitrary byte boundaries, so the applier reassembles partial frames) and
//! are appended to the replica's own log before being applied — the replica
//! can therefore take over as master after a failover with its log intact.
//! HA replicas acknowledge applied positions; the master's commit path waits
//! for an ack before declaring a transaction durable (paper §3: "data is
//! considered committed when it is replicated in-memory to at least one
//! replica").

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use s2_common::sync::{rank, Condvar, Mutex};
use s2_common::{Error, LogPosition, Result};
use s2_core::{DataFileStore, EngineRecord, Partition};
use s2_wal::{Log, LogChunk, RecordIter};

/// Applied-watermark cell: the apply thread publishes each advance here and
/// wakes waiters, so `wait_applied` (and `Workspace::catch_up` above it)
/// parks on a condvar instead of spinning.
struct AppliedMark {
    lp: Mutex<LogPosition>,
    advanced: Condvar,
}

impl AppliedMark {
    fn new(from_lp: LogPosition) -> AppliedMark {
        AppliedMark {
            lp: Mutex::new(&rank::CLUSTER_REPLICA_MARK, from_lp),
            advanced: Condvar::new(),
        }
    }

    fn publish(&self, lp: LogPosition) {
        let mut g = self.lp.lock();
        if lp > *g {
            *g = lp;
            self.advanced.notify_all();
        }
    }

    /// Wait until the watermark reaches `lp` or `deadline` passes.
    fn wait(&self, lp: LogPosition, deadline: std::time::Instant) -> bool {
        let mut g = self.lp.lock();
        while *g < lp {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (g2, _timed_out) = self.advanced.wait_timeout(g, deadline - now);
            g = g2;
        }
        true
    }
}

/// A replica partition driven by a master's log stream.
pub struct Replica {
    /// The replica's partition state (queryable).
    pub partition: Arc<Partition>,
    applied_lp: Arc<AtomicU64>,
    mark: Arc<AppliedMark>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// Whether this replica acks (HA replica) or not (read-only workspace).
    pub acks: bool,
}

/// Whether a tail-apply failure is worth retrying: storage-side classes a
/// blob outage or an upload still in flight produce. Anything else (gap,
/// corruption, internal) is a permanently broken replica.
fn transient_apply_error(e: &Error) -> bool {
    matches!(e, Error::Unavailable(_) | Error::NotFound(_) | Error::Io(_))
}

impl Replica {
    /// Start a replica of `master` from log position `from_lp`, with its
    /// partition state pre-seeded by `partition` (empty for a fresh HA
    /// replica, snapshot-restored for a workspace replica).
    ///
    /// `ack_log` (the master's log) receives replicated-position updates
    /// when `acks` is true.
    pub fn start(
        master: &Arc<Partition>,
        partition: Arc<Partition>,
        from_lp: LogPosition,
        acks: bool,
    ) -> Result<Replica> {
        let (backlog, rx) = master.log.subscribe(from_lp)?;
        let applied_lp = Arc::new(AtomicU64::new(from_lp));
        let mark = Arc::new(AppliedMark::new(from_lp));
        let stop = Arc::new(AtomicBool::new(false));
        let ack_log = if acks { Some(Arc::clone(&master.log)) } else { None };
        let p = Arc::clone(&partition);
        let applied = Arc::clone(&applied_lp);
        let mark2 = Arc::clone(&mark);
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut applier = StreamApplier::new(from_lp);
            let mut degraded = false;
            let mut deliver = |chunk: LogChunk| {
                let mut pending = Some(chunk);
                loop {
                    // `feed` retains the applied prefix even on error, so a
                    // retry resumes at the failing record (no double apply).
                    let res = match pending.take() {
                        Some(c) => applier.feed(&p, &c),
                        None => applier.resume(&p),
                    };
                    let err = match res {
                        Ok(()) => break,
                        Err(e) => e,
                    };
                    if transient_apply_error(&err) {
                        // Degraded tail replication: the record needs a data
                        // file the blob store can't serve right now (outage,
                        // or the upload hasn't landed). Keep the replica
                        // alive — lag grows observably and drains once the
                        // store recovers — instead of breaking it for good.
                        s2_obs::counter!("cluster.replica.apply_retries").inc();
                        if !degraded {
                            degraded = true;
                            s2_obs::event(
                                "cluster.replica_degraded",
                                format!("tail apply retrying: {err}"),
                            );
                        }
                        if stop2.load(Ordering::Acquire) {
                            return false;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    // A replica that cannot apply is broken; stop applying so
                    // the failure is observable via lag.
                    s2_obs::counter!("cluster.replica.apply_errors").inc();
                    s2_obs::event("cluster.replica_error", format!("apply failed: {err}"));
                    eprintln!("replica apply error: {err}");
                    return false;
                }
                if degraded {
                    degraded = false;
                    s2_obs::event("cluster.replica_recovered", "tail apply caught up".to_string());
                }
                // Ack the master BEFORE publishing applied_lp: wait_applied()
                // observers must see the replicated watermark already advanced
                // once the applied position covers their commit.
                if let Some(log) = &ack_log {
                    log.set_replicated_lp(applier.applied_lp());
                }
                applied.store(applier.applied_lp(), Ordering::Release);
                mark2.publish(applier.applied_lp());
                true
            };
            if !backlog.bytes.is_empty() && !deliver(backlog) {
                return;
            }
            while !stop2.load(Ordering::Acquire) {
                match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(chunk) => {
                        if !deliver(chunk) {
                            return;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
        });
        Ok(Replica { partition, applied_lp, mark, stop, thread: Some(thread), acks })
    }

    /// Log position applied so far.
    pub fn applied_lp(&self) -> LogPosition {
        self.applied_lp.load(Ordering::Acquire)
    }

    /// Block until the replica has applied up to `lp` (with timeout). Parks
    /// on the applied-watermark condvar; no spinning.
    pub fn wait_applied(&self, lp: LogPosition, timeout: std::time::Duration) -> bool {
        if self.applied_lp() >= lp {
            return true;
        }
        self.mark.wait(lp, std::time::Instant::now() + timeout)
    }

    /// Stop the replication thread (e.g. before promoting to master).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reassembles a record stream from arbitrarily-split chunks and applies
/// complete records to a partition.
pub struct StreamApplier {
    buf: Vec<u8>,
    /// Log position of `buf[0]`.
    buf_lp: LogPosition,
    /// Position up to which records have been applied.
    applied: LogPosition,
}

impl StreamApplier {
    /// Applier expecting the stream to start at `from_lp`.
    pub fn new(from_lp: LogPosition) -> StreamApplier {
        StreamApplier { buf: Vec::new(), buf_lp: from_lp, applied: from_lp }
    }

    /// Position applied so far.
    pub fn applied_lp(&self) -> LogPosition {
        self.applied
    }

    /// Feed one chunk; applies every complete record it completes. Also
    /// appends the bytes to the replica partition's own log (file retention
    /// for failover) — the replica's log positions mirror the master's.
    pub fn feed(&mut self, partition: &Arc<Partition>, chunk: &LogChunk) -> Result<()> {
        if chunk.start_lp != self.buf_lp + self.buf.len() as u64 {
            return Err(s2_common::Error::Internal(format!(
                "replication gap: expected {} got {}",
                self.buf_lp + self.buf.len() as u64,
                chunk.start_lp
            )));
        }
        self.buf.extend_from_slice(&chunk.bytes);
        self.resume(partition)
    }

    /// Apply the complete records currently buffered. On error, the prefix
    /// applied so far is consumed (mirrored to the log and drained) before
    /// the error returns — so after a *transient* failure (e.g. a segment
    /// file unreadable during a blob outage) a later `resume` continues at
    /// the failing record instead of re-applying the prefix.
    pub fn resume(&mut self, partition: &Arc<Partition>) -> Result<()> {
        let mut consumed = 0usize;
        let mut out = Ok(());
        {
            let mut iter = RecordIter::new(&self.buf, self.buf_lp);
            for rec in &mut iter {
                let step = (|| -> Result<u64> {
                    let rec = rec?;
                    let engine_rec = EngineRecord::decode(rec.kind, rec.payload)?;
                    partition.apply_record(engine_rec)?;
                    Ok(rec.end_lp)
                })();
                match step {
                    Ok(end_lp) => consumed = (end_lp - self.buf_lp) as usize,
                    Err(e) => {
                        out = Err(e);
                        break;
                    }
                }
            }
        }
        if consumed > 0 {
            // Mirror the complete-record bytes into the replica's own log so
            // a promoted replica continues the stream at the same positions.
            // (A partial trailing frame stays in `buf` until completed.)
            partition.log.append_raw(&self.buf[..consumed]);
            self.buf.drain(..consumed);
            self.buf_lp += consumed as u64;
            self.applied = self.buf_lp;
        }
        out
    }
}

/// Create an empty partition suitable for use as a replica of `name`,
/// sharing the master's data-file store (the paper replicates data files to
/// replicas as they are written; in-process, sharing the store models that
/// channel). The replica's log positions start at `from_lp`, mirroring the
/// master's stream.
pub fn empty_replica_partition(
    name: &str,
    file_store: Arc<dyn DataFileStore>,
    from_lp: LogPosition,
) -> Arc<Partition> {
    Partition::new(name, Arc::new(Log::in_memory_from(from_lp)), file_store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::schema::ColumnDef;
    use s2_common::{DataType, Row, Schema, TableOptions, Value};
    use s2_core::MemFileStore;

    fn table_setup(p: &Arc<Partition>) -> u32 {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("v", DataType::Str),
        ])
        .unwrap();
        let opts = TableOptions::new().with_unique("pk", vec![0]).with_segment_rows(50);
        p.create_table("t", schema, opts).unwrap()
    }

    #[test]
    fn replica_follows_master_and_acks() {
        let files: Arc<MemFileStore> = Arc::new(MemFileStore::new());
        let master = Partition::new("p0", Arc::new(Log::in_memory()), files.clone());
        let t = table_setup(&master);

        let rp = empty_replica_partition("p0", files.clone(), 0);
        let replica = Replica::start(&master, rp, 0, true).unwrap();

        let mut txn = master.begin();
        for i in 0..100 {
            txn.insert(t, Row::new(vec![Value::Int(i), Value::str("x")])).unwrap();
        }
        let (_, end_lp) = txn.commit().unwrap();
        assert!(replica.wait_applied(end_lp, std::time::Duration::from_secs(5)));
        assert!(master.log.replicated_lp() >= end_lp, "ack advanced the watermark");

        // The replica answers reads.
        let t2 = replica.partition.table_by_name("t").unwrap().id;
        let snap = replica.partition.read_snapshot();
        assert_eq!(snap.table(t2).unwrap().live_row_count(), 100);
    }

    #[test]
    fn replica_applies_flush_and_merge() {
        let files: Arc<MemFileStore> = Arc::new(MemFileStore::new());
        let master = Partition::new("p0", Arc::new(Log::in_memory()), files.clone());
        let t = table_setup(&master);
        let replica =
            Replica::start(&master, empty_replica_partition("p0", files.clone(), 0), 0, true)
                .unwrap();

        for b in 0..6i64 {
            let mut txn = master.begin();
            for i in 0..50 {
                txn.insert(t, Row::new(vec![Value::Int(b * 50 + i), Value::str("x")])).unwrap();
            }
            txn.commit().unwrap();
            master.flush_table(t, true).unwrap();
        }
        while master.merge_table(t).unwrap() {}
        let end = master.log.end_lp();
        assert!(replica.wait_applied(end, std::time::Duration::from_secs(5)));

        let t2 = replica.partition.table_by_name("t").unwrap().id;
        let snap = replica.partition.read_snapshot();
        assert_eq!(snap.table(t2).unwrap().live_row_count(), 300);
        // Replica's segment state mirrors the merged structure.
        let m_segs = master.table(t).unwrap().live_segments().len();
        let r_segs = replica.partition.table(t2).unwrap().live_segments().len();
        assert_eq!(m_segs, r_segs);
    }

    #[test]
    fn late_subscriber_gets_backlog() {
        let files: Arc<MemFileStore> = Arc::new(MemFileStore::new());
        let master = Partition::new("p0", Arc::new(Log::in_memory()), files.clone());
        let t = table_setup(&master);
        let mut txn = master.begin();
        txn.insert(t, Row::new(vec![Value::Int(1), Value::str("early")])).unwrap();
        txn.commit().unwrap();

        // Replica starts after the fact; must catch up from the backlog.
        let replica =
            Replica::start(&master, empty_replica_partition("p0", files.clone(), 0), 0, false)
                .unwrap();
        assert!(replica.wait_applied(master.log.end_lp(), std::time::Duration::from_secs(5)));
        let t2 = replica.partition.table_by_name("t").unwrap().id;
        let txn = replica.partition.begin();
        assert!(txn.get_unique(t2, &[Value::Int(1)]).unwrap().is_some());
        txn.rollback();
        assert_eq!(master.log.replicated_lp(), 0, "non-acking replica never acks");
    }
}
