//! Read-only workspaces (paper §3.2, figure 2): isolated compute provisioned
//! from blob storage, then kept fresh by replicating only the log tail from
//! the primary workspace. Workspace replicas never acknowledge commits —
//! they add read capacity without being on the durability path.

use std::sync::Arc;
use std::time::Duration;

use s2_blob::ObjectStore;
use s2_common::{Error, Result, TableId};
use s2_core::TableSnapshot;
use s2_exec::Batch;
use s2_query::{execute, ExecOptions, Plan, UnionContext};

use crate::cluster::Cluster;
use crate::pitr::restore_from_blob;
use crate::replica::Replica;
use crate::storage::BlobBackedFileStore;

/// A read-only workspace over a cluster's databases.
pub struct Workspace {
    /// Workspace name.
    pub name: String,
    replicas: Vec<Replica>,
    /// Per-partition blob-backed file stores (each workspace caches its own
    /// set of data files independently, paper §3.2).
    pub file_stores: Vec<Arc<BlobBackedFileStore>>,
    cluster: Arc<Cluster>,
}

impl Workspace {
    /// Provision a workspace: restore each partition from blob storage
    /// (snapshot + uploaded log chunks), then attach to the primary's log
    /// tail from the restore point. Data files are pulled from the blob
    /// store on demand — provisioning does not wait for them, which is what
    /// makes workspace creation fast.
    pub fn provision(
        name: impl Into<String>,
        cluster: &Arc<Cluster>,
        blob: &Arc<dyn ObjectStore>,
        cache_bytes: usize,
    ) -> Result<Workspace> {
        let name = name.into();
        let mut replicas = Vec::with_capacity(cluster.partition_count());
        let mut file_stores = Vec::with_capacity(cluster.partition_count());
        // Restore reads (snapshots, sealed log chunks) go through a local
        // read cache too — the chunk that tells us the blob tail position is
        // the same one the log replay loads a moment later.
        let cached: Arc<dyn ObjectStore> =
            Arc::new(s2_blob::CachedStore::new(Arc::clone(blob), cache_bytes / 4));
        for pid in 0..cluster.partition_count() {
            let set = cluster.set(pid);
            let files = BlobBackedFileStore::new(Arc::clone(blob), cache_bytes);
            let restored = restore_from_blob(
                &cached,
                &set.name,
                files.clone() as Arc<dyn s2_core::DataFileStore>,
                None,
            )?;
            let from_lp = restored.log.end_lp();
            let master = set.master();
            // Tail replication from the primary (paper: "replicate the tail
            // of the log (not yet in blob storage) from the master").
            let replica = Replica::start(&master, restored, from_lp, false)?;
            replicas.push(replica);
            file_stores.push(files);
        }
        Ok(Workspace { name, replicas, file_stores, cluster: Arc::clone(cluster) })
    }

    /// Attach a workspace without blob storage: replicas replay the full
    /// log stream from the primaries and share their data-file stores
    /// (paper Table 3 test case 5: "no blob store", all data local). Slower
    /// to provision than the blob path — the whole history streams from the
    /// primary — which is exactly the elasticity cost §3.1 attributes to
    /// running without separated storage.
    pub fn attach_local(name: impl Into<String>, cluster: &Arc<Cluster>) -> Result<Workspace> {
        let name = name.into();
        let mut replicas = Vec::with_capacity(cluster.partition_count());
        for pid in 0..cluster.partition_count() {
            let set = cluster.set(pid);
            let master = set.master();
            let rp = crate::replica::empty_replica_partition(&set.name, set.file_store.clone(), 0);
            replicas.push(Replica::start(&master, rp, 0, false)?);
        }
        Ok(Workspace { name, replicas, file_stores: Vec::new(), cluster: Arc::clone(cluster) })
    }

    /// Current replication lag in log bytes, maxed over partitions.
    pub fn max_lag_bytes(&self) -> u64 {
        (0..self.replicas.len())
            .map(|pid| {
                let end = self.cluster.set(pid).master().log.end_lp();
                end.saturating_sub(self.replicas[pid].applied_lp())
            })
            .max()
            .unwrap_or(0)
    }

    /// Wait until lag is zero against the masters' current positions.
    pub fn catch_up(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.max_lag_bytes() == 0 {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Build a query context over the workspace's replicas.
    pub fn context(&self) -> Result<UnionContext> {
        let mut ctx = UnionContext::new();
        // Discover tables from the first replica (DDL replicates like data).
        let first = &self.replicas[0].partition;
        let ids: Vec<TableId> = first.table_ids();
        let mut names: Vec<(TableId, String)> = Vec::new();
        for id in ids {
            names.push((id, first.table(id)?.name.clone()));
        }
        let snaps: Vec<_> = self.replicas.iter().map(|r| r.partition.read_snapshot()).collect();
        for (id, name) in names {
            let mut per_table: Vec<Arc<TableSnapshot>> = Vec::new();
            for snap in &snaps {
                per_table.push(Arc::clone(
                    snap.table(id).map_err(|_| {
                        Error::NotFound(format!("table {name:?} not yet replicated"))
                    })?,
                ));
            }
            ctx.add_table(name, per_table);
        }
        Ok(ctx)
    }

    /// Run a read query on the workspace's own compute.
    pub fn execute(&self, plan: &Plan, opts: &ExecOptions) -> Result<Batch> {
        let ctx = self.context()?;
        execute(plan, &ctx, opts)
    }
}
