//! Read-only workspaces (paper §3.2, figure 2): isolated compute provisioned
//! from blob storage, then kept fresh by replicating only the log tail from
//! the primary workspace. Workspace replicas never acknowledge commits —
//! they add read capacity without being on the durability path.

use std::sync::Arc;
use std::time::Duration;

use s2_blob::{ObjectStore, UploaderConfig};
use s2_common::{Result, TableId};
use s2_core::TableSnapshot;
use s2_exec::Batch;
use s2_query::{execute, ExecOptions, Plan, UnionContext};

use crate::cluster::Cluster;
use crate::pitr::restore_from_blob;
use crate::replica::Replica;
use crate::storage::BlobBackedFileStore;

/// A read-only workspace over a cluster's databases.
pub struct Workspace {
    /// Workspace name.
    pub name: String,
    replicas: Vec<Replica>,
    /// Per-partition blob-backed file stores (each workspace caches its own
    /// set of data files independently, paper §3.2).
    pub file_stores: Vec<Arc<BlobBackedFileStore>>,
    cluster: Arc<Cluster>,
}

impl Workspace {
    /// Provision a workspace: restore each partition from blob storage
    /// (snapshot + uploaded log chunks), then attach to the primary's log
    /// tail from the restore point. Data files are pulled from the blob
    /// store on demand — provisioning does not wait for them, which is what
    /// makes workspace creation fast.
    ///
    /// Cold reads share the cluster's `BlobHealth` breaker when it runs
    /// separated storage: a blob outage observed by the primaries makes
    /// workspace cold reads fail fast too (degraded mode), and vice versa.
    pub fn provision(
        name: impl Into<String>,
        cluster: &Arc<Cluster>,
        blob: &Arc<dyn ObjectStore>,
        cache_bytes: usize,
    ) -> Result<Workspace> {
        Self::provision_with_tuning(
            name,
            cluster,
            blob,
            cache_bytes,
            UploaderConfig::default(),
            Duration::from_secs(2),
        )
    }

    /// [`Workspace::provision`] with the cold-read deadline budget and
    /// uploader tuning pinned (drills and tests use fast settings).
    pub fn provision_with_tuning(
        name: impl Into<String>,
        cluster: &Arc<Cluster>,
        blob: &Arc<dyn ObjectStore>,
        cache_bytes: usize,
        uploader: UploaderConfig,
        read_budget: Duration,
    ) -> Result<Workspace> {
        let name = name.into();
        let mut replicas = Vec::with_capacity(cluster.partition_count());
        let mut file_stores = Vec::with_capacity(cluster.partition_count());
        // Restore reads (snapshots, sealed log chunks) go through a local
        // read cache too — the chunk that tells us the blob tail position is
        // the same one the log replay loads a moment later.
        let cached: Arc<dyn ObjectStore> =
            Arc::new(s2_blob::CachedStore::new(Arc::clone(blob), cache_bytes / 4));
        for pid in 0..cluster.partition_count() {
            // Kill point: a crash mid-provision unwinds out of here, dropping
            // the partial replica set (their apply threads stop cleanly) —
            // a half-provisioned workspace is never observable.
            s2_common::fault::crash_point("workspace.provision");
            let set = cluster.set(pid);
            let health = match cluster.blob_health() {
                Some(h) => Arc::clone(h),
                None => s2_blob::BlobHealth::new(format!("workspace-{name}#{pid}")),
            };
            let files = BlobBackedFileStore::with_tuning(
                Arc::clone(blob),
                cache_bytes,
                uploader,
                health,
                read_budget,
            );
            let restored = restore_from_blob(
                &cached,
                &set.name,
                files.clone() as Arc<dyn s2_core::DataFileStore>,
                None,
            )?;
            let from_lp = restored.log.end_lp();
            let master = set.master();
            // Tail replication from the primary (paper: "replicate the tail
            // of the log (not yet in blob storage) from the master").
            let replica = Replica::start(&master, restored, from_lp, false)?;
            replicas.push(replica);
            file_stores.push(files);
        }
        Ok(Workspace { name, replicas, file_stores, cluster: Arc::clone(cluster) })
    }

    /// Attach a workspace without blob storage: replicas replay the full
    /// log stream from the primaries and share their data-file stores
    /// (paper Table 3 test case 5: "no blob store", all data local). Slower
    /// to provision than the blob path — the whole history streams from the
    /// primary — which is exactly the elasticity cost §3.1 attributes to
    /// running without separated storage.
    pub fn attach_local(name: impl Into<String>, cluster: &Arc<Cluster>) -> Result<Workspace> {
        let name = name.into();
        let mut replicas = Vec::with_capacity(cluster.partition_count());
        for pid in 0..cluster.partition_count() {
            s2_common::fault::crash_point("workspace.provision");
            let set = cluster.set(pid);
            let master = set.master();
            let rp = crate::replica::empty_replica_partition(&set.name, set.file_store.clone(), 0);
            replicas.push(Replica::start(&master, rp, 0, false)?);
        }
        Ok(Workspace { name, replicas, file_stores: Vec::new(), cluster: Arc::clone(cluster) })
    }

    /// The replica partition backing shard `pid` — oracle access for drills
    /// and tests that diff workspace state against the primary's.
    pub fn replica_partition(&self, pid: usize) -> &Arc<s2_core::Partition> {
        &self.replicas[pid].partition
    }

    /// Current replication lag in log bytes, maxed over partitions.
    pub fn max_lag_bytes(&self) -> u64 {
        (0..self.replicas.len())
            .map(|pid| {
                let end = self.cluster.set(pid).master().log.end_lp();
                end.saturating_sub(self.replicas[pid].applied_lp())
            })
            .max()
            .unwrap_or(0)
    }

    /// Wait until lag is zero against the masters' current positions. Each
    /// replica parks on its applied-watermark condvar (woken per applied
    /// chunk), so waiting burns no CPU even across a long blob outage.
    pub fn catch_up(&self, timeout: Duration) -> bool {
        // Wall-clock use is fine here: the cluster crate is not one of the
        // deterministic modules the R1 lint covers; this is a caller-facing
        // deadline, same as `PartitionSet::wait_replicated`.
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let mut caught_up = true;
            for pid in 0..self.replicas.len() {
                let end = self.cluster.set(pid).master().log.end_lp();
                let now = std::time::Instant::now();
                if now >= deadline {
                    return self.max_lag_bytes() == 0;
                }
                if !self.replicas[pid].wait_applied(end, deadline - now) {
                    caught_up = false;
                }
            }
            // The masters may have advanced while we waited: re-check the
            // lag against their *current* positions before declaring parity.
            if caught_up && self.max_lag_bytes() == 0 {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Build a query context over the workspace's replicas.
    ///
    /// A table whose DDL has not replicated to *every* partition replica yet
    /// is skipped (with a `workspace.ddl_pending` event) rather than failing
    /// the whole context: a workspace racing a CREATE TABLE sees the catalog
    /// a moment stale, never an error.
    pub fn context(&self) -> Result<UnionContext> {
        let mut ctx = UnionContext::new();
        // Discover tables from the first replica (DDL replicates like data).
        let first = &self.replicas[0].partition;
        let ids: Vec<TableId> = first.table_ids();
        let mut names: Vec<(TableId, String)> = Vec::new();
        for id in ids {
            names.push((id, first.table(id)?.name.clone()));
        }
        let snaps: Vec<_> = self.replicas.iter().map(|r| r.partition.read_snapshot()).collect();
        'tables: for (id, name) in names {
            let mut per_table: Vec<Arc<TableSnapshot>> = Vec::new();
            for snap in &snaps {
                match snap.table(id) {
                    Ok(t) => per_table.push(Arc::clone(t)),
                    Err(_) => {
                        s2_obs::counter!("workspace.ddl_pending_skips").inc();
                        s2_obs::event(
                            "workspace.ddl_pending",
                            format!("table {name:?} not yet replicated on workspace {}", self.name),
                        );
                        continue 'tables;
                    }
                }
            }
            ctx.add_table(name, per_table);
        }
        Ok(ctx)
    }

    /// Run a read query on the workspace's own compute.
    pub fn execute(&self, plan: &Plan, opts: &ExecOptions) -> Result<Batch> {
        let ctx = self.context()?;
        execute(plan, &ctx, opts)
    }
}
