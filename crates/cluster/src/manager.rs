//! Workspace fleet lifecycle (paper §3.2): provision and detach read-only
//! workspaces — many at a time, under live write traffic — with the blob
//! breaker governing the whole arc.
//!
//! Degraded-mode policy: while the shared [`BlobHealth`] reports an outage,
//! *new* provisioning pauses (and resumes when the store recovers, or fails
//! with `Unavailable` after a bounded wait) while *attached* workspaces keep
//! serving reads from their local caches and retrying tail replication —
//! they degrade to growing lag, never to errors.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use s2_blob::{ObjectStore, StoreHealth, UploaderConfig};
use s2_common::sync::{rank, Mutex};
use s2_common::{Error, Result};

use crate::cluster::Cluster;
use crate::workspace::Workspace;

/// Tuning for a workspace fleet.
#[derive(Debug, Clone)]
pub struct WorkspaceManagerConfig {
    /// Local data-file cache per workspace partition.
    pub cache_bytes: usize,
    /// Cold-read deadline budget for workspace file stores.
    pub read_budget: Duration,
    /// Upload tuning for workspace file stores (workspaces never upload in
    /// practice — they are read-only — but the store plumbing is shared).
    pub uploader: UploaderConfig,
    /// How long `provision` waits out a blob outage before giving up with
    /// `Unavailable`.
    pub provision_wait: Duration,
}

impl Default for WorkspaceManagerConfig {
    fn default() -> Self {
        WorkspaceManagerConfig {
            cache_bytes: 64 * 1024 * 1024,
            read_budget: Duration::from_secs(2),
            uploader: UploaderConfig::default(),
            provision_wait: Duration::from_secs(10),
        }
    }
}

/// Provisions, tracks and detaches a fleet of named workspaces over one
/// cluster. All methods are callable concurrently; the heavy work of
/// provisioning runs outside the registry lock.
pub struct WorkspaceManager {
    cluster: Arc<Cluster>,
    blob: Arc<dyn ObjectStore>,
    cfg: WorkspaceManagerConfig,
    workspaces: Mutex<HashMap<String, Arc<Workspace>>>,
}

impl WorkspaceManager {
    /// Create a manager over `cluster`. The cluster must run separated
    /// storage (workspaces are provisioned from its blob store).
    pub fn new(cluster: &Arc<Cluster>, cfg: WorkspaceManagerConfig) -> Result<WorkspaceManager> {
        let blob = cluster
            .blob_store()
            .ok_or_else(|| {
                Error::InvalidArgument("workspace manager needs a cluster with blob storage".into())
            })?
            .clone();
        Ok(WorkspaceManager {
            cluster: Arc::clone(cluster),
            blob,
            cfg,
            workspaces: Mutex::new(&rank::CLUSTER_WORKSPACES, HashMap::new()),
        })
    }

    /// Provision and attach one workspace. During a blob outage this pauses
    /// (breaker-gated) and resumes when the store recovers; after
    /// `provision_wait` it gives up with `Unavailable`. Duplicate names are
    /// rejected.
    pub fn provision(&self, name: &str) -> Result<Arc<Workspace>> {
        if self.workspaces.lock().contains_key(name) {
            return Err(Error::InvalidArgument(format!("workspace {name:?} already attached")));
        }
        self.wait_provisionable()?;
        // s2-lint: allow(wall-clock, provisioning latency is operator telemetry)
        let start = std::time::Instant::now();
        let ws = Arc::new(Workspace::provision_with_tuning(
            name,
            &self.cluster,
            &self.blob,
            self.cfg.cache_bytes,
            self.cfg.uploader,
            self.cfg.read_budget,
        )?);
        s2_obs::histogram!("workspace.provision_ms").record(start.elapsed().as_millis() as u64);
        let active = {
            let mut map = self.workspaces.lock();
            if map.contains_key(name) {
                return Err(Error::InvalidArgument(format!("workspace {name:?} already attached")));
            }
            map.insert(name.to_string(), Arc::clone(&ws));
            map.len()
        };
        s2_obs::gauge!("workspace.active").set(active as i64);
        s2_obs::counter!("workspace.provisions").inc();
        s2_obs::event("workspace.provisioned", format!("{name} ({active} active)"));
        Ok(ws)
    }

    /// Provision several workspaces concurrently (one thread each; the
    /// per-workspace restore work is already fan-in from blob storage).
    pub fn provision_many(&self, names: &[String]) -> Vec<(String, Result<Arc<Workspace>>)> {
        std::thread::scope(|s| {
            let handles: Vec<_> =
                names.iter().map(|n| s.spawn(move || (n.clone(), self.provision(n)))).collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// Block while the blob breaker reports a full outage. Returns `Ok` the
    /// moment the store is usable again, `Unavailable` after the configured
    /// wait: degraded mode pauses provisioning rather than erroring out.
    fn wait_provisionable(&self) -> Result<()> {
        let Some(health) = self.cluster.blob_health() else {
            return Ok(());
        };
        if health.health() != StoreHealth::Outage {
            return Ok(());
        }
        s2_obs::counter!("workspace.provision_pauses").inc();
        s2_obs::event("workspace.provision_pause", "blob outage: provisioning paused".to_string());
        // s2-lint: allow(wall-clock, bounded operator-facing wait on breaker recovery)
        let deadline = std::time::Instant::now() + self.cfg.provision_wait;
        loop {
            if health.health() != StoreHealth::Outage {
                s2_obs::event(
                    "workspace.provision_resume",
                    "blob store recovered: provisioning resumed".to_string(),
                );
                return Ok(());
            }
            if std::time::Instant::now() >= deadline {
                return Err(Error::Unavailable(
                    "blob outage: workspace provisioning paused past its wait budget".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Detach a workspace: removes it from the registry and stops its
    /// replication threads. All-or-nothing — a crash at the kill point
    /// leaves the workspace attached and serving.
    pub fn detach(&self, name: &str) -> Result<()> {
        s2_common::fault::crash_point("workspace.detach");
        let (ws, active) = {
            let mut map = self.workspaces.lock();
            let ws =
                map.remove(name).ok_or_else(|| Error::NotFound(format!("workspace {name:?}")))?;
            (ws, map.len())
        };
        s2_obs::gauge!("workspace.active").set(active as i64);
        s2_obs::counter!("workspace.detaches").inc();
        s2_obs::event("workspace.detached", format!("{name} ({active} active)"));
        // Dropped outside the registry lock: the drop joins apply threads.
        drop(ws);
        Ok(())
    }

    /// Detach every workspace.
    pub fn detach_all(&self) {
        for name in self.names() {
            let _ = self.detach(&name);
        }
    }

    /// Look up an attached workspace.
    pub fn get(&self, name: &str) -> Option<Arc<Workspace>> {
        self.workspaces.lock().get(name).cloned()
    }

    /// Names of attached workspaces (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workspaces.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of attached workspaces.
    pub fn active(&self) -> usize {
        self.workspaces.lock().len()
    }

    /// Max tail-replication lag in log bytes across the fleet (also
    /// published as the `workspace.lag_bytes` gauge).
    pub fn max_lag_bytes(&self) -> u64 {
        let fleet: Vec<Arc<Workspace>> = self.workspaces.lock().values().cloned().collect();
        let lag = fleet.iter().map(|ws| ws.max_lag_bytes()).max().unwrap_or(0);
        s2_obs::gauge!("workspace.lag_bytes").set(lag as i64);
        lag
    }

    /// Wait until every attached workspace has zero lag against the
    /// masters' current positions.
    pub fn catch_up_all(&self, timeout: Duration) -> bool {
        let fleet: Vec<Arc<Workspace>> = self.workspaces.lock().values().cloned().collect();
        // s2-lint: allow(wall-clock, caller-facing deadline split across the fleet)
        let deadline = std::time::Instant::now() + timeout;
        let mut ok = true;
        for ws in fleet {
            let now = std::time::Instant::now();
            let left = deadline.saturating_duration_since(now);
            ok &= ws.catch_up(left);
        }
        self.max_lag_bytes();
        ok
    }
}
