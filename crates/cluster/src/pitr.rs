//! Restore from blob storage: the shared machinery behind point-in-time
//! restore (paper §3.2) and read-only workspace provisioning (§3.3).
//!
//! The blob store acts as a continuous backup: snapshots plus sealed log
//! chunks. A restore picks the latest snapshot at or before the target log
//! position, loads the log chunks covering `[snapshot.lp, target]`, and
//! replays — exactly the node-restart recovery path, pointed at remote
//! objects. Data files are pulled on demand through the restored partition's
//! file store.

use std::sync::Arc;

use s2_blob::ObjectStore;
use s2_common::{Error, LogPosition, Result};
use s2_core::{DataFileStore, Partition};
use s2_wal::{Log, Snapshot};

use crate::storage::lp_from_chunk_key;

/// The latest snapshot of `partition` at or before `target_lp` (if any).
pub fn find_snapshot(
    blob: &Arc<dyn ObjectStore>,
    partition: &str,
    target_lp: Option<LogPosition>,
) -> Result<Option<Snapshot>> {
    let prefix = format!("{partition}/snapshots/");
    let keys = blob.list(&prefix)?;
    // Keys are zero-padded, so lexicographic order == lp order.
    let mut best: Option<&String> = None;
    for k in &keys {
        if let Some(lp) = Snapshot::lp_from_key(k) {
            if target_lp.is_none_or(|t| lp <= t) {
                best = Some(k);
            }
        }
    }
    match best {
        None => Ok(None),
        Some(k) => {
            let bytes = blob.get(k)?;
            Ok(Some(Snapshot::decode(&bytes)?))
        }
    }
}

/// Highest log position covered by uploaded chunks.
pub fn max_uploaded_lp(blob: &Arc<dyn ObjectStore>, partition: &str) -> Result<LogPosition> {
    let prefix = format!("{partition}/log/");
    let keys = blob.list(&prefix)?;
    let Some(last) = keys.last() else { return Ok(0) };
    let start = lp_from_chunk_key(last)
        .ok_or_else(|| Error::Corruption(format!("bad log chunk key {last:?}")))?;
    Ok(start + blob.get(last)?.len() as u64)
}

/// Reconstruct an in-memory log holding bytes `[from_lp, upto_lp)` from the
/// uploaded chunks.
pub fn load_log(
    blob: &Arc<dyn ObjectStore>,
    partition: &str,
    from_lp: LogPosition,
    upto_lp: LogPosition,
) -> Result<Arc<Log>> {
    let prefix = format!("{partition}/log/");
    let keys = blob.list(&prefix)?;
    let log = Arc::new(Log::in_memory_from(from_lp));
    let mut buf = Vec::new();
    let mut cursor = from_lp;
    for key in keys {
        let start = lp_from_chunk_key(&key)
            .ok_or_else(|| Error::Corruption(format!("bad log chunk key {key:?}")))?;
        if start >= upto_lp {
            break;
        }
        // Chunks are contiguous; skip those entirely before our window.
        let bytes = blob.get(&key)?;
        let end = start + bytes.len() as u64;
        if end <= cursor {
            continue;
        }
        if start > cursor {
            return Err(Error::Corruption(format!(
                "log chunk gap: have up to {cursor}, next chunk starts at {start}"
            )));
        }
        let skip = (cursor - start) as usize;
        let take_end = (upto_lp.min(end) - start) as usize;
        buf.extend_from_slice(&bytes[skip..take_end]);
        cursor = start + take_end as u64;
    }
    // Sealed chunks cut at a byte budget (`Log::seal_chunk` max_bytes), so
    // the uploaded stream can end mid-record. The restored log must end on
    // a record boundary: a workspace subscribes the primary's tail at
    // `end_lp()`, and a promoted PITR restore appends new records there —
    // either continuing from inside a torn frame corrupts the stream.
    log.append_raw(&buf[..s2_wal::valid_prefix_len(&buf)]);
    Ok(log)
}

/// Restore a partition from blob storage up to `target_lp` (or everything
/// uploaded, when `None`). This is PITR (paper §3.2: "drops the existing
/// local state of the database and does a restore up until the log position
/// LP ... in the same fashion as when recovering from blob storage on a
/// process restart") and the first phase of workspace provisioning.
///
/// `target_lp` stands in for the paper's wall-clock target: S2DB maps a
/// target time to a transactionally consistent log position; our logs carry
/// no wall clock, so callers address positions directly.
pub fn restore_from_blob(
    blob: &Arc<dyn ObjectStore>,
    partition: &str,
    file_store: Arc<dyn DataFileStore>,
    target_lp: Option<LogPosition>,
) -> Result<Arc<Partition>> {
    // Restores are idempotent reads over immutable blob objects: a failure
    // or crash here is always safe to retry from scratch.
    s2_common::fault::failpoint("pitr.restore")?;
    let snapshot = find_snapshot(blob, partition, target_lp)?;
    let start_lp = snapshot.as_ref().map_or(0, |s| s.lp);
    let max_lp = max_uploaded_lp(blob, partition)?;
    let upto = target_lp.map_or(max_lp, |t| t.min(max_lp)).max(start_lp);
    let log = load_log(blob, partition, start_lp, upto)?;
    Partition::recover(partition, log, file_store, snapshot.as_ref(), Some(upto))
}
