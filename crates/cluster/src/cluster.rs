//! The cluster: hash-partitioned tables across master partitions with HA
//! replicas, synchronous in-memory replication on the commit path, blob
//! storage shipping, aggregator-style scatter/gather queries and failover
//! (paper §2, §3).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use s2_blob::{BlobHealth, ObjectStore, ResilientStore};
use s2_common::sync::{rank, Mutex, RwLock};
use s2_common::{
    Error, LogPosition, Result, RetryPolicy, Row, Schema, TableId, TableOptions, Timestamp, Value,
};
use s2_core::{DataFileStore, DuplicatePolicy, InsertReport, MemFileStore, Partition, Txn};
use s2_exec::Batch;
use s2_query::{execute_with_stats, ExecOptions, ExecStats, Plan, UnionContext};

use crate::replica::{empty_replica_partition, Replica};
use crate::storage::{BlobBackedFileStore, StorageConfig, StorageService};

/// Cluster construction parameters.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of data partitions.
    pub partitions: usize,
    /// HA replicas per partition.
    pub ha_replicas: usize,
    /// Wait for a replica ack before a commit returns (paper §3's default
    /// durability rule). Ignored when `ha_replicas == 0`.
    pub sync_replication: bool,
    /// Blob store for separated storage (None = shared-nothing mode,
    /// paper §3: "S2DB can run with and without access to a blob store").
    pub blob: Option<Arc<dyn ObjectStore>>,
    /// Local data-file cache per partition when blob storage is on.
    pub cache_bytes: usize,
    /// Log/snapshot shipping tuning.
    pub storage: StorageConfig,
    /// Blob-breaker tuning (None = production defaults). Drills use fast
    /// cooldowns so outage arcs play out in milliseconds.
    pub breaker: Option<s2_blob::BreakerConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions: 4,
            ha_replicas: 1,
            sync_replication: true,
            blob: None,
            cache_bytes: 256 * 1024 * 1024,
            storage: StorageConfig::default(),
            breaker: None,
        }
    }
}

/// One partition slot: the current master, its HA replicas, and the
/// storage plumbing. Failover swaps the master in place.
pub struct PartitionSet {
    /// Partition name (stable across failovers).
    pub name: String,
    master: RwLock<Arc<Partition>>,
    replicas: Mutex<Vec<Replica>>,
    /// Data-file store shared by master and replicas (models file replication).
    pub file_store: Arc<dyn DataFileStore>,
    /// Blob-backed view of the file store, when separated storage is on.
    pub blob_files: Option<Arc<BlobBackedFileStore>>,
    storage_service: Mutex<Option<StorageService>>,
}

impl PartitionSet {
    /// Current master partition.
    pub fn master(&self) -> Arc<Partition> {
        Arc::clone(&self.master.read())
    }

    /// Block until the master's log is replicated up to `lp`. Parks on the
    /// log's replication condvar (woken by replica acks) rather than
    /// spinning; one wait on a batch-end position acks a whole group-commit
    /// batch.
    pub fn wait_replicated(&self, lp: LogPosition, timeout: Duration) -> bool {
        self.master().log.wait_replicated(lp, timeout)
    }

    /// Maximum replication lag (bytes) across this set's replicas.
    pub fn max_lag(&self) -> u64 {
        let end = self.master().log.end_lp();
        self.replicas.lock().iter().map(|r| end.saturating_sub(r.applied_lp())).max().unwrap_or(0)
    }
}

/// Per-table routing metadata cached at the aggregator.
struct TableMeta {
    id: TableId,
    shard_key: Vec<usize>,
    unique_cols: Option<Vec<usize>>,
}

/// An S2DB-style cluster in one process.
pub struct Cluster {
    /// Database name (prefixes partition names).
    pub name: String,
    config: ClusterConfig,
    sets: Vec<Arc<PartitionSet>>,
    tables: RwLock<HashMap<String, TableMeta>>,
    /// One health view for the cluster's blob store, shared by every
    /// partition's uploader, cold reads and shipping service: the first
    /// layer to see an outage shields all the others.
    blob_health: Option<Arc<BlobHealth>>,
    maintenance_stop: Arc<std::sync::atomic::AtomicBool>,
    maintenance_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

static CLUSTER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Cluster {
    /// Bring up a cluster.
    pub fn new(name: impl Into<String>, config: ClusterConfig) -> Result<Arc<Cluster>> {
        let name = name.into();
        // Private (per-cluster) health rather than the global registry:
        // parallel tests each get an isolated breaker. The sharing that
        // matters — across this cluster's partitions and layers — is wired
        // explicitly below.
        let blob_health = config.blob.as_ref().map(|_| {
            let seq = CLUSTER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            match &config.breaker {
                Some(b) => BlobHealth::with_config(format!("{name}-blob#{seq}"), *b),
                None => BlobHealth::new(format!("{name}-blob#{seq}")),
            }
        });
        let mut sets = Vec::with_capacity(config.partitions);
        for pid in 0..config.partitions {
            let pname = format!("{name}_p{pid}");
            let (file_store, blob_files): (Arc<dyn DataFileStore>, _) = match &config.blob {
                Some(blob) => {
                    let bf = BlobBackedFileStore::with_health(
                        Arc::clone(blob),
                        config.cache_bytes,
                        Arc::clone(blob_health.as_ref().expect("health exists when blob does")),
                    );
                    (bf.clone() as Arc<dyn DataFileStore>, Some(bf))
                }
                None => (Arc::new(MemFileStore::new()) as Arc<dyn DataFileStore>, None),
            };
            let master = Partition::new(
                pname.clone(),
                Arc::new(s2_wal::Log::in_memory()),
                file_store.clone(),
            );
            let mut replicas = Vec::with_capacity(config.ha_replicas);
            for _ in 0..config.ha_replicas {
                let rp = empty_replica_partition(&pname, file_store.clone(), 0);
                replicas.push(Replica::start(&master, rp, 0, true)?);
            }
            let storage_service = config.blob.as_ref().map(|blob| {
                let mut cfg = config.storage.clone();
                cfg.require_replicated = config.sync_replication && config.ha_replicas > 0;
                let health =
                    Arc::clone(blob_health.as_ref().expect("health exists when blob does"));
                // Shipping puts go through the breaker too: chunk/snapshot
                // failures feed the same health that pauses the loop.
                let resilient = Arc::new(ResilientStore::new(
                    Arc::clone(blob),
                    Arc::clone(&health),
                    RetryPolicy::blob_default(),
                )) as Arc<dyn ObjectStore>;
                StorageService::start_with_health(Arc::clone(&master), resilient, cfg, Some(health))
            });
            sets.push(Arc::new(PartitionSet {
                name: pname,
                master: RwLock::new(&rank::CLUSTER_TOPOLOGY, master),
                replicas: Mutex::new(&rank::CLUSTER_TOPOLOGY, replicas),
                file_store,
                blob_files,
                storage_service: Mutex::new(&rank::CLUSTER_TOPOLOGY, storage_service),
            }));
        }
        let cluster = Arc::new(Cluster {
            name,
            config,
            sets,
            tables: RwLock::new(&rank::CLUSTER_TABLES, HashMap::new()),
            blob_health,
            maintenance_stop: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            maintenance_thread: Mutex::new(&rank::CLUSTER_TOPOLOGY, None),
        });
        // Background flusher/merger/vacuum (paper §2.1.2's background
        // processes): keeps rowstore levels small and reclaims MVCC garbage
        // while workloads run.
        {
            let stop = Arc::clone(&cluster.maintenance_stop);
            let sets: Vec<Arc<PartitionSet>> = cluster.sets.clone();
            let handle = std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    for set in &sets {
                        s2_obs::counter!("cluster.heartbeat.ticks").inc();
                        if set.max_lag() > 0 {
                            // A replica hasn't caught up to the master's log
                            // end at tick time: the health probe's
                            // lag-detected signal.
                            s2_obs::counter!("cluster.heartbeat.lagging").inc();
                        }
                        let _ = set.master().maintenance_pass();
                        // Re-queue uploads whose per-key retry budget ran
                        // out (they stayed pinned locally in the meantime).
                        if let Some(bf) = &set.blob_files {
                            let n = bf.resubmit_failed();
                            if n > 0 {
                                s2_obs::counter!("cluster.maintenance.upload_resubmits")
                                    .add(n as u64);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            });
            *cluster.maintenance_thread.lock() = Some(handle);
        }
        Ok(cluster)
    }

    /// The shared blob-store health view, when separated storage is on.
    pub fn blob_health(&self) -> Option<&Arc<BlobHealth>> {
        self.blob_health.as_ref()
    }

    /// The configured blob store, when separated storage is on (workspace
    /// provisioning restores from it).
    pub fn blob_store(&self) -> Option<&Arc<dyn ObjectStore>> {
        self.config.blob.as_ref()
    }

    /// Partition count.
    pub fn partition_count(&self) -> usize {
        self.sets.len()
    }

    /// Toggle the group-commit pipeline on every master (tests, benches).
    pub fn set_group_commit(&self, on: bool) {
        for set in &self.sets {
            set.master().set_group_commit(on);
        }
    }

    /// Set every master's group-commit flush window: how long a leader waits
    /// for its batch to grow before appending (0 = append immediately).
    pub fn set_group_flush_window_us(&self, us: u64) {
        for set in &self.sets {
            set.master().set_group_flush_window_us(us);
        }
    }

    /// Partition set by ordinal.
    pub fn set(&self, pid: usize) -> &Arc<PartitionSet> {
        &self.sets[pid]
    }

    /// All partition sets.
    pub fn sets(&self) -> &[Arc<PartitionSet>] {
        &self.sets
    }

    /// Create a table on every partition (DDL broadcast).
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        options: TableOptions,
    ) -> Result<()> {
        let name = name.into();
        let mut id = None;
        for set in &self.sets {
            let tid = set.master().create_table(name.clone(), schema.clone(), options.clone())?;
            match id {
                None => id = Some(tid),
                Some(prev) => {
                    if prev != tid {
                        return Err(Error::Internal(format!(
                            "table id divergence across partitions: {prev} vs {tid}"
                        )));
                    }
                }
            }
        }
        let unique_cols = options.indexes.iter().find(|d| d.unique).map(|d| d.columns.clone());
        self.tables.write().insert(
            name,
            TableMeta {
                id: id.expect("at least one partition"),
                shard_key: options.shard_key.clone(),
                unique_cols,
            },
        );
        Ok(())
    }

    fn table_meta<R>(&self, table: &str, f: impl FnOnce(&TableMeta) -> R) -> Result<R> {
        let tables = self.tables.read();
        let meta = tables.get(table).ok_or_else(|| Error::NotFound(format!("table {table:?}")))?;
        Ok(f(meta))
    }

    /// The partition that owns `row` of `table` (hash of the shard key;
    /// tables without a shard key hash the whole row).
    pub fn route_row(&self, table: &str, row: &Row) -> Result<usize> {
        self.table_meta(table, |m| {
            let h = if m.shard_key.is_empty() {
                s2_common::hash::hash_values(row.values().iter())
            } else {
                row.key_hash(&m.shard_key)
            };
            (h % self.sets.len() as u64) as usize
        })
    }

    /// The partition that owns a unique key, when the shard key is derivable
    /// from it (shard key ⊆ unique key).
    pub fn route_unique(&self, table: &str, key: &[Value]) -> Result<Option<usize>> {
        self.table_meta(table, |m| {
            let unique = m.unique_cols.as_ref()?;
            if m.shard_key.is_empty() {
                return None;
            }
            // Map table ordinals of the shard key to positions in the key.
            let mut shard_vals = Vec::with_capacity(m.shard_key.len());
            for sc in &m.shard_key {
                let pos = unique.iter().position(|c| c == sc)?;
                shard_vals.push(&key[pos]);
            }
            let h = s2_common::hash::hash_values(shard_vals);
            Some((h % self.sets.len() as u64) as usize)
        })
    }

    /// Begin a distributed transaction.
    pub fn begin(self: &Arc<Self>) -> ClusterTxn {
        ClusterTxn { cluster: Arc::clone(self), txns: HashMap::new() }
    }

    /// A consistent-per-partition query context over every master.
    pub fn context(&self) -> Result<UnionContext> {
        let mut ctx = UnionContext::new();
        // One snapshot per partition, shared across tables. Captured before
        // the tables map is locked: resolving a master takes the topology
        // lock, which ranks below the tables map.
        let snaps: Vec<_> = self.sets.iter().map(|s| s.master().read_snapshot()).collect();
        let tables = self.tables.read();
        for (name, meta) in tables.iter() {
            let mut per_table = Vec::with_capacity(snaps.len());
            for snap in &snaps {
                per_table.push(Arc::clone(snap.table(meta.id)?));
            }
            ctx.add_table(name.clone(), per_table);
        }
        Ok(ctx)
    }

    /// Execute a read query via scatter/gather.
    pub fn execute(&self, plan: &Plan, opts: &ExecOptions) -> Result<Batch> {
        let mut stats = ExecStats::default();
        self.execute_with_stats(plan, opts, &mut stats)
    }

    /// Execute, accumulating stats.
    pub fn execute_with_stats(
        &self,
        plan: &Plan,
        opts: &ExecOptions,
        stats: &mut ExecStats,
    ) -> Result<Batch> {
        let ctx = self.context()?;
        execute_with_stats(plan, &ctx, opts, stats)
    }

    /// Run flush/merge/vacuum across every partition. Partitions are
    /// independent (each pass runs under its own commit lock), so the passes
    /// fan out on the shared scan pool.
    pub fn maintenance(&self) -> Result<()> {
        let masters: Vec<Arc<Partition>> = self.sets.iter().map(|s| s.master()).collect();
        let threads = s2_exec::effective_threads(0);
        for r in
            s2_exec::ScanPool::global().run(threads, masters, |master| master.maintenance_pass())
        {
            r?;
        }
        Ok(())
    }

    /// Force-flush a table everywhere and reclaim the rowstore tombstones
    /// the flush leaves behind (benchmark / bulk-load setup). Fans out over
    /// partitions like [`Cluster::maintenance`].
    pub fn flush_table(&self, table: &str) -> Result<()> {
        let id = self.table_meta(table, |m| m.id)?;
        let masters: Vec<Arc<Partition>> = self.sets.iter().map(|s| s.master()).collect();
        let threads = s2_exec::effective_threads(0);
        for r in s2_exec::ScanPool::global().run(threads, masters, move |master| -> Result<()> {
            master.flush_table(id, true)?;
            while master.merge_table(id)? {}
            master.vacuum()?;
            Ok(())
        }) {
            r?;
        }
        Ok(())
    }

    /// Total live rows of a table across partitions.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let id = self.table_meta(table, |m| m.id)?;
        let mut n = 0;
        for set in &self.sets {
            let snap = set.master().read_snapshot();
            n += snap.table(id)?.live_row_count();
        }
        Ok(n)
    }

    /// Push every partition's log and a fresh snapshot to blob storage and
    /// wait for data-file uploads (used before PITR/workspace provisioning
    /// in tests and benches).
    pub fn sync_to_blob(&self) -> Result<()> {
        let Some(blob) = &self.config.blob else {
            return Err(Error::InvalidArgument("cluster has no blob store".into()));
        };
        for set in &self.sets {
            let master = set.master();
            // Everything appended is safe here: force a full ship.
            let cfg = StorageConfig {
                snapshot_interval_bytes: 0,
                require_replicated: false,
                ..self.config.storage.clone()
            };
            let marker = Arc::new(std::sync::atomic::AtomicU64::new(u64::MAX));
            StorageService::pass(&master, blob, &cfg, &marker)?;
            if let Some(bf) = &set.blob_files {
                bf.drain_uploads();
            }
        }
        Ok(())
    }

    /// Simulate a master failure on partition `pid`: promote the first HA
    /// replica (paper §2: "replica partitions ... will be promoted to master
    /// and take over running queries"). Remaining replicas re-subscribe to
    /// the new master. Returns an error when no replica exists.
    pub fn fail_master(&self, pid: usize) -> Result<()> {
        let set = &self.sets[pid];
        let mut replicas = set.replicas.lock();
        if replicas.is_empty() {
            return Err(Error::InvalidArgument(format!(
                "partition {pid} has no HA replica to promote"
            )));
        }
        // Stop the storage service attached to the dying master.
        *set.storage_service.lock() = None;
        let mut promoted = replicas.remove(0);
        promoted.stop();
        let new_master = Arc::clone(&promoted.partition);
        drop(promoted);
        // Re-point surviving replicas at the new master from their positions.
        let survivors: Vec<Replica> = replicas.drain(..).collect();
        for mut old in survivors {
            old.stop();
            let from = old.applied_lp();
            let part = Arc::clone(&old.partition);
            drop(old);
            replicas.push(Replica::start(&new_master, part, from, true)?);
        }
        // The new master has no replicas yet if none survived; commits in
        // sync mode would stall, so spin up a fresh one.
        if replicas.is_empty() && self.config.ha_replicas > 0 {
            let rp = empty_replica_partition(&set.name, set.file_store.clone(), 0);
            replicas.push(Replica::start(&new_master, rp, 0, true)?);
        }
        // Restart blob shipping from the new master.
        if let Some(blob) = &self.config.blob {
            let mut cfg = self.config.storage.clone();
            cfg.require_replicated = self.config.sync_replication && self.config.ha_replicas > 0;
            // The new master's uploaded watermark starts at 0; advance it to
            // what the old master already shipped so chunks aren't re-uploaded
            // out of order. Re-uploading is idempotent, so a simple approach:
            // mark everything known-uploaded in blob as uploaded.
            let shipped = crate::pitr::max_uploaded_lp(blob, &set.name)?;
            new_master.log.mark_uploaded(shipped);
            let health = self.blob_health.as_ref().map(Arc::clone);
            let store = match &health {
                Some(h) => Arc::new(ResilientStore::new(
                    Arc::clone(blob),
                    Arc::clone(h),
                    RetryPolicy::blob_default(),
                )) as Arc<dyn ObjectStore>,
                None => Arc::clone(blob),
            };
            *set.storage_service.lock() = Some(StorageService::start_with_health(
                Arc::clone(&new_master),
                store,
                cfg,
                health,
            ));
        }
        *set.master.write() = new_master;
        s2_obs::counter!("cluster.failover.promotions").inc();
        s2_obs::event(
            "cluster.failover",
            format!("partition {pid}: master failed, HA replica promoted"),
        );
        Ok(())
    }

    /// Whether commits should wait for replication.
    fn sync_commits(&self) -> bool {
        self.config.sync_replication && self.config.ha_replicas > 0
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.maintenance_stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.maintenance_thread.lock().take() {
            let _ = h.join();
        }
    }
}

/// A transaction that may span partitions. Each involved partition runs a
/// local [`Txn`]; commit applies them in partition order and, in sync mode,
/// waits for each partition's replication ack (the paper's durability rule:
/// replicated to at least one replica "for every master partition involved
/// in a transaction").
pub struct ClusterTxn {
    cluster: Arc<Cluster>,
    txns: HashMap<usize, Txn>,
}

impl ClusterTxn {
    fn txn_for(&mut self, pid: usize) -> &mut Txn {
        let cluster = &self.cluster;
        self.txns.entry(pid).or_insert_with(|| cluster.sets[pid].master().begin())
    }

    fn table_id(&self, table: &str) -> Result<TableId> {
        self.cluster.table_meta(table, |m| m.id)
    }

    /// Insert a row (routed by shard key).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        let pid = self.cluster.route_row(table, &row)?;
        let id = self.table_id(table)?;
        self.txn_for(pid).insert(id, row)
    }

    /// Insert a batch with duplicate handling; rows are routed individually.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: Vec<Row>,
        policy: DuplicatePolicy,
    ) -> Result<InsertReport> {
        let id = self.table_id(table)?;
        let mut by_pid: HashMap<usize, Vec<Row>> = HashMap::new();
        for row in rows {
            by_pid.entry(self.cluster.route_row(table, &row)?).or_default().push(row);
        }
        let mut total = InsertReport::default();
        for (pid, rows) in by_pid {
            let r = self.txn_for(pid).insert_batch(id, rows, policy)?;
            total.inserted += r.inserted;
            total.skipped += r.skipped;
            total.replaced += r.replaced;
            total.updated += r.updated;
        }
        Ok(total)
    }

    /// Point read by unique key.
    pub fn get_unique(&mut self, table: &str, key: &[Value]) -> Result<Option<Row>> {
        let id = self.table_id(table)?;
        match self.cluster.route_unique(table, key)? {
            Some(pid) => self.txn_for(pid).get_unique(id, key),
            None => {
                // Shard key not derivable: try every partition.
                for pid in 0..self.cluster.partition_count() {
                    if let Some(row) = self.txn_for(pid).get_unique(id, key)? {
                        return Ok(Some(row));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Read-modify-write by unique key.
    pub fn update_unique_with(
        &mut self,
        table: &str,
        key: &[Value],
        f: impl FnOnce(&Row) -> Row,
    ) -> Result<bool> {
        let id = self.table_id(table)?;
        match self.cluster.route_unique(table, key)? {
            Some(pid) => self.txn_for(pid).update_unique_with(id, key, f),
            None => {
                let mut f = Some(f);
                for pid in 0..self.cluster.partition_count() {
                    let txn = self.txn_for(pid);
                    if txn.get_unique(id, key)?.is_some() {
                        let g = f.take().expect("applied once");
                        return txn.update_unique_with(id, key, g);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Delete by unique key.
    pub fn delete_unique(&mut self, table: &str, key: &[Value]) -> Result<bool> {
        let id = self.table_id(table)?;
        match self.cluster.route_unique(table, key)? {
            Some(pid) => self.txn_for(pid).delete_unique(id, key),
            None => {
                for pid in 0..self.cluster.partition_count() {
                    if self.txn_for(pid).delete_unique(id, key)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Commit every involved partition. In sync-replication mode, waits for
    /// each partition's ack before returning. Returns the max commit
    /// timestamp observed.
    pub fn commit(self) -> Result<Timestamp> {
        let cluster = self.cluster;
        let mut max_ts = 0;
        let mut acks: Vec<(usize, LogPosition)> = Vec::new();
        let mut pids: Vec<usize> = self.txns.keys().copied().collect();
        pids.sort_unstable();
        let mut txns = self.txns;
        for pid in pids {
            let txn = txns.remove(&pid).expect("key from map");
            let (ts, end_lp) = txn.commit()?;
            max_ts = max_ts.max(ts);
            acks.push((pid, end_lp));
        }
        if cluster.sync_commits() {
            // With group commit on, `lp` is the batch end: every commit in
            // the batch waits on the same position, so the replica's single
            // ack of the batch releases all of them at once — one condvar
            // wake per batch, not one spin loop per commit — and the wait
            // overlaps the next batch's append on the commit path.
            for (pid, lp) in acks {
                let timer = s2_obs::histogram!("cluster.replication.ack_latency_us").start_timer();
                if !cluster.sets[pid].wait_replicated(lp, Duration::from_secs(10)) {
                    timer.cancel();
                    s2_obs::counter!("cluster.replication.ack_timeouts").inc();
                    s2_obs::event(
                        "cluster.ack_timeout",
                        format!("partition {pid} replication ack timed out at lp {lp}"),
                    );
                    return Err(Error::Unavailable(format!(
                        "partition {pid} replication ack timed out"
                    )));
                }
                timer.stop();
            }
        }
        Ok(max_ts)
    }

    /// Roll back every involved partition.
    pub fn rollback(self) {
        for (_, txn) in self.txns {
            txn.rollback();
        }
    }
}
