//! Cluster layer: hash-partitioned databases, master/replica replication
//! with commit acknowledgements, failover, separated storage (async blob
//! shipping of data files, log chunks and snapshots), point-in-time restore
//! and read-only workspaces (paper §2 and §3).

pub mod cluster;
pub mod manager;
pub mod pitr;
pub mod replica;
pub mod storage;
pub mod workspace;

pub use cluster::{Cluster, ClusterConfig, ClusterTxn, PartitionSet};
pub use manager::{WorkspaceManager, WorkspaceManagerConfig};
pub use pitr::{find_snapshot, load_log, max_uploaded_lp, restore_from_blob};
pub use replica::{empty_replica_partition, Replica, StreamApplier};
pub use storage::{log_chunk_key, BlobBackedFileStore, StorageConfig, StorageService};
pub use workspace::Workspace;
