//! Separated storage orchestration (paper §3, §3.1): the blob-backed data
//! file store (local cache in front of the object store, asynchronous
//! uploads) and the per-partition storage service that ships sealed log
//! chunks and periodic snapshots to blob storage — all off the commit path.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use s2_blob::{
    BlobHealth, FileCache, ObjectStore, ResilientStore, StoreHealth, Uploader, UploaderConfig,
};
use s2_common::sync::{rank, RwLock};
use s2_common::{DeadlineBudget, Error, LogPosition, Result, RetryPolicy};
use s2_core::{DataFileStore, Partition};
use s2_wal::Snapshot;

/// Data files backed by blob storage with a local cache:
/// - writes land locally and upload asynchronously ("uploaded ... as quickly
///   as possible after being committed");
/// - files not yet uploaded are pinned *in the cache itself* (they are the
///   only copy) — eviction structurally cannot touch them until the upload
///   callback unpins;
/// - reads hit the cache (pinned entries included), then the blob store
///   (cold data pulled on demand, paper §3.1) under a deadline budget: a
///   replica can observe a log record slightly before the file upload lands
///   (bounded NotFound retry), and an open circuit breaker fails the read
///   fast with [`Error::Unavailable`] instead of hanging a query.
pub struct BlobBackedFileStore {
    /// Blob reads go through the breaker + bounded-retry wrapper.
    blob: ResilientStore,
    cache: Arc<FileCache>,
    uploader: Arc<Uploader>,
    health: Arc<BlobHealth>,
    uploaded: Arc<RwLock<HashSet<String>>>,
    /// Files whose upload exhausted its per-key retry budget or was
    /// deferred because the backlog was full (still pinned locally);
    /// [`BlobBackedFileStore::resubmit_failed`] re-queues them.
    failed: Arc<RwLock<HashSet<String>>>,
    read_budget: Duration,
}

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl BlobBackedFileStore {
    /// Create a store with `cache_bytes` of local cache over `blob` and a
    /// private health tracker (tests, standalone use). Cluster wiring shares
    /// one health across every layer via
    /// [`BlobBackedFileStore::with_health`].
    pub fn new(blob: Arc<dyn ObjectStore>, cache_bytes: usize) -> Arc<BlobBackedFileStore> {
        let n = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        BlobBackedFileStore::with_health(
            blob,
            cache_bytes,
            BlobHealth::new(format!("filestore#{n}")),
        )
    }

    /// Create a store whose uploader and cold reads report into (and are
    /// gated by) a shared [`BlobHealth`].
    pub fn with_health(
        blob: Arc<dyn ObjectStore>,
        cache_bytes: usize,
        health: Arc<BlobHealth>,
    ) -> Arc<BlobBackedFileStore> {
        BlobBackedFileStore::with_tuning(
            blob,
            cache_bytes,
            UploaderConfig::default(),
            health,
            Duration::from_secs(2),
        )
    }

    /// Fully-tuned constructor: uploader shape and cold-read deadline budget
    /// are caller-chosen (the sim harness shrinks both so outage drills run
    /// in milliseconds, not wall-clock seconds).
    pub fn with_tuning(
        blob: Arc<dyn ObjectStore>,
        cache_bytes: usize,
        uploader_cfg: UploaderConfig,
        health: Arc<BlobHealth>,
        read_budget: Duration,
    ) -> Arc<BlobBackedFileStore> {
        let uploader =
            Arc::new(Uploader::with_config(Arc::clone(&blob), uploader_cfg, Arc::clone(&health)));
        Arc::new(BlobBackedFileStore {
            blob: ResilientStore::new(blob, Arc::clone(&health), RetryPolicy::blob_default()),
            cache: Arc::new(FileCache::new(cache_bytes)),
            uploader,
            health,
            uploaded: Arc::new(RwLock::new(&rank::CLUSTER_STORAGE_SETS, HashSet::new())),
            failed: Arc::new(RwLock::new(&rank::CLUSTER_STORAGE_SETS, HashSet::new())),
            read_budget,
        })
    }

    /// The shared health view gating this store's blob traffic.
    pub fn health(&self) -> &Arc<BlobHealth> {
        &self.health
    }

    /// Bytes pinned locally awaiting upload.
    pub fn pinned_bytes(&self) -> usize {
        self.cache.pinned_bytes()
    }

    /// (cache hits, cache misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Block until all queued uploads finish (tests / clean shutdown).
    /// During an outage this waits for recovery: parked uploads count.
    pub fn drain_uploads(&self) {
        self.uploader.drain();
    }

    /// Number of files known to be fully uploaded.
    pub fn uploaded_count(&self) -> usize {
        self.uploaded.read().len()
    }

    /// Keys known to be fully uploaded (test / convergence-audit aid).
    pub fn uploaded_keys(&self) -> Vec<String> {
        self.uploaded.read().iter().cloned().collect()
    }

    /// True while the upload backlog is at capacity — callers shed or delay
    /// optional flushes.
    pub fn backlogged(&self) -> bool {
        self.uploader.backlogged()
    }

    /// Uploads enqueued but not yet landed.
    pub fn pending_uploads(&self) -> u64 {
        self.uploader.pending()
    }

    /// Re-queue files whose upload previously exhausted its retry budget or
    /// was deferred by a full backlog (maintenance path). Returns how many
    /// were resubmitted.
    pub fn resubmit_failed(&self) -> usize {
        let keys: Vec<String> = {
            let mut failed = self.failed.write();
            let keys = failed.iter().cloned().collect();
            failed.clear();
            keys
        };
        let mut n = 0;
        for key in keys {
            // Peek, not get: a maintenance sweep must not distort recency.
            if let Some(bytes) = self.cache.peek(&key) {
                self.submit(key, bytes);
                n += 1;
            } else {
                // The local copy is gone — should be impossible while the
                // entry is pinned. Keep the key visible instead of silently
                // dropping it from the failed set; the event flags the
                // invariant breach for the operator.
                s2_obs::event("blob.upload_lost_local_copy", key.clone());
                self.failed.write().insert(key);
            }
        }
        n
    }

    /// Files awaiting a maintenance resubmission (budget-exhausted or
    /// deferred by a full backlog). Zero once the store has converged.
    pub fn failed_count(&self) -> usize {
        self.failed.read().len()
    }

    /// Hand one pinned file to the uploader; the callback unpins on success
    /// and records budget-exhausted failures for resubmission.
    ///
    /// Never blocks: `write_file` sits on the commit path, which must keep
    /// acking during a sustained outage even with the upload backlog at
    /// capacity. A full backlog defers the key to the `failed` set (the
    /// file stays pinned — durability is local) for the maintenance
    /// resubmit sweep to ship once slots free up.
    fn submit(&self, key: String, bytes: Arc<Vec<u8>>) {
        let uploaded = Arc::clone(&self.uploaded);
        let failed = Arc::clone(&self.failed);
        let cache = Arc::clone(&self.cache);
        let cb_key = key.clone();
        let res = self.uploader.try_enqueue(key.clone(), bytes, move |r| match r {
            Ok(()) => {
                uploaded.write().insert(cb_key.clone());
                failed.write().remove(&cb_key);
                cache.unpin(&cb_key);
            }
            Err(_) => {
                // Still pinned locally: durability preserved. Remembered so a
                // maintenance pass can resubmit once the store behaves.
                failed.write().insert(cb_key.clone());
            }
        });
        match res {
            Ok(true) => {}
            Ok(false) => {
                // Backlog full (sustained outage with ongoing writes): defer
                // rather than block the committer until recovery.
                self.failed.write().insert(key);
            }
            Err(e) => {
                // Uploader already shut down (teardown race): the file stays
                // pinned; record it so a restart's resubmission sweep ships it.
                self.failed.write().insert(key.clone());
                s2_obs::event("blob.upload_enqueue_failed", format!("{key}: {e}"));
            }
        }
    }
}

impl DataFileStore for BlobBackedFileStore {
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        // Local first: the commit path never waits on the blob store. The
        // pin makes "never evict before upload" structural — there is no
        // separate side table to fall out of sync with the cache.
        self.cache.insert_pinned(name, Arc::clone(&bytes));
        self.submit(name.to_string(), bytes);
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        let budget = DeadlineBudget::new(self.read_budget);
        loop {
            match self.cache.get_or_fetch(name, || self.blob.get(name)) {
                Ok(b) => return Ok(b),
                Err(Error::NotFound(_)) if !budget.expired() => {
                    // A replica can observe the log record referencing this
                    // file slightly before the async upload lands; retry
                    // inside the budget (the cache re-check on the next loop
                    // also catches a concurrent local write).
                    budget.sleep(Duration::from_millis(5));
                }
                // Unavailable surfaces here once the breaker/bounded retries
                // inside `ResilientStore` give up: fail the query fast
                // rather than hanging it for the whole outage.
                Err(e) => return Err(e),
            }
        }
    }

    fn delete_file(&self, name: &str) -> Result<()> {
        // Local copies go; the blob object is retained as history — the blob
        // store "acts as a continuous backup" (paper §3.2), so point-in-time
        // restores to before the deleting merge keep working. A retention
        // policy (not modeled) would garbage-collect old objects.
        self.cache.remove(name);
        self.failed.write().remove(name);
        Ok(())
    }
}

/// Canonical object key for a sealed log chunk.
pub fn log_chunk_key(partition: &str, start_lp: LogPosition) -> String {
    format!("{partition}/log/{start_lp:020}")
}

/// Parse the start position from a log-chunk key.
pub fn lp_from_chunk_key(key: &str) -> Option<LogPosition> {
    key.rsplit('/').next()?.parse().ok()
}

/// Tuning for the storage service.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Maximum sealed chunk size.
    pub chunk_bytes: usize,
    /// Take a snapshot after this much new log.
    pub snapshot_interval_bytes: u64,
    /// Service tick.
    pub tick: Duration,
    /// Whether commit durability requires replica acks — if true, only
    /// replicated positions may upload (paper §3.1).
    pub require_replicated: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            chunk_bytes: 256 * 1024,
            snapshot_interval_bytes: 4 * 1024 * 1024,
            tick: Duration::from_millis(20),
            require_replicated: false,
        }
    }
}

/// Background service shipping a partition's log chunks and snapshots to
/// blob storage.
pub struct StorageService {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    last_snapshot_lp: Arc<AtomicU64>,
}

impl StorageService {
    /// Start the service for `partition`.
    pub fn start(
        partition: Arc<Partition>,
        blob: Arc<dyn ObjectStore>,
        config: StorageConfig,
    ) -> StorageService {
        StorageService::start_with_health(partition, blob, config, None)
    }

    /// Start the service with a shared health view: while the breaker
    /// reports an outage the shipping loop pauses (no chunk/snapshot puts
    /// hammering a dead store, no spurious pass errors) and resumes on
    /// recovery — both observable as `storage.pause` / `storage.resume`
    /// events. Callers that pass a health should also wrap `blob` in a
    /// [`ResilientStore`] reporting into it, so pass failures feed the
    /// breaker that pauses the loop.
    pub fn start_with_health(
        partition: Arc<Partition>,
        blob: Arc<dyn ObjectStore>,
        config: StorageConfig,
        health: Option<Arc<BlobHealth>>,
    ) -> StorageService {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let last_snapshot_lp = Arc::new(AtomicU64::new(0));
        let last_snap = Arc::clone(&last_snapshot_lp);
        let thread = std::thread::spawn(move || {
            let mut paused = false;
            while !stop2.load(Ordering::Acquire) {
                let outage = health.as_ref().is_some_and(|h| h.health() == StoreHealth::Outage);
                if outage != paused {
                    paused = outage;
                    s2_obs::gauge!("storage.shipping_paused").set(paused as i64);
                    s2_obs::event(
                        if paused { "storage.pause" } else { "storage.resume" },
                        format!(
                            "{}: blob outage {}",
                            partition.name,
                            if paused { "began" } else { "ended" }
                        ),
                    );
                }
                if !paused {
                    let _ = Self::pass(&partition, &blob, &config, &last_snap);
                }
                std::thread::sleep(config.tick);
            }
            // Final drain so shutdown leaves a complete blob image (best
            // effort during an outage — the put fails fast, stays pending).
            let _ = Self::pass(&partition, &blob, &config, &last_snap);
        });
        StorageService { stop, thread: Some(thread), last_snapshot_lp }
    }

    /// One shipping pass (also used directly by tests/benches to force a
    /// deterministic full upload).
    pub fn pass(
        partition: &Arc<Partition>,
        blob: &Arc<dyn ObjectStore>,
        config: &StorageConfig,
        last_snapshot_lp: &Arc<AtomicU64>,
    ) -> Result<()> {
        // Seal and upload log chunks below the safe position. Only positions
        // that are locally durable — and replicated, when acks are required —
        // may be uploaded (paper §3.1: "only positions below fully durable
        // and replicated may be uploaded"). Uploading past the durable point
        // would let a crash leave blob history ahead of the surviving log,
        // and the restarted timeline would diverge from the uploaded chunks.
        let durable = partition.log.sync()?;
        let safe_lp = if config.require_replicated {
            durable.min(partition.log.replicated_lp())
        } else {
            durable
        };
        while let Some(chunk) = partition.log.seal_chunk(safe_lp, config.chunk_bytes) {
            let key = log_chunk_key(&partition.name, chunk.start_lp);
            blob.put(&key, Arc::clone(&chunk.bytes))?;
            partition.log.mark_uploaded(chunk.end_lp());
        }
        // Snapshot when enough new log accumulated. The vacuum horizon
        // (`mark_snapshot_durable`) advances only after the snapshot is in
        // blob storage and the log is synced past its position — never
        // before, or a failed put would let vacuum delete files recovery
        // still needs.
        let upto = partition.log.uploaded_lp();
        let since = upto.saturating_sub(last_snapshot_lp.load(Ordering::Acquire));
        if since >= config.snapshot_interval_bytes {
            let snap = partition.write_snapshot()?;
            let durable = partition.log.sync()?;
            // The safe-position rule applies to snapshots exactly as it does
            // to chunks: a snapshot is taken at the current log end, which may
            // not be replicated yet. Uploading it early would let a failover
            // to a replica that applied less leave blob history ahead of the
            // surviving timeline. Skip for now; a later pass retries once
            // replication catches up.
            let snap_safe = if config.require_replicated {
                durable.min(partition.log.replicated_lp())
            } else {
                durable
            };
            if snap.lp <= snap_safe {
                s2_common::fault::crash_point("storage.snapshot.put");
                let key = Snapshot::object_key(&partition.name, snap.lp);
                blob.put(&key, Arc::new(snap.encode()))?;
                partition.mark_snapshot_durable(snap.lp);
                last_snapshot_lp.store(snap.lp, Ordering::Release);
            }
        }
        Ok(())
    }

    /// Log position of the last uploaded snapshot.
    pub fn last_snapshot_lp(&self) -> LogPosition {
        self.last_snapshot_lp.load(Ordering::Acquire)
    }

    /// Stop the service (drains one final pass).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StorageService {
    fn drop(&mut self) {
        self.stop();
    }
}
