//! Separated storage orchestration (paper §3, §3.1): the blob-backed data
//! file store (local cache in front of the object store, asynchronous
//! uploads) and the per-partition storage service that ships sealed log
//! chunks and periodic snapshots to blob storage — all off the commit path.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::RwLock;
use s2_blob::{FileCache, ObjectStore, Uploader};
use s2_common::{Error, LogPosition, Result};
use s2_core::{DataFileStore, Partition};
use s2_wal::Snapshot;

/// Data files backed by blob storage with a local cache:
/// - writes land locally and upload asynchronously ("uploaded ... as quickly
///   as possible after being committed");
/// - files not yet uploaded are pinned locally (they are the only copy);
/// - reads hit the cache, then the pinned set, then the blob store (cold
///   data pulled on demand, paper §3.1), with a retry loop because a
///   replica can observe a log record slightly before the file upload lands.
pub struct BlobBackedFileStore {
    blob: Arc<dyn ObjectStore>,
    cache: FileCache,
    uploader: Arc<Uploader>,
    /// Files whose only copy is local (upload not yet complete). Shared with
    /// uploader callbacks, which unpin on success.
    pinned: Arc<RwLock<std::collections::HashMap<String, Arc<Vec<u8>>>>>,
    uploaded: Arc<RwLock<HashSet<String>>>,
    read_retry: Duration,
}

impl BlobBackedFileStore {
    /// Create a store with `cache_bytes` of local cache over `blob`.
    pub fn new(blob: Arc<dyn ObjectStore>, cache_bytes: usize) -> Arc<BlobBackedFileStore> {
        let uploader = Arc::new(Uploader::new(Arc::clone(&blob), 2));
        Arc::new(BlobBackedFileStore {
            blob,
            cache: FileCache::new(cache_bytes),
            uploader,
            pinned: Arc::new(RwLock::new(std::collections::HashMap::new())),
            uploaded: Arc::new(RwLock::new(HashSet::new())),
            read_retry: Duration::from_secs(5),
        })
    }

    /// Bytes pinned locally awaiting upload.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned.read().values().map(|b| b.len()).sum()
    }

    /// (cache hits, cache misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Block until all queued uploads finish (tests / clean shutdown).
    pub fn drain_uploads(&self) {
        self.uploader.drain();
    }

    /// Number of files known to be fully uploaded.
    pub fn uploaded_count(&self) -> usize {
        self.uploaded.read().len()
    }
}

impl DataFileStore for BlobBackedFileStore {
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        // Local first: the commit path never waits on the blob store.
        self.pinned.write().insert(name.to_string(), Arc::clone(&bytes));
        self.cache.insert(name, Arc::clone(&bytes));
        let key = name.to_string();
        let uploaded = Arc::clone(&self.uploaded);
        let pinned = Arc::clone(&self.pinned);
        self.uploader.enqueue(key.clone(), bytes, move |r| {
            if r.is_ok() {
                uploaded.write().insert(key.clone());
                pinned.write().remove(&key);
            }
            // On failure the file stays pinned locally; durability preserved,
            // a later write or maintenance retry can re-enqueue.
        });
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        if let Some(b) = self.pinned.read().get(name) {
            return Ok(Arc::clone(b));
        }
        let deadline = std::time::Instant::now() + self.read_retry;
        loop {
            match self.cache.get_or_fetch(name, || self.blob.get(name)) {
                Ok(b) => return Ok(b),
                Err(Error::NotFound(_)) if std::time::Instant::now() < deadline => {
                    // A replica can observe the log record referencing this
                    // file slightly before the async upload lands; retry.
                    if let Some(b) = self.pinned.read().get(name) {
                        return Ok(Arc::clone(b));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn delete_file(&self, name: &str) -> Result<()> {
        // Local copies go; the blob object is retained as history — the blob
        // store "acts as a continuous backup" (paper §3.2), so point-in-time
        // restores to before the deleting merge keep working. A retention
        // policy (not modeled) would garbage-collect old objects.
        self.pinned.write().remove(name);
        self.cache.remove(name);
        Ok(())
    }
}

/// Canonical object key for a sealed log chunk.
pub fn log_chunk_key(partition: &str, start_lp: LogPosition) -> String {
    format!("{partition}/log/{start_lp:020}")
}

/// Parse the start position from a log-chunk key.
pub fn lp_from_chunk_key(key: &str) -> Option<LogPosition> {
    key.rsplit('/').next()?.parse().ok()
}

/// Tuning for the storage service.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Maximum sealed chunk size.
    pub chunk_bytes: usize,
    /// Take a snapshot after this much new log.
    pub snapshot_interval_bytes: u64,
    /// Service tick.
    pub tick: Duration,
    /// Whether commit durability requires replica acks — if true, only
    /// replicated positions may upload (paper §3.1).
    pub require_replicated: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            chunk_bytes: 256 * 1024,
            snapshot_interval_bytes: 4 * 1024 * 1024,
            tick: Duration::from_millis(20),
            require_replicated: false,
        }
    }
}

/// Background service shipping a partition's log chunks and snapshots to
/// blob storage.
pub struct StorageService {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    last_snapshot_lp: Arc<AtomicU64>,
}

impl StorageService {
    /// Start the service for `partition`.
    pub fn start(
        partition: Arc<Partition>,
        blob: Arc<dyn ObjectStore>,
        config: StorageConfig,
    ) -> StorageService {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let last_snapshot_lp = Arc::new(AtomicU64::new(0));
        let last_snap = Arc::clone(&last_snapshot_lp);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                let _ = Self::pass(&partition, &blob, &config, &last_snap);
                std::thread::sleep(config.tick);
            }
            // Final drain so shutdown leaves a complete blob image.
            let _ = Self::pass(&partition, &blob, &config, &last_snap);
        });
        StorageService { stop, thread: Some(thread), last_snapshot_lp }
    }

    /// One shipping pass (also used directly by tests/benches to force a
    /// deterministic full upload).
    pub fn pass(
        partition: &Arc<Partition>,
        blob: &Arc<dyn ObjectStore>,
        config: &StorageConfig,
        last_snapshot_lp: &Arc<AtomicU64>,
    ) -> Result<()> {
        // Seal and upload log chunks below the safe position. Only positions
        // that are locally durable — and replicated, when acks are required —
        // may be uploaded (paper §3.1: "only positions below fully durable
        // and replicated may be uploaded"). Uploading past the durable point
        // would let a crash leave blob history ahead of the surviving log,
        // and the restarted timeline would diverge from the uploaded chunks.
        let durable = partition.log.sync()?;
        let safe_lp = if config.require_replicated {
            durable.min(partition.log.replicated_lp())
        } else {
            durable
        };
        while let Some(chunk) = partition.log.seal_chunk(safe_lp, config.chunk_bytes) {
            let key = log_chunk_key(&partition.name, chunk.start_lp);
            blob.put(&key, Arc::clone(&chunk.bytes))?;
            partition.log.mark_uploaded(chunk.end_lp());
        }
        // Snapshot when enough new log accumulated. The vacuum horizon
        // (`mark_snapshot_durable`) advances only after the snapshot is in
        // blob storage and the log is synced past its position — never
        // before, or a failed put would let vacuum delete files recovery
        // still needs.
        let upto = partition.log.uploaded_lp();
        let since = upto.saturating_sub(last_snapshot_lp.load(Ordering::Acquire));
        if since >= config.snapshot_interval_bytes {
            let snap = partition.write_snapshot()?;
            let durable = partition.log.sync()?;
            // The safe-position rule applies to snapshots exactly as it does
            // to chunks: a snapshot is taken at the current log end, which may
            // not be replicated yet. Uploading it early would let a failover
            // to a replica that applied less leave blob history ahead of the
            // surviving timeline. Skip for now; a later pass retries once
            // replication catches up.
            let snap_safe = if config.require_replicated {
                durable.min(partition.log.replicated_lp())
            } else {
                durable
            };
            if snap.lp <= snap_safe {
                s2_common::fault::crash_point("storage.snapshot.put");
                let key = Snapshot::object_key(&partition.name, snap.lp);
                blob.put(&key, Arc::new(snap.encode()))?;
                partition.mark_snapshot_durable(snap.lp);
                last_snapshot_lp.store(snap.lp, Ordering::Release);
            }
        }
        Ok(())
    }

    /// Log position of the last uploaded snapshot.
    pub fn last_snapshot_lp(&self) -> LogPosition {
        self.last_snapshot_lp.load(Ordering::Acquire)
    }

    /// Stop the service (drains one final pass).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StorageService {
    fn drop(&mut self) {
        self.stop();
    }
}
