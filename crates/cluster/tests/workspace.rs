//! Workspace fleet tests (paper §3.2): local attach (no blob store),
//! DDL-vs-provisioning races, concurrent fleet lifecycle under live writes,
//! and degraded-mode behaviour across a blob outage.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use s2_blob::{BreakerConfig, FaultyStore, MemoryStore, ObjectStore, StoreHealth};
use s2_cluster::{
    Cluster, ClusterConfig, StorageConfig, Workspace, WorkspaceManager, WorkspaceManagerConfig,
};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_exec::{AggFunc, Aggregate, Expr};
use s2_query::{ExecOptions, Plan};

fn account_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("branch", DataType::Int64),
        ColumnDef::new("balance", DataType::Double),
    ])
    .unwrap()
}

fn account_options() -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_shard_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_branch", vec![1])
        .with_flush_threshold(64)
        .with_segment_rows(256)
}

fn accounts(from: i64, to: i64) -> Vec<Row> {
    (from..to)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Double(100.0)]))
        .collect()
}

fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 3,
        open_cooldown: Duration::from_millis(20),
        max_cooldown: Duration::from_millis(100),
        probe_successes: 1,
        degraded_window: Duration::from_millis(150),
    }
}

fn test_cluster(
    blob: Option<Arc<dyn ObjectStore>>,
    breaker: Option<BreakerConfig>,
) -> Arc<Cluster> {
    Cluster::new(
        "wsdb",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 0,
            sync_replication: true,
            blob,
            cache_bytes: 32 * 1024 * 1024,
            storage: StorageConfig {
                tick: Duration::from_millis(5),
                snapshot_interval_bytes: 64 * 1024,
                ..Default::default()
            },
            breaker,
        },
    )
    .unwrap()
}

fn count_plan() -> Plan {
    Plan::scan("accounts", vec![2], None).aggregate(
        vec![],
        vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }],
    )
}

fn ws_count(ws: &Workspace) -> i64 {
    match ws.execute(&count_plan(), &ExecOptions::default()).unwrap().value(0, 0) {
        Value::Int(n) => n,
        other => panic!("count returned {other:?}"),
    }
}

fn seed_accounts(cluster: &Arc<Cluster>, n: i64) {
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(0, n) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
}

/// `attach_local` streams the full history from the primaries — no blob
/// store anywhere — and converges to zero lag, answering the same queries
/// as the cluster itself.
#[test]
fn attach_local_streams_full_history() {
    let cluster = test_cluster(None, None);
    seed_accounts(&cluster, 300);
    cluster.flush_table("accounts").unwrap();

    let ws = Workspace::attach_local("local", &cluster).unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));
    assert_eq!(ws.max_lag_bytes(), 0);
    assert_eq!(ws_count(&ws), 300);

    // Lag converges again after more primary writes, including updates that
    // turn into move transactions against flushed segments.
    let mut txn = cluster.begin();
    for row in accounts(300, 360) {
        txn.insert("accounts", row).unwrap();
    }
    for id in 0..20 {
        txn.delete_unique("accounts", &[Value::Int(id)]).unwrap();
    }
    txn.commit().unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));
    assert_eq!(ws.max_lag_bytes(), 0);
    assert_eq!(ws_count(&ws), 340);
    assert_eq!(cluster.row_count("accounts").unwrap(), 340);
}

/// The blob-restore path and the local full-history path land on the same
/// queryable state.
#[test]
fn attach_local_matches_blob_provisioned_workspace() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = test_cluster(Some(Arc::clone(&blob)), None);
    seed_accounts(&cluster, 250);
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();

    let from_blob = Workspace::provision("blobws", &cluster, &blob, 8 * 1024 * 1024).unwrap();
    let local = Workspace::attach_local("localws", &cluster).unwrap();
    assert!(from_blob.catch_up(Duration::from_secs(5)));
    assert!(local.catch_up(Duration::from_secs(5)));

    let sum = Plan::scan("accounts", vec![2], None)
        .aggregate(vec![], vec![Aggregate { func: AggFunc::Sum, input: Expr::Column(0) }]);
    let a = from_blob.execute(&sum, &ExecOptions::default()).unwrap();
    let b = local.execute(&sum, &ExecOptions::default()).unwrap();
    let c = cluster.execute(&sum, &ExecOptions::default()).unwrap();
    assert_eq!(a.value(0, 0), c.value(0, 0));
    assert_eq!(b.value(0, 0), c.value(0, 0));
}

/// Regression: a workspace racing CREATE TABLE must never error out of
/// `context()` — a table whose DDL hasn't replicated to every partition yet
/// is skipped, then shows up once replication catches up.
#[test]
fn context_never_errors_racing_create_table() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = test_cluster(Some(Arc::clone(&blob)), None);
    seed_accounts(&cluster, 50);
    cluster.sync_to_blob().unwrap();
    let ws = Workspace::provision("racer", &cluster, &blob, 8 * 1024 * 1024).unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));

    let stop = Arc::new(AtomicBool::new(false));
    let ddl_cluster = Arc::clone(&cluster);
    let ddl_stop = Arc::clone(&stop);
    let ddl = std::thread::spawn(move || {
        for i in 0..12 {
            ddl_cluster
                .create_table(
                    format!("extra_{i}"),
                    Schema::new(vec![ColumnDef::new("x", DataType::Int64)]).unwrap(),
                    TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
                )
                .unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        ddl_stop.store(true, Ordering::Release);
    });
    // Hammer context() through the whole DDL storm: stale catalogs are
    // fine, errors are not.
    while !stop.load(Ordering::Acquire) {
        ws.context().unwrap();
    }
    ddl.join().unwrap();

    // Once replication catches up the new tables are all queryable.
    assert!(ws.catch_up(Duration::from_secs(5)));
    let names = ws.context().unwrap().table_names();
    for i in 0..12 {
        assert!(names.contains(&format!("extra_{i}")), "extra_{i} missing from workspace context");
    }
}

/// Fleet lifecycle under live writes: concurrent provisioning, duplicate
/// rejection, catch-up, per-workspace query parity and detach.
#[test]
fn manager_fleet_under_live_writes() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = test_cluster(Some(Arc::clone(&blob)), None);
    seed_accounts(&cluster, 200);
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();

    let before = s2_obs::global().snapshot();
    let mgr = WorkspaceManager::new(
        &cluster,
        WorkspaceManagerConfig {
            cache_bytes: 8 * 1024 * 1024,
            read_budget: Duration::from_secs(2),
            provision_wait: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .unwrap();

    // Writer thread keeps committing while the fleet provisions.
    let stop = Arc::new(AtomicBool::new(false));
    let wc = Arc::clone(&cluster);
    let ws_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut next = 200i64;
        while !ws_stop.load(Ordering::Acquire) {
            let mut txn = wc.begin();
            for row in accounts(next, next + 10) {
                txn.insert("accounts", row).unwrap();
            }
            txn.commit().unwrap();
            next += 10;
            std::thread::sleep(Duration::from_millis(1));
        }
        next
    });

    let names: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
    let results = mgr.provision_many(&names);
    for (name, res) in &results {
        assert!(res.is_ok(), "provision {name}: {:?}", res.as_ref().err());
    }
    assert_eq!(mgr.active(), 4);
    assert_eq!(mgr.names(), names);

    // Duplicate names are rejected.
    assert!(matches!(mgr.provision("w0"), Err(s2_common::Error::InvalidArgument(_))));

    stop.store(true, Ordering::Release);
    let total = writer.join().unwrap();
    assert!(mgr.catch_up_all(Duration::from_secs(10)));
    assert_eq!(mgr.max_lag_bytes(), 0);
    for name in &names {
        let ws = mgr.get(name).unwrap();
        assert_eq!(ws_count(&ws), total, "workspace {name} diverged from primary");
    }

    // Detach: removed from the registry, double-detach is NotFound.
    mgr.detach("w1").unwrap();
    assert_eq!(mgr.active(), 3);
    assert!(mgr.get("w1").is_none());
    assert!(matches!(mgr.detach("w1"), Err(s2_common::Error::NotFound(_))));
    mgr.detach_all();
    assert_eq!(mgr.active(), 0);

    // Telemetry moved (delta-checked: the obs registry is process-global).
    let after = s2_obs::global().snapshot();
    assert!(after.counter("workspace.provisions") >= before.counter("workspace.provisions") + 4);
    assert!(after.counter("workspace.detaches") >= before.counter("workspace.detaches") + 4);
    let hist_before = before.histogram("workspace.provision_ms").map_or(0, |h| h.count);
    let hist_after = after.histogram("workspace.provision_ms").map_or(0, |h| h.count);
    assert!(hist_after >= hist_before + 4, "provision_ms histogram not recorded");
}

/// Degraded mode: a total blob outage pauses provisioning (bounded wait →
/// `Unavailable`), already-attached workspaces keep serving reads, and
/// provisioning resumes the moment the breaker recovers.
#[test]
fn manager_pauses_during_outage_and_resumes() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let blob: Arc<dyn ObjectStore> = Arc::new(SharedFaulty(Arc::clone(&faulty)));
    let cluster = test_cluster(Some(blob), Some(fast_breaker()));
    seed_accounts(&cluster, 100);
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();

    let mgr = WorkspaceManager::new(
        &cluster,
        WorkspaceManagerConfig {
            cache_bytes: 8 * 1024 * 1024,
            read_budget: Duration::from_millis(200),
            provision_wait: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .unwrap();
    let ws = mgr.provision("survivor").unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));
    assert_eq!(ws_count(&ws), 100); // warm the data-file cache

    // Take the store down and keep committing until the breaker trips.
    faulty.set_unavailable(true);
    let health = cluster.blob_health().unwrap();
    let mut next = 100i64;
    for _ in 0..400 {
        if health.health() == StoreHealth::Outage {
            break;
        }
        let mut txn = cluster.begin();
        for row in accounts(next, next + 5) {
            txn.insert("accounts", row).unwrap();
        }
        txn.commit().unwrap();
        next += 5;
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(health.health(), StoreHealth::Outage, "breaker never tripped");

    // Provisioning pauses, then gives up with Unavailable after its budget.
    let before_pauses = s2_obs::global().snapshot().counter("workspace.provision_pauses");
    assert!(matches!(mgr.provision("blocked"), Err(s2_common::Error::Unavailable(_))));
    assert!(s2_obs::global().snapshot().counter("workspace.provision_pauses") > before_pauses);
    assert!(mgr.get("blocked").is_none());

    // The attached workspace still serves reads from its cache, and keeps
    // replicating the primary's tail (replication is not on the blob path).
    let committed = next;
    assert!(ws.catch_up(Duration::from_secs(5)));
    assert_eq!(ws_count(&ws), committed);

    // Recovery: a provision already paused on the outage resumes on its own
    // the moment the store comes back.
    let slow_cluster = Arc::clone(&cluster);
    let paused = std::thread::spawn(move || {
        // Longer budget than the outage lasts: this one must succeed.
        let slow = WorkspaceManager::new(
            &slow_cluster,
            WorkspaceManagerConfig {
                cache_bytes: 8 * 1024 * 1024,
                provision_wait: Duration::from_secs(10),
                ..Default::default()
            },
        )
        .unwrap();
        slow.provision("resumed").map(|_| ())
    });
    std::thread::sleep(Duration::from_millis(100));
    faulty.set_unavailable(false);
    // The breaker only closes once probe traffic succeeds: keep committing
    // so the storage service has uploads to probe with.
    for _ in 0..1000 {
        if health.health() != StoreHealth::Outage {
            break;
        }
        let mut txn = cluster.begin();
        for row in accounts(next, next + 5) {
            txn.insert("accounts", row).unwrap();
        }
        txn.commit().unwrap();
        next += 5;
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_ne!(health.health(), StoreHealth::Outage, "breaker never recovered");
    paused.join().unwrap().unwrap();

    mgr.detach_all();
}

/// Newtype so an `Arc<FaultyStore<_>>` can be shared as `Arc<dyn ObjectStore>`
/// while the test keeps a typed handle for fault injection.
struct SharedFaulty(Arc<FaultyStore<MemoryStore>>);

impl ObjectStore for SharedFaulty {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> s2_common::Result<()> {
        self.0.put(key, bytes)
    }
    fn get(&self, key: &str) -> s2_common::Result<Arc<Vec<u8>>> {
        self.0.get(key)
    }
    fn list(&self, prefix: &str) -> s2_common::Result<Vec<String>> {
        self.0.list(prefix)
    }
    fn delete(&self, key: &str) -> s2_common::Result<()> {
        self.0.delete(key)
    }
}
