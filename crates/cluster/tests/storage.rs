//! Unit-level tests of the separated-storage plumbing: pinned-until-uploaded
//! data files, read-through caching, log/snapshot shipping, and the
//! degraded modes the resilience layer guarantees during blob outages.

use std::sync::Arc;
use std::time::{Duration, Instant};

use s2_blob::{
    BlobHealth, BreakerConfig, CircuitState, FaultyStore, MemoryStore, ObjectStore, ResilientStore,
    StoreHealth, UploaderConfig,
};
use s2_cluster::{log_chunk_key, BlobBackedFileStore, StorageConfig, StorageService};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Error, RetryPolicy, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, Partition};
use s2_wal::{Log, Snapshot};

/// Breaker tuning fast enough for tests but with a cooldown long enough
/// that "fail fast while open" is observable.
fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(200),
        max_cooldown: Duration::from_secs(1),
        probe_successes: 1,
        degraded_window: Duration::from_millis(100),
    }
}

#[test]
fn files_stay_pinned_until_uploaded() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    faulty.set_unavailable(true);
    let store =
        BlobBackedFileStore::new(Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>, 1 << 20);
    store.write_file("p/files/0001", Arc::new(vec![7u8; 128])).unwrap();
    // Upload fails (outage): the only copy is local and must stay readable.
    std::thread::sleep(Duration::from_millis(100));
    assert!(store.pinned_bytes() >= 128, "file pinned while blob is down");
    assert_eq!(store.read_file("p/files/0001").unwrap().len(), 128);

    // Blob recovers: a new write uploads and unpins.
    faulty.set_unavailable(false);
    store.write_file("p/files/0002", Arc::new(vec![9u8; 64])).unwrap();
    store.drain_uploads();
    assert!(store.uploaded_count() >= 1);
    assert_eq!(store.read_file("p/files/0002").unwrap().len(), 64);
}

#[test]
fn reads_fall_back_to_blob_after_local_eviction() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    // Tiny cache: the second file evicts the first.
    let store = BlobBackedFileStore::new(Arc::clone(&blob), 200);
    store.write_file("a", Arc::new(vec![1u8; 150])).unwrap();
    store.drain_uploads();
    store.write_file("b", Arc::new(vec![2u8; 150])).unwrap();
    store.drain_uploads();
    // "a" is gone locally; the read must come from the blob store.
    let (_, misses_before) = store.cache_stats();
    assert_eq!(store.read_file("a").unwrap()[0], 1);
    let (_, misses_after) = store.cache_stats();
    assert!(misses_after > misses_before, "read went to the blob store");
}

#[test]
fn storage_service_ships_chunks_and_snapshots() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let p =
        Partition::new("sp0", Arc::new(Log::in_memory()), Arc::new(s2_core::MemFileStore::new()));
    let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int64)]).unwrap();
    let t = p.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    for i in 0..500i64 {
        let mut txn = p.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }
    let cfg = StorageConfig {
        chunk_bytes: 1024,
        snapshot_interval_bytes: 0, // snapshot every pass
        require_replicated: false,
        ..Default::default()
    };
    let marker = Arc::new(std::sync::atomic::AtomicU64::new(0));
    StorageService::pass(&p, &blob, &cfg, &marker).unwrap();

    // Chunks are contiguous, zero-padded and cover the whole log.
    let chunks = blob.list("sp0/log/").unwrap();
    assert!(chunks.len() > 1, "multiple chunks at 1KiB: {}", chunks.len());
    assert_eq!(chunks[0], log_chunk_key("sp0", 0));
    let mut covered = 0u64;
    for key in &chunks {
        let bytes = blob.get(key).unwrap();
        assert!(key.ends_with(&format!("{covered:020}")), "contiguous: {key}");
        covered += bytes.len() as u64;
    }
    assert_eq!(covered, p.log.uploaded_lp());

    // A snapshot landed and decodes.
    let snaps = blob.list("sp0/snapshots/").unwrap();
    assert!(!snaps.is_empty());
    let snap = Snapshot::decode(&blob.get(snaps.last().unwrap()).unwrap()).unwrap();
    assert!(snap.lp <= p.log.end_lp());
}

#[test]
fn cold_reads_fail_fast_when_breaker_open() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let blob = Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>;
    let health = BlobHealth::with_config("t-cold-fail-fast", fast_breaker());
    let store = BlobBackedFileStore::with_tuning(
        blob,
        1 << 20,
        UploaderConfig::default(),
        Arc::clone(&health),
        Duration::from_millis(400),
    );
    store.write_file("f/1", Arc::new(vec![1u8; 64])).unwrap();
    store.drain_uploads();
    store.delete_file("f/1").unwrap(); // cold-read target: blob-only copy

    faulty.set_unavailable(true);
    // The first cold read burns its bounded retries and trips the breaker.
    assert!(store.read_file("f/1").is_err());
    assert_eq!(health.state(), CircuitState::Open);

    // With the breaker open, the next read fails immediately — a query
    // never hangs for the duration of the outage.
    let t = Instant::now();
    assert!(matches!(store.read_file("f/1"), Err(Error::Unavailable(_))));
    assert!(t.elapsed() < Duration::from_millis(150), "not fail-fast: {:?}", t.elapsed());

    // Recovery: once the cooldown admits a probe, the same read succeeds.
    faulty.set_unavailable(false);
    let t0 = Instant::now();
    loop {
        match store.read_file("f/1") {
            Ok(b) => {
                assert_eq!(b.len(), 64);
                break;
            }
            Err(_) if t0.elapsed() < Duration::from_secs(3) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("cold read never recovered: {e}"),
        }
    }
}

#[test]
fn outage_cannot_evict_unuploaded_files() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    faulty.set_unavailable(true);
    let blob = Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>;
    // 256-byte cache budget, then 500 bytes of un-uploadable files: the pin
    // must win over the budget — these are the only copies in existence.
    let store = BlobBackedFileStore::with_tuning(
        blob,
        256,
        UploaderConfig {
            threads: 1,
            capacity: 16,
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        },
        BlobHealth::with_config("t-no-evict", fast_breaker()),
        Duration::from_millis(200),
    );
    for i in 0..5u8 {
        store.write_file(&format!("f/{i}"), Arc::new(vec![i; 100])).unwrap();
    }
    assert!(store.pinned_bytes() >= 500, "pinned {} of 500 bytes", store.pinned_bytes());
    for i in 0..5u8 {
        let b = store.read_file(&format!("f/{i}")).unwrap();
        assert_eq!((b.len(), b[0]), (100, i), "local copy must stay readable during outage");
    }

    // Recovery: parked and budget-exhausted uploads all land, nothing stays
    // pinned, and the blob store holds every file.
    faulty.set_unavailable(false);
    let t0 = Instant::now();
    while store.uploaded_count() < 5 {
        store.resubmit_failed();
        assert!(t0.elapsed() < Duration::from_secs(5), "backlog did not drain after recovery");
        std::thread::sleep(Duration::from_millis(5));
    }
    store.drain_uploads();
    assert_eq!(store.pinned_bytes(), 0);
    for i in 0..5u8 {
        assert_eq!(faulty.get(&format!("f/{i}")).unwrap()[0], i);
    }
}

#[test]
fn commit_path_never_blocks_on_full_backlog() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    faulty.set_unavailable(true);
    let blob = Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>;
    // Tiny uploader capacity: writes 3..10 land while the backlog is full.
    let store = BlobBackedFileStore::with_tuning(
        blob,
        1 << 20,
        UploaderConfig {
            threads: 1,
            capacity: 2,
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        },
        BlobHealth::with_config("t-commit-noblock", fast_breaker()),
        Duration::from_millis(200),
    );
    // Every write_file must return promptly during a sustained outage with
    // the backlog at capacity — the commit path never waits on the blob
    // store. (Before the try_enqueue fix, write 3+ parked until recovery.)
    let t0 = Instant::now();
    for i in 0..10u8 {
        store.write_file(&format!("f/{i}"), Arc::new(vec![i; 64])).unwrap();
    }
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "write_file blocked on a full backlog: {:?}",
        t0.elapsed()
    );
    // Overflow keys are deferred (pinned + failed set), not dropped.
    assert!(store.pinned_bytes() >= 10 * 64, "every file stays pinned");
    assert!(store.failed_count() > 0, "overflow writes recorded for resubmission");
    for i in 0..10u8 {
        assert_eq!(store.read_file(&format!("f/{i}")).unwrap()[0], i);
    }

    // Recovery: maintenance resubmits converge the store to local state.
    faulty.set_unavailable(false);
    let t0 = Instant::now();
    while store.uploaded_count() < 10 || store.failed_count() > 0 {
        store.resubmit_failed();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deferred backlog did not converge: {} uploaded, {} failed",
            store.uploaded_count(),
            store.failed_count()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    store.drain_uploads();
    assert_eq!(store.pinned_bytes(), 0);
    for i in 0..10u8 {
        assert_eq!(faulty.get(&format!("f/{i}")).unwrap()[0], i);
    }
}

#[test]
fn shipping_pauses_during_outage_and_resumes() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let blob = Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>;
    let health = BlobHealth::with_config("t-ship-pause", fast_breaker());
    let ship = Arc::new(ResilientStore::new(
        Arc::clone(&blob),
        Arc::clone(&health),
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            deadline: Duration::from_millis(100),
        },
    )) as Arc<dyn ObjectStore>;

    let p = Partition::new(
        "pause0",
        Arc::new(Log::in_memory()),
        Arc::new(s2_core::MemFileStore::new()),
    );
    let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int64)]).unwrap();
    let t = p.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    for i in 0..100i64 {
        let mut txn = p.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }

    // Trip the breaker before the service starts: it must come up paused.
    faulty.set_unavailable(true);
    for _ in 0..2 {
        let _ = ship.put("t-ship-pause/probe", Arc::new(vec![0]));
    }
    assert_eq!(health.health(), StoreHealth::Outage);
    let mut svc = StorageService::start_with_health(
        Arc::clone(&p),
        Arc::clone(&ship),
        StorageConfig {
            chunk_bytes: 256,
            snapshot_interval_bytes: 1 << 30, // no snapshots in this test
            tick: Duration::from_millis(2),
            require_replicated: false,
        },
        Some(Arc::clone(&health)),
    );
    std::thread::sleep(Duration::from_millis(80));
    assert_eq!(p.log.uploaded_lp(), 0, "paused service must not ship during an outage");

    // The store recovers; a probe (here: any guarded operation — in the
    // cluster the uploader's parked jobs do this) closes the breaker, and
    // the service resumes shipping on its next tick.
    faulty.set_unavailable(false);
    let t0 = Instant::now();
    while health.health() == StoreHealth::Outage {
        let _ = ship.put("t-ship-pause/probe", Arc::new(vec![0]));
        assert!(t0.elapsed() < Duration::from_secs(3), "breaker never closed after recovery");
        std::thread::sleep(Duration::from_millis(20));
    }
    let t0 = Instant::now();
    while p.log.uploaded_lp() < p.log.durable_lp() {
        assert!(t0.elapsed() < Duration::from_secs(3), "shipping did not resume");
        std::thread::sleep(Duration::from_millis(10));
    }
    svc.stop();
    assert!(!faulty.list("pause0/log/").unwrap().is_empty());
}

/// Share a typed `FaultyStore` as `Arc<dyn ObjectStore>`.
struct Shared(Arc<FaultyStore<MemoryStore>>);

impl ObjectStore for Shared {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> s2_common::Result<()> {
        self.0.put(key, bytes)
    }
    fn get(&self, key: &str) -> s2_common::Result<Arc<Vec<u8>>> {
        self.0.get(key)
    }
    fn list(&self, prefix: &str) -> s2_common::Result<Vec<String>> {
        self.0.list(prefix)
    }
    fn delete(&self, key: &str) -> s2_common::Result<()> {
        self.0.delete(key)
    }
}
