//! Unit-level tests of the separated-storage plumbing: pinned-until-uploaded
//! data files, read-through caching, and log/snapshot shipping.

use std::sync::Arc;
use std::time::Duration;

use s2_blob::{FaultyStore, MemoryStore, ObjectStore};
use s2_cluster::{log_chunk_key, BlobBackedFileStore, StorageConfig, StorageService};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, Partition};
use s2_wal::{Log, Snapshot};

#[test]
fn files_stay_pinned_until_uploaded() {
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    faulty.set_unavailable(true);
    let store =
        BlobBackedFileStore::new(Arc::new(Shared(faulty.clone())) as Arc<dyn ObjectStore>, 1 << 20);
    store.write_file("p/files/0001", Arc::new(vec![7u8; 128])).unwrap();
    // Upload fails (outage): the only copy is local and must stay readable.
    std::thread::sleep(Duration::from_millis(100));
    assert!(store.pinned_bytes() >= 128, "file pinned while blob is down");
    assert_eq!(store.read_file("p/files/0001").unwrap().len(), 128);

    // Blob recovers: a new write uploads and unpins.
    faulty.set_unavailable(false);
    store.write_file("p/files/0002", Arc::new(vec![9u8; 64])).unwrap();
    store.drain_uploads();
    assert!(store.uploaded_count() >= 1);
    assert_eq!(store.read_file("p/files/0002").unwrap().len(), 64);
}

#[test]
fn reads_fall_back_to_blob_after_local_eviction() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    // Tiny cache: the second file evicts the first.
    let store = BlobBackedFileStore::new(Arc::clone(&blob), 200);
    store.write_file("a", Arc::new(vec![1u8; 150])).unwrap();
    store.drain_uploads();
    store.write_file("b", Arc::new(vec![2u8; 150])).unwrap();
    store.drain_uploads();
    // "a" is gone locally; the read must come from the blob store.
    let (_, misses_before) = store.cache_stats();
    assert_eq!(store.read_file("a").unwrap()[0], 1);
    let (_, misses_after) = store.cache_stats();
    assert!(misses_after > misses_before, "read went to the blob store");
}

#[test]
fn storage_service_ships_chunks_and_snapshots() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let p =
        Partition::new("sp0", Arc::new(Log::in_memory()), Arc::new(s2_core::MemFileStore::new()));
    let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int64)]).unwrap();
    let t = p.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    for i in 0..500i64 {
        let mut txn = p.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }
    let cfg = StorageConfig {
        chunk_bytes: 1024,
        snapshot_interval_bytes: 0, // snapshot every pass
        require_replicated: false,
        ..Default::default()
    };
    let marker = Arc::new(std::sync::atomic::AtomicU64::new(0));
    StorageService::pass(&p, &blob, &cfg, &marker).unwrap();

    // Chunks are contiguous, zero-padded and cover the whole log.
    let chunks = blob.list("sp0/log/").unwrap();
    assert!(chunks.len() > 1, "multiple chunks at 1KiB: {}", chunks.len());
    assert_eq!(chunks[0], log_chunk_key("sp0", 0));
    let mut covered = 0u64;
    for key in &chunks {
        let bytes = blob.get(key).unwrap();
        assert!(key.ends_with(&format!("{covered:020}")), "contiguous: {key}");
        covered += bytes.len() as u64;
    }
    assert_eq!(covered, p.log.uploaded_lp());

    // A snapshot landed and decodes.
    let snaps = blob.list("sp0/snapshots/").unwrap();
    assert!(!snaps.is_empty());
    let snap = Snapshot::decode(&blob.get(snaps.last().unwrap()).unwrap()).unwrap();
    assert!(snap.lp <= p.log.end_lp());
}

/// Share a typed `FaultyStore` as `Arc<dyn ObjectStore>`.
struct Shared(Arc<FaultyStore<MemoryStore>>);

impl ObjectStore for Shared {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> s2_common::Result<()> {
        self.0.put(key, bytes)
    }
    fn get(&self, key: &str) -> s2_common::Result<Arc<Vec<u8>>> {
        self.0.get(key)
    }
    fn list(&self, prefix: &str) -> s2_common::Result<Vec<String>> {
        self.0.list(prefix)
    }
    fn delete(&self, key: &str) -> s2_common::Result<()> {
        self.0.delete(key)
    }
}
