//! Cluster-level integration tests: distributed transactions, synchronous
//! replication, failover, separated storage (figure 2), PITR and read-only
//! workspaces.

use std::sync::Arc;
use std::time::Duration;

use s2_blob::{FaultyStore, MemoryStore, ObjectStore};
use s2_cluster::{restore_from_blob, Cluster, ClusterConfig, StorageConfig, Workspace};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_exec::{AggFunc, Aggregate, Expr};
use s2_query::{ExecOptions, Plan};

fn account_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("branch", DataType::Int64),
        ColumnDef::new("balance", DataType::Double),
    ])
    .unwrap()
}

fn account_options() -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_shard_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_branch", vec![1])
        .with_flush_threshold(64)
        .with_segment_rows(256)
}

fn accounts(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Double(100.0)]))
        .collect()
}

fn basic_cluster(blob: Option<Arc<dyn ObjectStore>>) -> Arc<Cluster> {
    Cluster::new(
        "db0",
        ClusterConfig {
            partitions: 4,
            ha_replicas: 1,
            sync_replication: true,
            blob,
            cache_bytes: 64 * 1024 * 1024,
            storage: StorageConfig {
                tick: Duration::from_millis(5),
                snapshot_interval_bytes: 64 * 1024,
                ..Default::default()
            },
            breaker: None,
        },
    )
    .unwrap()
}

#[test]
fn sharded_writes_and_global_query() {
    let cluster = basic_cluster(None);
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(1000) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    assert_eq!(cluster.row_count("accounts").unwrap(), 1000);

    // Rows actually spread across partitions.
    let mut nonempty = 0;
    for pid in 0..cluster.partition_count() {
        let set = cluster.set(pid);
        let snap = set.master().read_snapshot();
        let t = set.master().table_by_name("accounts").unwrap().id;
        if snap.table(t).unwrap().live_row_count() > 0 {
            nonempty += 1;
        }
    }
    assert_eq!(nonempty, 4);

    // Aggregate across partitions.
    let plan = Plan::scan("accounts", vec![2], None)
        .aggregate(vec![], vec![Aggregate { func: AggFunc::Sum, input: Expr::Column(0) }]);
    let out = cluster.execute(&plan, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Double(100_000.0));
}

#[test]
fn point_ops_route_by_unique_key() {
    let cluster = basic_cluster(None);
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(100) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("accounts").unwrap();

    let mut txn = cluster.begin();
    let row = txn.get_unique("accounts", &[Value::Int(42)]).unwrap().unwrap();
    assert_eq!(row.get(2), &Value::Double(100.0));
    assert!(txn
        .update_unique_with("accounts", &[Value::Int(42)], |r| {
            Row::new(vec![r.get(0).clone(), r.get(1).clone(), Value::Double(250.0)])
        })
        .unwrap());
    assert!(txn.delete_unique("accounts", &[Value::Int(43)]).unwrap());
    txn.commit().unwrap();

    let mut txn = cluster.begin();
    assert_eq!(
        txn.get_unique("accounts", &[Value::Int(42)]).unwrap().unwrap().get(2),
        &Value::Double(250.0)
    );
    assert!(txn.get_unique("accounts", &[Value::Int(43)]).unwrap().is_none());
    txn.rollback();
    assert_eq!(cluster.row_count("accounts").unwrap(), 99);
}

#[test]
fn failover_preserves_committed_data() {
    let cluster = basic_cluster(None);
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(500) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap(); // sync replication: acked by replicas

    // Kill every master; replicas take over.
    for pid in 0..cluster.partition_count() {
        cluster.fail_master(pid).unwrap();
    }
    assert_eq!(cluster.row_count("accounts").unwrap(), 500);

    // The promoted masters accept new writes.
    let mut txn = cluster.begin();
    txn.insert("accounts", Row::new(vec![Value::Int(9999), Value::Int(0), Value::Double(1.0)]))
        .unwrap();
    txn.commit().unwrap();
    assert_eq!(cluster.row_count("accounts").unwrap(), 501);

    // Point reads still work after failover (indexes replicated correctly).
    let mut txn = cluster.begin();
    assert!(txn.get_unique("accounts", &[Value::Int(123)]).unwrap().is_some());
    txn.rollback();
}

#[test]
fn blob_shipping_and_pitr() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = basic_cluster(Some(Arc::clone(&blob)));
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();

    let mut txn = cluster.begin();
    for row in accounts(300) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();

    // Record the restore target, then do post-target damage.
    let targets: Vec<u64> =
        (0..cluster.partition_count()).map(|p| cluster.set(p).master().log.end_lp()).collect();
    let mut txn = cluster.begin();
    for id in 0..300 {
        txn.delete_unique("accounts", &[Value::Int(id)]).unwrap();
    }
    txn.commit().unwrap();
    assert_eq!(cluster.row_count("accounts").unwrap(), 0);
    cluster.sync_to_blob().unwrap();

    // PITR to just before the mass delete: all rows back.
    let mut restored_rows = 0;
    for (pid, &target) in targets.iter().enumerate() {
        let set = cluster.set(pid);
        let files = s2_cluster::BlobBackedFileStore::new(Arc::clone(&blob), 16 * 1024 * 1024);
        let restored = restore_from_blob(
            &blob,
            &set.name,
            files as Arc<dyn s2_core::DataFileStore>,
            Some(target),
        )
        .unwrap();
        let t = restored.table_by_name("accounts").unwrap().id;
        restored_rows += restored.read_snapshot().table(t).unwrap().live_row_count();
    }
    assert_eq!(restored_rows, 300);

    // Restore to latest reflects the deletes.
    let mut latest_rows = 0;
    for pid in 0..cluster.partition_count() {
        let set = cluster.set(pid);
        let files = s2_cluster::BlobBackedFileStore::new(Arc::clone(&blob), 16 * 1024 * 1024);
        let restored =
            restore_from_blob(&blob, &set.name, files as Arc<dyn s2_core::DataFileStore>, None)
                .unwrap();
        let t = restored.table_by_name("accounts").unwrap().id;
        latest_rows += restored.read_snapshot().table(t).unwrap().live_row_count();
    }
    assert_eq!(latest_rows, 0);
}

#[test]
fn workspace_provision_and_tail_replication() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = basic_cluster(Some(Arc::clone(&blob)));
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(400) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();

    let ws = Workspace::provision("analytics", &cluster, &blob, 16 * 1024 * 1024).unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));

    // The workspace answers analytical queries on its own compute.
    let plan = Plan::scan("accounts", vec![2], None).aggregate(
        vec![],
        vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }],
    );
    let out = ws.execute(&plan, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Int(400));

    // New primary writes stream to the workspace via the log tail.
    let mut txn = cluster.begin();
    for i in 400..450 {
        txn.insert("accounts", Row::new(vec![Value::Int(i), Value::Int(0), Value::Double(5.0)]))
            .unwrap();
    }
    txn.commit().unwrap();
    assert!(ws.catch_up(Duration::from_secs(5)));
    let out = ws.execute(&plan, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Int(450));
}

#[test]
fn blob_outage_does_not_block_commits() {
    let faulty = Arc::new(FaultyStore::new(
        MemoryStore::new(),
        Duration::from_millis(1),
        Duration::from_millis(1),
    ));
    let blob: Arc<dyn ObjectStore> = Arc::new(SharedFaulty(Arc::clone(&faulty)));
    let cluster = basic_cluster(Some(blob));
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();

    // Warm up, then take the blob store down.
    let mut txn = cluster.begin();
    for row in accounts(50) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    faulty.set_unavailable(true);

    // Commits keep flowing: durability comes from replication, not the blob
    // store (the paper's headline property).
    let t0 = std::time::Instant::now();
    let mut txn = cluster.begin();
    for i in 50..150 {
        txn.insert("accounts", Row::new(vec![Value::Int(i), Value::Int(0), Value::Double(1.0)]))
            .unwrap();
    }
    txn.commit().unwrap();
    assert!(t0.elapsed() < Duration::from_secs(2));
    assert_eq!(cluster.row_count("accounts").unwrap(), 150);
    faulty.set_unavailable(false);
}

/// Newtype so an `Arc<FaultyStore<_>>` can be shared as `Arc<dyn ObjectStore>`
/// while the test keeps a typed handle for fault injection.
struct SharedFaulty(Arc<FaultyStore<MemoryStore>>);

impl ObjectStore for SharedFaulty {
    fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> s2_common::Result<()> {
        self.0.put(key, bytes)
    }
    fn get(&self, key: &str) -> s2_common::Result<Arc<Vec<u8>>> {
        self.0.get(key)
    }
    fn list(&self, prefix: &str) -> s2_common::Result<Vec<String>> {
        self.0.list(prefix)
    }
    fn delete(&self, key: &str) -> s2_common::Result<()> {
        self.0.delete(key)
    }
}

#[test]
fn duplicate_keys_rejected_across_partitions() {
    let cluster = basic_cluster(None);
    cluster.create_table("accounts", account_schema(), account_options()).unwrap();
    let mut txn = cluster.begin();
    for row in accounts(20) {
        txn.insert("accounts", row).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("accounts").unwrap();

    let mut txn = cluster.begin();
    let err = txn
        .insert("accounts", Row::new(vec![Value::Int(7), Value::Int(0), Value::Double(0.0)]))
        .unwrap_err();
    assert!(matches!(err, s2_common::Error::DuplicateKey(_)));
    txn.rollback();
}
