//! The in-memory MVCC rowstore: a skiplist of row keys, each carrying a
//! version chain and a row lock (paper §2.1.1).
//!
//! In unified table storage this structure serves as the LSM level-0
//! write-optimized store ("MemTable" analogue, paper §2.1.2) *and* as the
//! lock manager for row-level locking ("the primary key of the in-memory
//! rowstore acts as the lock manager", paper §4.2).

use std::time::Duration;

use s2_common::{Result, Row, Timestamp, TxnId, Value};

use crate::mvcc::RowEntry;
use crate::skiplist::SkipList;

/// Default time writers wait on a row lock before reporting a conflict.
/// Deliberately short: there is no deadlock detector, so lock-order cycles
/// (e.g. two transactions locking the same rows in opposite orders) resolve
/// by timing out one side, which retries. OLTP drivers treat the resulting
/// [`s2_common::Error::LockConflict`] as retryable.
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_millis(200);

/// In-memory MVCC rowstore keyed by caller-chosen key tuples.
pub struct RowStore {
    list: SkipList<RowEntry>,
    lock_timeout: Duration,
}

impl Default for RowStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RowStore {
    /// Empty store with the default lock timeout.
    pub fn new() -> RowStore {
        RowStore { list: SkipList::new(), lock_timeout: DEFAULT_LOCK_TIMEOUT }
    }

    /// Override the row-lock wait budget (tests use short timeouts).
    pub fn with_lock_timeout(timeout: Duration) -> RowStore {
        RowStore { list: SkipList::new(), lock_timeout: timeout }
    }

    /// Number of keys present (including logically deleted ones not yet GC'd).
    /// Used as the flush-threshold proxy by the unified table.
    pub fn key_count(&self) -> usize {
        self.list.len()
    }

    /// Write `data` (Some = upsert, None = delete marker) for `key` under
    /// `txn`. Takes the row lock, which is held until commit/rollback.
    pub fn write(&self, txn: TxnId, key: &[Value], data: Option<Row>) -> Result<()> {
        let (node, _) = self.list.insert_or_get(key, RowEntry::default);
        node.payload.lock.lock(txn, self.lock_timeout)?;
        node.payload.chain.push(txn, data);
        Ok(())
    }

    /// Take the row lock for `key` without writing (used by uniqueness
    /// enforcement, paper §4.1.2 step 1, and by move transactions).
    pub fn lock_key(&self, txn: TxnId, key: &[Value]) -> Result<()> {
        let (node, _) = self.list.insert_or_get(key, RowEntry::default);
        node.payload.lock.lock(txn, self.lock_timeout)
    }

    /// Release the row lock for `key` if `txn` holds it (without resolving
    /// versions; used when a lock was taken but no write happened).
    pub fn unlock_key(&self, txn: TxnId, key: &[Value]) {
        if let Some(node) = self.list.get(key) {
            node.payload.lock.unlock(txn);
        }
    }

    /// Non-blocking lock attempt (used by the flusher, which skips rows that
    /// are currently being written rather than waiting on them).
    pub fn try_lock_key(&self, txn: TxnId, key: &[Value]) -> bool {
        let (node, _) = self.list.insert_or_get(key, RowEntry::default);
        node.payload.lock.try_lock(txn)
    }

    /// Commit `txn`'s versions at `commit_ts` but *keep the row locks held*.
    /// Move transactions need this (paper §4.2): the moved row is committed
    /// immediately (content unchanged) while the lock remains with the user
    /// transaction that triggered the move.
    pub fn commit_keep_locked(&self, txn: TxnId, commit_ts: Timestamp, keys: &[Vec<Value>]) {
        for key in keys {
            if let Some(node) = self.list.get(key) {
                node.payload.chain.resolve(txn, Some(commit_ts));
            }
        }
    }

    /// Visit the latest *committed* live row of every key, with its lock
    /// state. The flusher uses this to pick convertible rows (lock-free keys
    /// whose newest committed version is live).
    pub fn for_each_latest_committed(
        &self,
        mut f: impl FnMut(&[Value], &Row, /* lock_owner: */ TxnId) -> bool,
    ) {
        for node in self.list.iter() {
            if let Some(v) = node.payload.chain.latest_committed() {
                if let Some(row) = &v.data {
                    if !f(&node.key, row, node.payload.lock.owner()) {
                        return;
                    }
                }
            }
        }
    }

    /// Row visible at `read_ts` for `key` (a transaction sees its own writes).
    /// Returns `Some(None)` when the visible version is a delete marker.
    pub fn get(
        &self,
        key: &[Value],
        read_ts: Timestamp,
        self_txn: Option<TxnId>,
    ) -> Option<Option<Row>> {
        let node = self.list.get(key)?;
        let v = node.payload.chain.visible(read_ts, self_txn)?;
        Some(v.data.clone())
    }

    /// The latest *committed* row for `key`, ignoring snapshots. Unique-key
    /// checks need this: they must observe the newest committed state, not
    /// the transaction's snapshot.
    pub fn get_latest_committed(&self, key: &[Value]) -> Option<Option<Row>> {
        let node = self.list.get(key)?;
        let v = node.payload.chain.latest_committed()?;
        Some(v.data.clone())
    }

    /// Visit every key with a visible row at `read_ts`, in key order.
    /// Delete markers are skipped (`f` sees only live rows).
    pub fn for_each_visible(
        &self,
        read_ts: Timestamp,
        self_txn: Option<TxnId>,
        mut f: impl FnMut(&[Value], &Row),
    ) {
        for node in self.list.iter() {
            if let Some(v) = node.payload.chain.visible(read_ts, self_txn) {
                if let Some(row) = &v.data {
                    f(&node.key, row);
                }
            }
        }
    }

    /// Visit every key from `from` onward with a visible row at `read_ts`.
    /// Return `false` from `f` to stop early.
    pub fn for_each_visible_from(
        &self,
        from: &[Value],
        read_ts: Timestamp,
        self_txn: Option<TxnId>,
        mut f: impl FnMut(&[Value], &Row) -> bool,
    ) {
        for node in self.list.iter_from(Some(from)) {
            if let Some(v) = node.payload.chain.visible(read_ts, self_txn) {
                if let Some(row) = &v.data {
                    if !f(&node.key, row) {
                        return;
                    }
                }
            }
        }
    }

    /// Commit `txn`'s versions on the given keys at `commit_ts` and release
    /// their row locks.
    pub fn commit(&self, txn: TxnId, commit_ts: Timestamp, keys: &[Vec<Value>]) {
        for key in keys {
            if let Some(node) = self.list.get(key) {
                node.payload.chain.resolve(txn, Some(commit_ts));
                node.payload.lock.unlock(txn);
            }
        }
    }

    /// Abort `txn`'s versions on the given keys and release their row locks.
    pub fn rollback(&self, txn: TxnId, keys: &[Vec<Value>]) {
        for key in keys {
            if let Some(node) = self.list.get(key) {
                node.payload.chain.resolve(txn, None);
                node.payload.lock.unlock(txn);
            }
        }
    }

    /// Garbage-collect versions no reader at or after `horizon` can see and
    /// unlink keys whose chains become empty. Exclusive access required.
    /// Returns (keys removed, versions freed).
    pub fn gc(&mut self, horizon: Timestamp) -> (usize, usize) {
        let mut versions_freed = 0usize;
        let removed = self.list.retain_mut(|node| {
            let (live, freed) = node.payload.chain.gc(horizon);
            versions_freed += freed;
            if node.payload.lock.owner() != 0 {
                return false; // a writer still holds the row
            }
            if !live {
                return true; // chain fully reclaimed
            }
            // Reclaim keys whose entire remaining history is "deleted":
            // the newest committed version is a delete marker at or before
            // the horizon, so no reader can ever see a live row again.
            node.payload
                .chain
                .visible(s2_common::TS_MAX_COMMITTED, None)
                .is_some_and(|v| v.data.is_none() && v.timestamp() <= horizon)
        });
        (removed, versions_freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    fn row(i: i64, s: &str) -> Row {
        Row::new(vec![Value::Int(i), Value::str(s)])
    }

    #[test]
    fn write_commit_read() {
        let rs = RowStore::new();
        rs.write(1, &k(10), Some(row(10, "a"))).unwrap();
        assert!(rs.get(&k(10), 100, None).is_none(), "uncommitted invisible to others");
        assert!(rs.get(&k(10), 0, Some(1)).is_some(), "visible to self");
        rs.commit(1, 50, &[k(10)]);
        assert!(rs.get(&k(10), 49, None).is_none());
        let got = rs.get(&k(10), 50, None).unwrap().unwrap();
        assert_eq!(got.get(1), &Value::str("a"));
    }

    #[test]
    fn delete_marker_visible_as_none() {
        let rs = RowStore::new();
        rs.write(1, &k(1), Some(row(1, "x"))).unwrap();
        rs.commit(1, 10, &[k(1)]);
        rs.write(2, &k(1), None).unwrap();
        rs.commit(2, 20, &[k(1)]);
        assert!(rs.get(&k(1), 15, None).unwrap().is_some());
        assert!(rs.get(&k(1), 25, None).unwrap().is_none());
    }

    #[test]
    fn rollback_restores_previous() {
        let rs = RowStore::new();
        rs.write(1, &k(1), Some(row(1, "v1"))).unwrap();
        rs.commit(1, 10, &[k(1)]);
        rs.write(2, &k(1), Some(row(1, "v2"))).unwrap();
        rs.rollback(2, &[k(1)]);
        let got = rs.get(&k(1), 100, None).unwrap().unwrap();
        assert_eq!(got.get(1), &Value::str("v1"));
        assert_eq!(rs.get_latest_committed(&k(1)).unwrap().unwrap().get(1), &Value::str("v1"));
    }

    #[test]
    fn lock_conflict_between_writers() {
        let rs = RowStore::with_lock_timeout(Duration::from_millis(20));
        rs.write(1, &k(5), Some(row(5, "a"))).unwrap();
        let err = rs.write(2, &k(5), Some(row(5, "b"))).unwrap_err();
        assert!(err.is_retryable());
        rs.commit(1, 10, &[k(5)]);
        rs.write(2, &k(5), Some(row(5, "b"))).unwrap();
        rs.commit(2, 20, &[k(5)]);
        assert_eq!(rs.get(&k(5), 20, None).unwrap().unwrap().get(1), &Value::str("b"));
    }

    #[test]
    fn scan_in_key_order_skips_deleted() {
        let rs = RowStore::new();
        for i in [3i64, 1, 2] {
            rs.write(1, &k(i), Some(row(i, "v"))).unwrap();
        }
        rs.commit(1, 10, &[k(1), k(2), k(3)]);
        rs.write(2, &k(2), None).unwrap();
        rs.commit(2, 20, &[k(2)]);
        let mut seen = Vec::new();
        rs.for_each_visible(25, None, |key, _| seen.push(key[0].as_int().unwrap()));
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn scan_from_prefix() {
        let rs = RowStore::new();
        for i in 0..10 {
            rs.write(1, &k(i), Some(row(i, "v"))).unwrap();
        }
        let keys: Vec<Vec<Value>> = (0..10).map(k).collect();
        rs.commit(1, 10, &keys);
        let mut seen = Vec::new();
        rs.for_each_visible_from(&k(7), 10, None, |key, _| {
            seen.push(key[0].as_int().unwrap());
            true
        });
        assert_eq!(seen, vec![7, 8, 9]);
    }

    #[test]
    fn gc_reclaims_deleted_keys() {
        let mut rs = RowStore::new();
        rs.write(1, &k(1), Some(row(1, "x"))).unwrap();
        rs.commit(1, 10, &[k(1)]);
        rs.write(2, &k(1), None).unwrap();
        rs.commit(2, 20, &[k(1)]);
        assert_eq!(rs.key_count(), 1);
        let (removed, _) = rs.gc(30);
        assert_eq!(removed, 1);
        assert_eq!(rs.key_count(), 0);
        assert!(rs.get(&k(1), 100, None).is_none());
    }

    #[test]
    fn gc_keeps_visible_history() {
        let mut rs = RowStore::new();
        for (txn, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            rs.write(txn, &k(1), Some(row(1, &format!("v{ts}")))).unwrap();
            rs.commit(txn, ts, &[k(1)]);
        }
        rs.gc(25);
        // Reader at 25 must still see v20.
        assert_eq!(rs.get(&k(1), 25, None).unwrap().unwrap().get(1), &Value::str("v20"));
        assert_eq!(rs.get(&k(1), 35, None).unwrap().unwrap().get(1), &Value::str("v30"));
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let rs = Arc::new(RowStore::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let rs = Arc::clone(&rs);
                std::thread::spawn(move || {
                    let txn = t + 1;
                    let keys: Vec<Vec<Value>> = (0..200).map(|i| k((i * 8 + t) as i64)).collect();
                    for key in &keys {
                        rs.write(txn, key, Some(row(key[0].as_int().unwrap(), "w"))).unwrap();
                    }
                    rs.commit(txn, 10 + t, &keys);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        rs.for_each_visible(100, None, |_, _| count += 1);
        assert_eq!(count, 1600);
    }

    #[test]
    fn lock_key_without_write() {
        let rs = RowStore::with_lock_timeout(Duration::from_millis(10));
        rs.lock_key(1, &k(9)).unwrap();
        assert!(rs.write(2, &k(9), Some(row(9, "x"))).is_err());
        rs.unlock_key(1, &k(9));
        assert!(rs.write(2, &k(9), Some(row(9, "x"))).is_ok());
    }
}
