//! Multi-version concurrency control primitives stored on each skiplist node
//! (paper §2.1.1: "each node stores a linked list of versions of the row...
//! writes use pessimistic concurrency control, implemented using row locks
//! stored on each skiplist node").

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use s2_common::{Error, Result, Row, Timestamp, TxnId, TS_ABORTED, TS_UNCOMMITTED};

/// One version of a row. `data == None` is a delete marker.
pub struct Version {
    /// Commit timestamp; starts at [`TS_UNCOMMITTED`], transitions exactly
    /// once to a commit timestamp or [`TS_ABORTED`].
    ts: AtomicU64,
    /// Writing transaction.
    pub txn: TxnId,
    /// Row payload; `None` marks deletion.
    pub data: Option<Row>,
    /// Older version (immutable after creation).
    next: *mut Version,
}

impl Version {
    /// Current timestamp state.
    pub fn timestamp(&self) -> Timestamp {
        self.ts.load(Ordering::Acquire)
    }
}

/// Newest-first chain of row versions. Readers walk it lock-free; writers
/// prepend while holding the node's [`RowLock`].
pub struct VersionChain {
    head: AtomicPtr<Version>,
}

impl Default for VersionChain {
    fn default() -> Self {
        VersionChain { head: AtomicPtr::new(ptr::null_mut()) }
    }
}

// SAFETY: versions are immutable except for the one-shot `ts` atomic, and are
// only freed under exclusive access (gc / Drop).
unsafe impl Send for VersionChain {}
// SAFETY: see the Send impl above — same argument.
unsafe impl Sync for VersionChain {}

impl VersionChain {
    /// Prepend an uncommitted version. Caller must hold the row lock, which
    /// serializes writers; the store ordering publishes to lock-free readers.
    pub fn push(&self, txn: TxnId, data: Option<Row>) {
        let head = self.head.load(Ordering::Relaxed);
        let v = Box::into_raw(Box::new(Version {
            ts: AtomicU64::new(TS_UNCOMMITTED),
            txn,
            data,
            next: head,
        }));
        self.head.store(v, Ordering::Release);
    }

    /// Walk the chain and return the version visible at `read_ts` for
    /// `self_txn` (a transaction always sees its own uncommitted writes).
    pub fn visible(&self, read_ts: Timestamp, self_txn: Option<TxnId>) -> Option<&Version> {
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            // SAFETY: curr was loaded from the live chain; versions are only
            // freed under exclusive access (gc / Drop), never under &self.
            let v = unsafe { &*curr };
            let ts = v.timestamp();
            let is_visible = if ts == TS_UNCOMMITTED {
                self_txn == Some(v.txn)
            } else {
                ts != TS_ABORTED && ts <= read_ts
            };
            if is_visible {
                return Some(v);
            }
            curr = v.next;
        }
        None
    }

    /// The newest committed version regardless of snapshot (used by unique
    /// checks, which must see the latest committed state, and by flush).
    pub fn latest_committed(&self) -> Option<&Version> {
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            // SAFETY: curr was loaded from the live chain; versions are only
            // freed under exclusive access (gc / Drop), never under &self.
            let v = unsafe { &*curr };
            let ts = v.timestamp();
            if ts != TS_UNCOMMITTED && ts != TS_ABORTED {
                return Some(v);
            }
            curr = v.next;
        }
        None
    }

    /// Resolve all versions owned by `txn`: commit them at `commit_ts` or
    /// mark them aborted.
    pub fn resolve(&self, txn: TxnId, outcome: Option<Timestamp>) {
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            // SAFETY: curr was loaded from the live chain; versions are only
            // freed under exclusive access (gc / Drop), never under &self.
            let v = unsafe { &*curr };
            if v.txn == txn && v.timestamp() == TS_UNCOMMITTED {
                v.ts.store(outcome.unwrap_or(TS_ABORTED), Ordering::Release);
            }
            curr = v.next;
        }
    }

    /// Drop versions that no reader at or after `horizon` can see: everything
    /// strictly older than the newest version with `ts <= horizon`, plus all
    /// aborted versions. Requires exclusive access. Returns (live, freed):
    /// whether any version remains and how many were freed.
    pub fn gc(&mut self, horizon: Timestamp) -> (bool, usize) {
        let mut freed = 0;
        // SAFETY: &mut self guarantees no concurrent readers, so unlinking
        // and freeing superseded versions is exclusive; every pointer walked
        // came from the chain and is freed at most once.
        unsafe {
            // Phase 1: unlink aborted versions anywhere in the chain.
            let mut link: *mut *mut Version = self.head.as_ptr();
            while !(*link).is_null() {
                let v = *link;
                if (*v).timestamp() == TS_ABORTED {
                    *link = (*v).next;
                    drop(Box::from_raw(v));
                    freed += 1;
                } else {
                    link = &mut (*v).next;
                }
            }
            // Phase 2: find the newest committed version <= horizon; free all after.
            let mut curr = *self.head.as_ptr();
            let mut anchor: *mut Version = ptr::null_mut();
            while !curr.is_null() {
                let ts = (*curr).timestamp();
                if ts != TS_UNCOMMITTED && ts <= horizon {
                    anchor = curr;
                    break;
                }
                curr = (*curr).next;
            }
            if !anchor.is_null() {
                let mut victim = (*anchor).next;
                (*anchor).next = ptr::null_mut();
                while !victim.is_null() {
                    let next = (*victim).next;
                    drop(Box::from_raw(victim));
                    freed += 1;
                    victim = next;
                }
            }
            ((!(*self.head.as_ptr()).is_null()), freed)
        }
    }

    /// True when the chain holds no versions at all.
    pub fn is_unused(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl Drop for VersionChain {
    fn drop(&mut self) {
        let mut curr = *self.head.get_mut();
        while !curr.is_null() {
            // SAFETY: Drop has exclusive access; each version was allocated
            // via Box::into_raw and is freed exactly once here.
            let next = unsafe { (*curr).next };
            // SAFETY: same exclusivity argument as the read above.
            drop(unsafe { Box::from_raw(curr) });
            curr = next;
        }
    }
}

/// A per-row pessimistic lock: the word holds the owning transaction id
/// (0 = free). Reentrant for the owner.
#[derive(Default)]
pub struct RowLock {
    owner: AtomicU64,
}

impl RowLock {
    /// Try to take the lock for `txn` without blocking.
    pub fn try_lock(&self, txn: TxnId) -> bool {
        debug_assert_ne!(txn, 0, "txn id 0 is reserved for 'unlocked'");
        match self.owner.compare_exchange(0, txn, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => true,
            Err(current) => current == txn,
        }
    }

    /// Take the lock for `txn`, spinning (with yields) up to `timeout`.
    pub fn lock(&self, txn: TxnId, timeout: Duration) -> Result<()> {
        if self.try_lock(txn) {
            return Ok(());
        }
        s2_obs::counter!("rowstore.lock.conflicts").inc();
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if self.try_lock(txn) {
                return Ok(());
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                if Instant::now() >= deadline {
                    let owner = self.owner.load(Ordering::Relaxed);
                    s2_obs::counter!("rowstore.lock.timeouts").inc();
                    s2_obs::event(
                        "rowstore.lock_timeout",
                        format!("txn {txn} timed out waiting for txn {owner}"),
                    );
                    return Err(Error::LockConflict(format!("row locked by txn {owner}")));
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Release the lock if held by `txn`.
    pub fn unlock(&self, txn: TxnId) {
        let _ = self.owner.compare_exchange(txn, 0, Ordering::Release, Ordering::Relaxed);
    }

    /// Current owner (0 = unlocked). Diagnostic only.
    pub fn owner(&self) -> TxnId {
        self.owner.load(Ordering::Relaxed)
    }
}

/// Skiplist node payload: the row lock plus the version chain.
#[derive(Default)]
pub struct RowEntry {
    /// Pessimistic writer lock.
    pub lock: RowLock,
    /// MVCC version chain.
    pub chain: VersionChain,
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i)])
    }

    #[test]
    fn own_writes_visible_before_commit() {
        let c = VersionChain::default();
        c.push(7, Some(row(1)));
        assert!(c.visible(100, None).is_none());
        assert!(c.visible(0, Some(7)).is_some());
        c.resolve(7, Some(10));
        assert!(c.visible(9, None).is_none());
        assert!(c.visible(10, None).is_some());
    }

    #[test]
    fn snapshot_sees_right_version() {
        let c = VersionChain::default();
        c.push(1, Some(row(1)));
        c.resolve(1, Some(10));
        c.push(2, Some(row(2)));
        c.resolve(2, Some(20));
        c.push(3, None); // delete
        c.resolve(3, Some(30));
        assert_eq!(c.visible(15, None).unwrap().data.as_ref().unwrap().get(0), &Value::Int(1));
        assert_eq!(c.visible(25, None).unwrap().data.as_ref().unwrap().get(0), &Value::Int(2));
        assert!(c.visible(35, None).unwrap().data.is_none(), "sees the delete marker");
        assert!(c.visible(5, None).is_none());
    }

    #[test]
    fn aborted_versions_skipped() {
        let c = VersionChain::default();
        c.push(1, Some(row(1)));
        c.resolve(1, Some(10));
        c.push(2, Some(row(2)));
        c.resolve(2, None); // abort
        let v = c.visible(100, None).unwrap();
        assert_eq!(v.data.as_ref().unwrap().get(0), &Value::Int(1));
        assert_eq!(c.latest_committed().unwrap().timestamp(), 10);
    }

    #[test]
    fn gc_prunes_history_and_aborts() {
        let mut c = VersionChain::default();
        for i in 1..=5 {
            c.push(i, Some(row(i as i64)));
            c.resolve(i, Some(i * 10));
        }
        c.push(6, Some(row(6)));
        c.resolve(6, None); // aborted
        let (live, freed) = c.gc(35);
        assert!(live);
        // Versions at 10, 20 are behind the anchor at 30; aborted one also freed.
        assert_eq!(freed, 3);
        assert!(c.visible(30, None).is_some());
        assert!(c.visible(50, None).is_some());
    }

    #[test]
    fn row_lock_reentrant_and_exclusive() {
        let l = RowLock::default();
        assert!(l.try_lock(1));
        assert!(l.try_lock(1), "reentrant for owner");
        assert!(!l.try_lock(2));
        assert!(l.lock(2, Duration::from_millis(10)).is_err());
        l.unlock(1);
        assert!(l.try_lock(2));
    }

    #[test]
    fn unlock_by_non_owner_is_noop() {
        let l = RowLock::default();
        assert!(l.try_lock(1));
        l.unlock(2);
        assert_eq!(l.owner(), 1);
    }
}
