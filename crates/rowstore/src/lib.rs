//! In-memory MVCC rowstore (paper §2.1.1).
//!
//! A concurrent skiplist with lock-free reads indexes row keys; each node
//! carries a version chain (multiversion concurrency control, so readers
//! never wait on writers) and a row lock (pessimistic concurrency control
//! for writers). In the unified table storage this crate is both the LSM
//! level-0 write buffer and the row-lock manager for move transactions
//! (paper §4.2).

pub mod mvcc;
pub mod skiplist;
pub mod store;

pub use mvcc::{RowEntry, RowLock, Version, VersionChain};
pub use skiplist::{cmp_keys, Node, SkipList};
pub use store::{RowStore, DEFAULT_LOCK_TIMEOUT};
