//! A concurrent skiplist with lock-free reads (paper §2.1.1: "each index in
//! an S2DB in-memory rowstore table uses a lockfree skiplist").
//!
//! Design notes:
//! - Nodes are **never physically removed** while the list is shared; logical
//!   deletion happens one level up, in the MVCC version chain. This removes
//!   the need for hazard pointers / epoch reclamation: any pointer a reader
//!   loads stays valid for the lifetime of the list borrow. Garbage
//!   collection of empty nodes runs under `&mut self` (exclusive access,
//!   e.g. after a flush), where unlinking and freeing are trivially safe.
//! - Inserts are lock-free: level-0 linkage is a CAS; upper levels are linked
//!   by CAS loops that re-search on contention.
//! - Each node owns its payload `T` (for the rowstore: the version chain and
//!   the row-lock word).

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use s2_common::Value;

const MAX_HEIGHT: usize = 16;

/// Compare two multi-column keys lexicographically by value total order.
pub fn cmp_keys(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// One skiplist node: key, payload and a tower of forward pointers.
pub struct Node<T> {
    /// The node's key (immutable after insert).
    pub key: Box<[Value]>,
    /// Caller payload (version chain + lock word for the rowstore).
    pub payload: T,
    tower: Box<[AtomicPtr<Node<T>>]>,
}

impl<T> Node<T> {
    fn height(&self) -> usize {
        self.tower.len()
    }
}

/// Concurrent skiplist keyed by `[Value]` tuples.
pub struct SkipList<T> {
    head: *mut Node<T>,
    len: AtomicUsize,
    rng: AtomicU64,
}

// SAFETY: all shared mutation is via atomics; nodes are only freed under
// exclusive access (&mut self or Drop). `T` must itself be shareable.
unsafe impl<T: Send + Sync> Send for SkipList<T> {}
// SAFETY: see the Send impl above — same argument.
unsafe impl<T: Send + Sync> Sync for SkipList<T> {}

impl<T: Default> Default for SkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SkipList<T> {
    /// Empty list. The head sentinel's payload is `T::default()` and is never
    /// observed by callers.
    pub fn new() -> SkipList<T>
    where
        T: Default,
    {
        let tower: Vec<AtomicPtr<Node<T>>> =
            (0..MAX_HEIGHT).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        let head = Box::into_raw(Box::new(Node {
            key: Vec::new().into_boxed_slice(),
            payload: T::default(),
            tower: tower.into_boxed_slice(),
        }));
        SkipList { head, len: AtomicUsize::new(0), rng: AtomicU64::new(0x853c_49e6_748f_ea9b) }
    }

    /// Number of nodes (including ones whose payload is logically dead).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn random_height(&self) -> usize {
        // xorshift over a shared seed; contention here is harmless.
        let mut x = self.rng.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let bits = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Find, at every level, the last node with key < `key`.
    /// Returns (preds, succs); `succs[0]` is the first node with key >= `key`.
    fn find(&self, key: &[Value]) -> ([*mut Node<T>; MAX_HEIGHT], [*mut Node<T>; MAX_HEIGHT]) {
        let mut preds = [self.head; MAX_HEIGHT];
        let mut succs = [ptr::null_mut(); MAX_HEIGHT];
        let mut pred = self.head;
        for lvl in (0..MAX_HEIGHT).rev() {
            // SAFETY: pred is head or a node reachable from head; never freed
            // while &self is alive.
            let mut curr = unsafe { (*pred).tower[lvl].load(Ordering::Acquire) };
            while !curr.is_null() {
                // SAFETY: curr was loaded from a live tower and is non-null;
                // nodes are never freed while &self is alive.
                let curr_ref = unsafe { &*curr };
                if cmp_keys(&curr_ref.key, key) == std::cmp::Ordering::Less {
                    pred = curr;
                    curr = curr_ref.tower[lvl].load(Ordering::Acquire);
                } else {
                    break;
                }
            }
            preds[lvl] = pred;
            succs[lvl] = curr;
        }
        (preds, succs)
    }

    /// Lock-free lookup.
    pub fn get(&self, key: &[Value]) -> Option<&Node<T>> {
        let (_, succs) = self.find(key);
        let cand = succs[0];
        if cand.is_null() {
            return None;
        }
        // SAFETY: cand is non-null and reachable from head; nodes are never
        // freed while &self is alive, so the reference lives as long as &self.
        let node = unsafe { &*cand };
        (cmp_keys(&node.key, key) == std::cmp::Ordering::Equal).then_some(node)
    }

    /// Insert a node with `key`, or return the existing one. `make` is called
    /// only when a new node is actually created (it may lose the race and be
    /// dropped, in which case the racing winner is returned).
    pub fn insert_or_get(&self, key: &[Value], make: impl FnOnce() -> T) -> (&Node<T>, bool) {
        let mut make = Some(make);
        let mut new_node: *mut Node<T> = ptr::null_mut();
        loop {
            let (preds, succs) = self.find(key);
            if !succs[0].is_null() {
                // SAFETY: non-null successor reachable from head; never
                // freed while &self is alive.
                let cand = unsafe { &*succs[0] };
                if cmp_keys(&cand.key, key) == std::cmp::Ordering::Equal {
                    // Lost the race (or key already present): free our draft node.
                    if !new_node.is_null() {
                        // SAFETY: new_node came from Box::into_raw below and
                        // was never published (the level-0 CAS did not
                        // succeed), so this thread still owns it exclusively.
                        drop(unsafe { Box::from_raw(new_node) });
                    }
                    return (cand, false);
                }
            }
            if new_node.is_null() {
                let height = self.random_height();
                let tower: Vec<AtomicPtr<Node<T>>> =
                    (0..height).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
                new_node = Box::into_raw(Box::new(Node {
                    key: key.to_vec().into_boxed_slice(),
                    // s2-lint: allow(unwrap, make is consumed exactly once: the CAS-retry loop reuses new_node instead of re-entering this arm)
                    payload: (make.take().expect("make called once"))(),
                    tower: tower.into_boxed_slice(),
                }));
            }
            // SAFETY: new_node is a valid allocation this thread owns until
            // the level-0 CAS publishes it; after that it stays live for the
            // list's lifetime.
            let node_ref = unsafe { &*new_node };
            let height = node_ref.height();
            node_ref.tower[0].store(succs[0], Ordering::Relaxed);
            // Level-0 CAS decides success.
            // SAFETY: preds[0] is head or a reachable node; never freed
            // while &self is alive.
            let pred0 = unsafe { &*preds[0] };
            if pred0.tower[0]
                .compare_exchange(succs[0], new_node, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue; // somebody changed the neighbourhood; re-search
            }
            self.len.fetch_add(1, Ordering::Relaxed);
            // Link upper levels best-effort (re-searching on contention).
            for lvl in 1..height {
                loop {
                    let (preds, succs) = self.find(key);
                    // Another inserter of the same key is impossible (level 0
                    // is linked), so preds/succs straddle our node or point at it.
                    if succs[lvl] == new_node {
                        break; // already linked at this level
                    }
                    node_ref.tower[lvl].store(succs[lvl], Ordering::Relaxed);
                    // SAFETY: as for pred0 — reachable, never freed under &self.
                    let pred = unsafe { &*preds[lvl] };
                    if pred.tower[lvl]
                        .compare_exchange(succs[lvl], new_node, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            // SAFETY: new_node was published by the level-0 CAS and is now
            // owned by the list, which outlives the returned reference.
            return (unsafe { &*new_node }, true);
        }
    }

    /// Iterate nodes in key order starting at the first key >= `from`
    /// (or from the beginning when `from` is `None`).
    pub fn iter_from(&self, from: Option<&[Value]>) -> Iter<'_, T> {
        let start = match from {
            // SAFETY: head is a valid allocation for the list's lifetime.
            None => unsafe { (*self.head).tower[0].load(Ordering::Acquire) },
            Some(key) => self.find(key).1[0],
        };
        Iter { curr: start, _list: self }
    }

    /// Iterate all nodes in key order.
    pub fn iter(&self) -> Iter<'_, T> {
        self.iter_from(None)
    }

    /// Remove nodes for which `dead` returns true, giving the predicate
    /// mutable access to each node exactly once (so it can e.g. garbage
    /// collect a version chain while deciding). Exclusive access makes the
    /// unlink + free safe: no concurrent readers can exist behind `&mut`.
    pub fn retain_mut(&mut self, mut dead: impl FnMut(&mut Node<T>) -> bool) -> usize {
        // SAFETY: &mut self guarantees no concurrent readers or writers, so
        // raw traversal, mutable node access, unlinking and freeing are all
        // exclusive; every pointer walked is head or reachable from it.
        unsafe {
            // Pass 1: decide deaths walking level 0 (each node visited once).
            let mut victims: std::collections::HashSet<usize> = std::collections::HashSet::new();
            let mut curr = (*self.head).tower[0].load(Ordering::Relaxed);
            while !curr.is_null() {
                let next = (*curr).tower[0].load(Ordering::Relaxed);
                if dead(&mut *curr) {
                    victims.insert(curr as usize);
                }
                curr = next;
            }
            // Pass 2: unlink victims at every level.
            for lvl in 0..MAX_HEIGHT {
                let mut pred = self.head;
                let mut curr = (*pred).tower[lvl].load(Ordering::Relaxed);
                while !curr.is_null() {
                    let next = (*curr).tower[lvl].load(Ordering::Relaxed);
                    if victims.contains(&(curr as usize)) {
                        (*pred).tower[lvl].store(next, Ordering::Relaxed);
                    } else {
                        pred = curr;
                    }
                    curr = next;
                }
            }
            let removed = victims.len();
            for v in victims {
                drop(Box::from_raw(v as *mut Node<T>));
            }
            self.len.fetch_sub(removed, Ordering::Relaxed);
            removed
        }
    }
}

impl<T> Drop for SkipList<T> {
    fn drop(&mut self) {
        // SAFETY: Drop has exclusive access; every node (and head) was
        // allocated via Box::into_raw and is freed exactly once here.
        unsafe {
            let mut curr = (*self.head).tower[0].load(Ordering::Relaxed);
            while !curr.is_null() {
                let next = (*curr).tower[0].load(Ordering::Relaxed);
                drop(Box::from_raw(curr));
                curr = next;
            }
            drop(Box::from_raw(self.head));
        }
    }
}

/// Level-0 iterator over nodes in key order.
pub struct Iter<'a, T> {
    curr: *mut Node<T>,
    _list: &'a SkipList<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a Node<T>;

    fn next(&mut self) -> Option<&'a Node<T>> {
        if self.curr.is_null() {
            return None;
        }
        // SAFETY: curr is non-null and reachable from head; nodes are never
        // freed while the iterator borrows the list.
        let node = unsafe { &*self.curr };
        self.curr = node.tower[0].load(Ordering::Acquire);
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    #[test]
    fn insert_get_ordered_iter() {
        let list: SkipList<i64> = SkipList::new();
        for i in [5i64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            let (_, created) = list.insert_or_get(&k(i), || i * 10);
            assert!(created);
        }
        assert_eq!(list.len(), 10);
        assert_eq!(list.get(&k(7)).unwrap().payload, 70);
        assert!(list.get(&k(42)).is_none());
        let keys: Vec<i64> = list.iter().map(|n| n.key[0].as_int().unwrap()).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn insert_duplicate_returns_existing() {
        let list: SkipList<i64> = SkipList::new();
        let (_, created) = list.insert_or_get(&k(1), || 100);
        assert!(created);
        let (node, created) = list.insert_or_get(&k(1), || 200);
        assert!(!created);
        assert_eq!(node.payload, 100);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn iter_from_seeks() {
        let list: SkipList<()> = SkipList::new();
        for i in (0..100).step_by(10) {
            list.insert_or_get(&k(i), || ());
        }
        let from = k(35);
        let got: Vec<i64> =
            list.iter_from(Some(&from)).map(|n| n.key[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn multi_column_keys() {
        let list: SkipList<()> = SkipList::new();
        list.insert_or_get(&[Value::Int(1), Value::str("b")], || ());
        list.insert_or_get(&[Value::Int(1), Value::str("a")], || ());
        list.insert_or_get(&[Value::Int(0), Value::str("z")], || ());
        let keys: Vec<String> = list.iter().map(|n| format!("{}{}", n.key[0], n.key[1])).collect();
        assert_eq!(keys, vec!["0z", "1a", "1b"]);
    }

    #[test]
    fn retain_removes_and_frees() {
        let mut list: SkipList<i64> = SkipList::new();
        for i in 0..50 {
            list.insert_or_get(&k(i), || i);
        }
        let removed = list.retain_mut(|n| n.payload % 2 == 0);
        assert_eq!(removed, 25);
        assert_eq!(list.len(), 25);
        let keys: Vec<i64> = list.iter().map(|n| n.payload).collect();
        assert!(keys.iter().all(|v| v % 2 == 1));
        // Lookups still work after unlinking.
        assert!(list.get(&k(2)).is_none());
        assert!(list.get(&k(3)).is_some());
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let list: Arc<SkipList<u64>> = Arc::new(SkipList::new());
        let threads = 8;
        let per = 500;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..per {
                        list.insert_or_get(&k((i * threads + t) as i64), || 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.len(), threads as usize * per as usize);
        let keys: Vec<i64> = list.iter().map(|n| n.key[0].as_int().unwrap()).collect();
        assert_eq!(keys.len(), threads as usize * per as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "iteration must be sorted");
    }

    #[test]
    fn concurrent_same_key_single_winner() {
        let list: Arc<SkipList<u64>> = Arc::new(SkipList::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut created = 0;
                    for i in 0..200 {
                        let (_, c) = list.insert_or_get(&k(i), || t);
                        if c {
                            created += 1;
                        }
                    }
                    created
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200, "each key created exactly once");
        assert_eq!(list.len(), 200);
    }
}
