//! Logical query plans. Queries are built through this typed API directly,
//! or compiled from SQL text by the `s2-sql` front end (lexer → parser →
//! planner → optimizer), which lowers every statement to these nodes; the
//! hand-built benchmark plans and their SQL-text forms are asserted
//! byte-identical in `s2-workloads`.

use s2_common::DataType;
use s2_exec::{Aggregate, Expr, JoinType, SortDir};

/// A logical plan node. Column references in expressions are *table
/// ordinals* inside `Scan.filter` and *batch positions* everywhere else.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan a table: project `projection` (table ordinals) from rows passing
    /// `filter`.
    Scan {
        /// Table name.
        table: String,
        /// Output columns as table ordinals.
        projection: Vec<usize>,
        /// Predicate over table ordinals (pushed into the adaptive scan).
        filter: Option<Expr>,
    },
    /// Filter rows of the input (batch positions).
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over batch positions.
        predicate: Expr,
    },
    /// Compute expressions over the input.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// (expression, output type) per output column.
        exprs: Vec<(Expr, DataType)>,
    },
    /// Hash equi-join. Output = left columns then right columns
    /// (Semi/Anti: left columns only).
    Join {
        /// Probe side.
        left: Box<Plan>,
        /// Build side.
        right: Box<Plan>,
        /// Probe-side key positions.
        left_keys: Vec<usize>,
        /// Build-side key positions.
        right_keys: Vec<usize>,
        /// Join type.
        join_type: JoinType,
        /// Residual predicate over combined positions (left then right).
        residual: Option<Expr>,
    },
    /// Hash aggregation. Output = group keys then aggregate results.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by expressions (batch positions).
        group_by: Vec<Expr>,
        /// Aggregates.
        aggregates: Vec<Aggregate>,
    },
    /// Sort (optionally top-N).
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// (batch position, direction) sort keys.
        keys: Vec<(usize, SortDir)>,
        /// Optional row limit applied after the sort.
        limit: Option<usize>,
    },
    /// Row limit without sorting.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum rows.
        n: usize,
    },
}

impl Plan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>, projection: Vec<usize>, filter: Option<Expr>) -> Plan {
        Plan::Scan { table: table.into(), projection, filter }
    }

    /// Filter builder.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter { input: Box::new(self), predicate }
    }

    /// Projection builder.
    pub fn project(self, exprs: Vec<(Expr, DataType)>) -> Plan {
        Plan::Project { input: Box::new(self), exprs }
    }

    /// Inner-join builder.
    pub fn join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            join_type: JoinType::Inner,
            residual: None,
        }
    }

    /// Join builder with explicit type and residual.
    pub fn join_full(
        self,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        residual: Option<Expr>,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            join_type,
            residual,
        }
    }

    /// Aggregation builder.
    pub fn aggregate(self, group_by: Vec<Expr>, aggregates: Vec<Aggregate>) -> Plan {
        Plan::Aggregate { input: Box::new(self), group_by, aggregates }
    }

    /// Sort builder.
    pub fn sort(self, keys: Vec<(usize, SortDir)>, limit: Option<usize>) -> Plan {
        Plan::Sort { input: Box::new(self), keys, limit }
    }

    /// Limit builder.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit { input: Box::new(self), n }
    }
}
