//! The plan executor.
//!
//! Notable adaptivity (paper §5.1): small build sides turn equi-joins into
//! *join index filters* — the build side's distinct keys are pushed into the
//! probe side's scan as an IN-list, which the adaptive scan answers with
//! secondary-index probes when cheap and falls back to a full scan (and the
//! join to a plain hash join) when the key count is too high. The index
//! filter has no false positives, and the hash join afterwards re-verifies
//! equality anyway.

use std::collections::HashSet;
use std::sync::Arc;

use s2_common::{Result, Value};
use s2_core::TableSnapshot;
use s2_exec::{hash_aggregate, hash_join, scan, sort_batch, Batch, Expr, ScanOptions, ScanStats};

use crate::plan::Plan;

/// Source of table snapshots for a query: a single partition or (in the
/// cluster layer) an aggregator that unions partitions.
pub trait QueryContext {
    /// Resolve a table to one or more snapshots whose scan results are
    /// unioned (one per partition holding a shard of the table).
    fn snapshots(&self, table: &str) -> Result<Vec<Arc<TableSnapshot>>>;
}

/// Execution tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Options forwarded to every table scan.
    pub scan: ScanOptions,
    /// Build sides at or below this row count are pushed into the probe
    /// scan as a join index filter. 0 disables the optimization.
    pub join_index_threshold: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { scan: ScanOptions::default(), join_index_threshold: 128 }
    }
}

/// Cumulative statistics for one query execution.
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    /// Aggregated scan counters.
    pub scan: ScanStats,
    /// Joins executed as join index filters.
    pub join_index_filters: usize,
    /// Joins executed as plain hash joins.
    pub hash_joins: usize,
}

/// Execute `plan` against `ctx`.
pub fn execute(plan: &Plan, ctx: &dyn QueryContext, opts: &ExecOptions) -> Result<Batch> {
    let mut stats = ExecStats::default();
    execute_with_stats(plan, ctx, opts, &mut stats)
}

/// Execute, accumulating statistics.
pub fn execute_with_stats(
    plan: &Plan,
    ctx: &dyn QueryContext,
    opts: &ExecOptions,
    stats: &mut ExecStats,
) -> Result<Batch> {
    match plan {
        Plan::Scan { table, projection, filter } => {
            let snaps = ctx.snapshots(table)?;
            // Scatter: partition snapshots fan into the shared morsel pool,
            // like the paper's leaves ("leaf nodes ... are responsible for
            // the bulk of compute"). Each partition scan then fans its own
            // segments into the same pool (nested runs are deadlock-free:
            // the waiting caller drains queued morsels itself). Results come
            // back in partition order, so output is deterministic.
            // Small scans (by metadata estimate) stay serial: pool handoff
            // costs more than sub-morsel scans save.
            let threads = s2_exec::effective_threads(opts.scan.threads);
            let est: usize =
                snaps.iter().map(|s| s2_exec::scan::estimate_scan_rows(s, filter.as_ref())).sum();
            let fan_out =
                snaps.len() > 1 && threads > 1 && est > s2_exec::scan::SMALL_SCAN_INLINE_ROWS;
            let parts: Vec<Result<(Batch, ScanStats)>> = if fan_out {
                let projection = projection.clone();
                let filter = filter.clone();
                let scan_opts = opts.scan.clone();
                s2_exec::ScanPool::global().run(threads, snaps, move |snap| {
                    scan(&snap, &projection, filter.as_ref(), &scan_opts)
                })
            } else {
                snaps.iter().map(|s| scan(s, projection, filter.as_ref(), &opts.scan)).collect()
            };
            let mut batches = Vec::with_capacity(parts.len());
            for p in parts {
                let (batch, s) = p?;
                stats.scan.merge(&s);
                batches.push(batch);
            }
            Batch::concat(&batches)
        }
        Plan::Filter { input, predicate } => {
            let batch = execute_with_stats(input, ctx, opts, stats)?;
            let sel = batch.filter(predicate, None)?;
            Ok(batch.gather(&sel))
        }
        Plan::Project { input, exprs } => {
            let batch = execute_with_stats(input, ctx, opts, stats)?;
            let mut cols = Vec::with_capacity(exprs.len());
            for (e, t) in exprs {
                cols.push(batch.eval_expr(e, *t)?);
            }
            Ok(Batch::new(cols))
        }
        Plan::Join { left, right, left_keys, right_keys, join_type, residual } => {
            let right_batch = execute_with_stats(right, ctx, opts, stats)?;
            // Adaptive join index filter: push the (small) build side's keys
            // into a probe-side scan.
            // Only Inner/Semi joins may restrict the probe side: Left and
            // Anti joins must still see unmatched probe rows.
            let filter_ok = matches!(join_type, s2_exec::JoinType::Inner | s2_exec::JoinType::Semi);
            let left_plan = if filter_ok {
                maybe_push_join_filter(left, &right_batch, left_keys, right_keys, opts, stats)
            } else {
                None
            };
            let left_batch = match &left_plan {
                Some(pushed) => execute_with_stats(pushed, ctx, opts, stats)?,
                None => execute_with_stats(left, ctx, opts, stats)?,
            };
            if left_plan.is_none() {
                stats.hash_joins += 1;
            }
            hash_join(
                &left_batch,
                &right_batch,
                left_keys,
                right_keys,
                *join_type,
                residual.as_ref(),
            )
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            // Aggregate-over-scan fuses into the encoded-domain path: group
            // keys on dictionary codes, typed accumulation lanes, no
            // intermediate batch. Bit-identical to scan + hash_aggregate.
            if let Plan::Scan { table, projection, filter } = input.as_ref() {
                if opts.scan.encoded_exec {
                    let snaps = ctx.snapshots(table)?;
                    let (batch, s) = s2_exec::scan_aggregate(
                        &snaps,
                        projection,
                        filter.as_ref(),
                        group_by,
                        aggregates,
                        &opts.scan,
                    )?;
                    stats.scan.merge(&s);
                    return Ok(batch);
                }
            }
            let batch = execute_with_stats(input, ctx, opts, stats)?;
            hash_aggregate(&batch, group_by, aggregates)
        }
        Plan::Sort { input, keys, limit } => {
            let batch = execute_with_stats(input, ctx, opts, stats)?;
            Ok(sort_batch(&batch, keys, *limit))
        }
        Plan::Limit { input, n } => {
            let batch = execute_with_stats(input, ctx, opts, stats)?;
            let sel: Vec<u32> = (0..batch.rows().min(*n) as u32).collect();
            Ok(batch.gather(&sel))
        }
    }
}

/// If the join qualifies, return a rewritten probe-side plan whose scan
/// carries an IN-list of the build side's distinct keys.
fn maybe_push_join_filter(
    left: &Plan,
    right_batch: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    opts: &ExecOptions,
    stats: &mut ExecStats,
) -> Option<Plan> {
    if opts.join_index_threshold == 0
        || left_keys.len() != 1
        || right_batch.rows() == 0
        || right_batch.rows() > opts.join_index_threshold
    {
        return None;
    }
    let Plan::Scan { table, projection, filter } = left else {
        return None;
    };
    // Map the probe key from batch position to table ordinal.
    let table_col = *projection.get(left_keys[0])?;
    let mut keys: HashSet<Value> = HashSet::new();
    for ri in 0..right_batch.rows() {
        let v = right_batch.value(right_keys[0], ri);
        if !v.is_null() {
            keys.insert(v);
        }
    }
    if keys.is_empty() || keys.len() > opts.join_index_threshold {
        return None;
    }
    let mut key_list: Vec<Value> = keys.into_iter().collect();
    key_list.sort();
    let in_list = Expr::InList(Box::new(Expr::Column(table_col)), key_list);
    let new_filter = match filter {
        Some(f) => Some(f.clone().and(in_list)),
        None => Some(in_list),
    };
    stats.join_index_filters += 1;
    Some(Plan::Scan { table: table.clone(), projection: projection.clone(), filter: new_filter })
}

/// Render a batch as aligned text rows (examples and debugging).
pub fn format_batch(batch: &Batch, headers: &[&str]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(batch.rows());
    for ri in 0..batch.rows() {
        let row: Vec<String> =
            (0..batch.width()).map(|ci| format_value(&batch.value(ci, ri))).collect();
        for (w, c) in widths.iter_mut().zip(&row) {
            *w = (*w).max(c.len());
        }
        cells.push(row);
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String], widths: &[usize]| -> String {
        cols.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    for row in &cells {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

fn format_value(v: &Value) -> String {
    match v {
        Value::Double(d) => format!("{d:.2}"),
        other => other.to_string(),
    }
}
