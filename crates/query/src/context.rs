//! Query contexts: single-partition execution (this module) and, in
//! `s2-cluster`, aggregator-side scatter/gather over many partitions.

use std::sync::Arc;

use s2_common::Result;
use s2_core::{PartitionSnapshot, TableSnapshot};

use crate::exec::QueryContext;

/// Execute against one partition's snapshot.
impl QueryContext for PartitionSnapshot {
    fn snapshots(&self, table: &str) -> Result<Vec<Arc<TableSnapshot>>> {
        Ok(vec![Arc::clone(self.table_by_name(table)?)])
    }
}

/// Execute against a fixed union of table snapshots (the aggregator path:
/// one snapshot per partition of each table).
pub struct UnionContext {
    tables: std::collections::HashMap<String, Vec<Arc<TableSnapshot>>>,
}

impl UnionContext {
    /// Empty context.
    pub fn new() -> UnionContext {
        UnionContext { tables: std::collections::HashMap::new() }
    }

    /// Register the partition snapshots of a table.
    pub fn add_table(&mut self, name: impl Into<String>, snaps: Vec<Arc<TableSnapshot>>) {
        self.tables.insert(name.into(), snaps);
    }

    /// Names of registered tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for UnionContext {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryContext for UnionContext {
    fn snapshots(&self, table: &str) -> Result<Vec<Arc<TableSnapshot>>> {
        self.tables
            .get(table)
            .cloned()
            .ok_or_else(|| s2_common::Error::NotFound(format!("table {table:?} in context")))
    }
}
