//! Logical plans, a small planner surface and the plan executor over the
//! vectorized kernels of `s2-exec`. Distributed (scatter/gather) execution
//! plugs in through the [`QueryContext`] trait, implemented for a single
//! partition here and for whole clusters in `s2-cluster`.

pub mod context;
pub mod exec;
pub mod plan;

pub use context::UnionContext;
pub use exec::{execute, execute_with_stats, format_batch, ExecOptions, ExecStats, QueryContext};
pub use plan::Plan;
