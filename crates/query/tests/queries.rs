//! Query-engine integration tests: plans spanning scans, joins (including
//! the adaptive join index filter), aggregation and sorting over real
//! unified-table data.

use std::sync::Arc;

use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{AggFunc, Aggregate, CmpOp, Expr, JoinType, SortDir};
use s2_query::{execute, execute_with_stats, ExecOptions, ExecStats, Plan};
use s2_wal::Log;

/// orders(id, customer, amount) + customers(id, name, region)
fn setup() -> Arc<Partition> {
    let p = Partition::new("p0", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let orders_schema = Schema::new(vec![
        ColumnDef::new("o_id", DataType::Int64),
        ColumnDef::new("o_cust", DataType::Int64),
        ColumnDef::new("o_amount", DataType::Double),
    ])
    .unwrap();
    let orders_opts = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_cust", vec![1])
        .with_segment_rows(200);
    let orders = p.create_table("orders", orders_schema, orders_opts).unwrap();

    let cust_schema = Schema::new(vec![
        ColumnDef::new("c_id", DataType::Int64),
        ColumnDef::new("c_name", DataType::Str),
        ColumnDef::new("c_region", DataType::Str),
    ])
    .unwrap();
    let cust_opts = TableOptions::new().with_unique("pk", vec![0]);
    let customers = p.create_table("customers", cust_schema, cust_opts).unwrap();

    let mut txn = p.begin();
    for c in 0..20i64 {
        txn.insert(
            customers,
            Row::new(vec![
                Value::Int(c),
                Value::str(format!("cust{c}")),
                Value::str(["NA", "EU", "APAC"][(c % 3) as usize]),
            ]),
        )
        .unwrap();
    }
    for o in 0..500i64 {
        txn.insert(
            orders,
            Row::new(vec![Value::Int(o), Value::Int(o % 20), Value::Double((o % 50) as f64)]),
        )
        .unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(orders, true).unwrap();
    p.flush_table(customers, true).unwrap();
    p
}

#[test]
fn scan_filter_project() {
    let p = setup();
    let snap = p.read_snapshot();
    let plan = Plan::scan("orders", vec![0, 2], Some(Expr::cmp(0, CmpOp::Lt, 10i64)));
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 10);
}

#[test]
fn join_orders_customers() {
    let p = setup();
    let snap = p.read_snapshot();
    // orders (o_cust at position 1) join customers (c_id at position 0).
    let plan = Plan::scan("orders", vec![0, 1, 2], None).join(
        Plan::scan("customers", vec![0, 1, 2], None),
        vec![1],
        vec![0],
    );
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 500, "every order has a customer");
    assert_eq!(out.width(), 6);
}

#[test]
fn join_index_filter_fires_for_small_build_side() {
    let p = setup();
    let snap = p.read_snapshot();
    // Build side: customers in region EU (7 rows) -> probe orders via index.
    let plan = Plan::scan("orders", vec![0, 1, 2], None).join(
        Plan::scan("customers", vec![0, 2], Some(Expr::eq(2, "EU"))),
        vec![1],
        vec![0],
    );
    let mut stats = ExecStats::default();
    let out = execute_with_stats(&plan, &snap, &ExecOptions::default(), &mut stats).unwrap();
    // Customers 1,4,7,10,13,16,19 (c % 3 == 1): 7 customers × 25 orders each.
    assert_eq!(out.rows(), 175);
    assert_eq!(stats.join_index_filters, 1);
    assert_eq!(stats.hash_joins, 0);

    // Disabled -> plain hash join, same result.
    let opts = ExecOptions { join_index_threshold: 0, ..Default::default() };
    let mut stats2 = ExecStats::default();
    let out2 = execute_with_stats(&plan, &snap, &opts, &mut stats2).unwrap();
    assert_eq!(out2.rows(), 175);
    assert_eq!(stats2.join_index_filters, 0);
    assert_eq!(stats2.hash_joins, 1);
}

#[test]
fn aggregate_by_region() {
    let p = setup();
    let snap = p.read_snapshot();
    let plan = Plan::scan("orders", vec![0, 1, 2], None)
        .join(Plan::scan("customers", vec![0, 2], None), vec![1], vec![0])
        // positions: 0 o_id, 1 o_cust, 2 o_amount, 3 c_id, 4 c_region
        .aggregate(
            vec![Expr::Column(4)],
            vec![
                Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) },
                Aggregate { func: AggFunc::Sum, input: Expr::Column(2) },
            ],
        )
        .sort(vec![(0, SortDir::Asc)], None);
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 3);
    assert_eq!(out.value(0, 0), Value::str("APAC"));
    let total: f64 = (0..3).map(|r| out.value(2, r).as_double().unwrap()).sum();
    let expected: f64 = (0..500).map(|o| (o % 50) as f64).sum();
    assert!((total - expected).abs() < 1e-6);
}

#[test]
fn semi_and_anti_join_plans() {
    let p = setup();
    let snap = p.read_snapshot();
    // Customers with at least one order of amount > 48.
    let big_orders = Plan::scan("orders", vec![1], Some(Expr::cmp(2, CmpOp::Gt, 48.0)));
    let plan = Plan::scan("customers", vec![0, 1], None).join_full(
        big_orders.clone(),
        vec![0],
        vec![0],
        JoinType::Semi,
        None,
    );
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    // Orders with amount 49: o % 50 == 49 -> customers o % 20: 9, 49%20=9, 69%20=9...
    // o = 49, 99, 149, ..., 499 -> customers 9, 19, 9, 19... -> {9, 19}.
    assert_eq!(out.rows(), 2);

    let plan = Plan::scan("customers", vec![0], None).join_full(
        big_orders,
        vec![0],
        vec![0],
        JoinType::Anti,
        None,
    );
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 18);
}

#[test]
fn sort_limit_and_plain_limit() {
    let p = setup();
    let snap = p.read_snapshot();
    let plan = Plan::scan("orders", vec![0, 2], None)
        .sort(vec![(1, SortDir::Desc), (0, SortDir::Asc)], Some(5));
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 5);
    assert_eq!(out.value(1, 0), Value::Double(49.0));
    assert_eq!(out.value(0, 0), Value::Int(49), "ties broken by o_id asc");

    let plan = Plan::scan("orders", vec![0], None).limit(7);
    assert_eq!(execute(&plan, &snap, &ExecOptions::default()).unwrap().rows(), 7);
}

#[test]
fn project_with_case_expression() {
    let p = setup();
    let snap = p.read_snapshot();
    // share of "high" amounts (>= 25).
    let plan = Plan::scan("orders", vec![2], None)
        .project(vec![(
            Expr::Case {
                when: vec![(Expr::cmp(0, CmpOp::Ge, 25.0), Expr::Literal(Value::Double(1.0)))],
                else_: Box::new(Expr::Literal(Value::Double(0.0))),
            },
            DataType::Double,
        )])
        .aggregate(vec![], vec![Aggregate { func: AggFunc::Avg, input: Expr::Column(0) }]);
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Double(0.5));
}

#[test]
fn query_sees_snapshot_not_later_writes() {
    let p = setup();
    let snap = p.read_snapshot();
    let mut txn = p.begin();
    let orders = p.table_by_name("orders").unwrap().id;
    txn.insert(orders, Row::new(vec![Value::Int(9999), Value::Int(0), Value::Double(1.0)]))
        .unwrap();
    txn.commit().unwrap();
    let plan = Plan::scan("orders", vec![0], None);
    let out = execute(&plan, &snap, &ExecOptions::default()).unwrap();
    assert_eq!(out.rows(), 500, "snapshot predates the insert");
    let snap2 = p.read_snapshot();
    let out2 = execute(&plan, &snap2, &ExecOptions::default()).unwrap();
    assert_eq!(out2.rows(), 501);
}
