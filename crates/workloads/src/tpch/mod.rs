//! TPC-H-derived workload: schema, dbgen-style data generator and the 22
//! analytical queries (paper §6, Table 2 / Figure 4).
//!
//! The generator follows the TPC-H cardinalities and value distributions
//! closely enough that every query is selective in the intended way; exact
//! dbgen text grammar is replaced by seeded synthetic text. Dates are days
//! since epoch (`Int64`), money is `Double`.

pub mod load;
pub mod queries;
pub mod sql;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_common::date::days_from_ymd;
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};

/// Column ordinals for `lineitem`.
pub mod l {
    pub const ORDERKEY: usize = 0;
    pub const PARTKEY: usize = 1;
    pub const SUPPKEY: usize = 2;
    pub const LINENUMBER: usize = 3;
    pub const QUANTITY: usize = 4;
    pub const EXTENDEDPRICE: usize = 5;
    pub const DISCOUNT: usize = 6;
    pub const TAX: usize = 7;
    pub const RETURNFLAG: usize = 8;
    pub const LINESTATUS: usize = 9;
    pub const SHIPDATE: usize = 10;
    pub const COMMITDATE: usize = 11;
    pub const RECEIPTDATE: usize = 12;
    pub const SHIPINSTRUCT: usize = 13;
    pub const SHIPMODE: usize = 14;
}

/// Column ordinals for `orders`.
pub mod o {
    pub const ORDERKEY: usize = 0;
    pub const CUSTKEY: usize = 1;
    pub const ORDERSTATUS: usize = 2;
    pub const TOTALPRICE: usize = 3;
    pub const ORDERDATE: usize = 4;
    pub const ORDERPRIORITY: usize = 5;
    pub const SHIPPRIORITY: usize = 6;
}

/// Column ordinals for `customer`.
pub mod c {
    pub const CUSTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const NATIONKEY: usize = 2;
    pub const PHONE: usize = 3;
    pub const ACCTBAL: usize = 4;
    pub const MKTSEGMENT: usize = 5;
    pub const COMMENT: usize = 6;
}

/// Column ordinals for `part`.
pub mod p {
    pub const PARTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const MFGR: usize = 2;
    pub const BRAND: usize = 3;
    pub const TYPE: usize = 4;
    pub const SIZE: usize = 5;
    pub const CONTAINER: usize = 6;
    pub const RETAILPRICE: usize = 7;
}

/// Column ordinals for `supplier`.
pub mod s {
    pub const SUPPKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const NATIONKEY: usize = 2;
    pub const ACCTBAL: usize = 3;
    pub const ADDRESS: usize = 4;
    pub const PHONE: usize = 5;
    pub const COMMENT: usize = 6;
}

/// Column ordinals for `partsupp`.
pub mod ps {
    pub const PARTKEY: usize = 0;
    pub const SUPPKEY: usize = 1;
    pub const AVAILQTY: usize = 2;
    pub const SUPPLYCOST: usize = 3;
}

/// Column ordinals for `nation`.
pub mod n {
    pub const NATIONKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const REGIONKEY: usize = 2;
}

/// Column ordinals for `region`.
pub mod r {
    pub const REGIONKEY: usize = 0;
    pub const NAME: usize = 1;
}

/// The 25 TPC-H nations (name, region ordinal).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"];
const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const NAME_PARTS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
];

/// One generated table: name, schema, storage options, rows.
pub struct GeneratedTable {
    /// Table name.
    pub name: &'static str,
    /// Schema.
    pub schema: Schema,
    /// Sort/shard/index options used on the unified-storage engine.
    pub options: TableOptions,
    /// Rows.
    pub rows: Vec<Row>,
}

/// Generated TPC-H database at some scale factor.
pub struct TpchData {
    /// All eight tables.
    pub tables: Vec<GeneratedTable>,
}

impl TpchData {
    /// Table by name.
    pub fn table(&self, name: &str) -> &GeneratedTable {
        self.tables.iter().find(|t| t.name == name).expect("known table")
    }
}

fn d(y: i32, m: u32, day: u32) -> i64 {
    days_from_ymd(y, m, day)
}

/// Generate all tables at `sf` (1.0 = the official 1GB scale; laptop runs
/// use 0.01–0.1), deterministically from `seed`.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_supplier = ((10_000.0 * sf) as i64).max(10);
    let n_customer = ((150_000.0 * sf) as i64).max(30);
    let n_part = ((200_000.0 * sf) as i64).max(40);
    let n_orders = ((1_500_000.0 * sf) as i64).max(150);

    let start = d(1992, 1, 1);
    let end = d(1998, 8, 2);

    // region
    let region_rows: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| Row::new(vec![Value::Int(i as i64), Value::str(*name)]))
        .collect();

    // nation
    let nation_rows: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            Row::new(vec![Value::Int(i as i64), Value::str(*name), Value::Int(*region)])
        })
        .collect();

    // supplier
    let supplier_rows: Vec<Row> = (0..n_supplier)
        .map(|k| {
            Row::new(vec![
                Value::Int(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::Int(rng.random_range(0..25)),
                Value::Double(rng.random_range(-999.99..9999.99)),
                Value::str(format!("addr-{k}")),
                Value::str(phone(rng.random_range(0..25))),
                Value::str(comment(&mut rng, k, "supplier")),
            ])
        })
        .collect();

    // customer
    let customer_rows: Vec<Row> = (0..n_customer)
        .map(|k| {
            let nation = rng.random_range(0..25i64);
            Row::new(vec![
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::Int(nation),
                Value::str(phone(nation)),
                Value::Double(rng.random_range(-999.99..9999.99)),
                Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
                Value::str(comment(&mut rng, k, "customer")),
            ])
        })
        .collect();

    // part
    let part_rows: Vec<Row> = (0..n_part)
        .map(|k| {
            let t = format!(
                "{} {} {}",
                TYPE_S1[rng.random_range(0..TYPE_S1.len())],
                TYPE_S2[rng.random_range(0..TYPE_S2.len())],
                TYPE_S3[rng.random_range(0..TYPE_S3.len())]
            );
            let brand = format!("Brand#{}{}", rng.random_range(1..6), rng.random_range(1..6));
            let name = format!(
                "{} {} {}",
                NAME_PARTS[rng.random_range(0..NAME_PARTS.len())],
                NAME_PARTS[rng.random_range(0..NAME_PARTS.len())],
                NAME_PARTS[rng.random_range(0..NAME_PARTS.len())]
            );
            Row::new(vec![
                Value::Int(k),
                Value::str(name),
                Value::str(format!("Manufacturer#{}", rng.random_range(1..6))),
                Value::str(brand),
                Value::str(t),
                Value::Int(rng.random_range(1..51)),
                Value::str(CONTAINERS[rng.random_range(0..CONTAINERS.len())]),
                Value::Double(900.0 + (k % 1000) as f64 / 10.0),
            ])
        })
        .collect();

    // partsupp: 4 suppliers per part.
    let mut partsupp_rows = Vec::with_capacity((n_part * 4) as usize);
    for pk in 0..n_part {
        for i in 0..4i64 {
            let sk = (pk + i * (n_supplier / 4 + 1)) % n_supplier;
            partsupp_rows.push(Row::new(vec![
                Value::Int(pk),
                Value::Int(sk),
                Value::Int(rng.random_range(1..10_000)),
                Value::Double(rng.random_range(1.0..1000.0)),
            ]));
        }
    }

    // orders + lineitem
    let mut orders_rows = Vec::with_capacity(n_orders as usize);
    let mut lineitem_rows = Vec::with_capacity((n_orders * 4) as usize);
    for ok in 0..n_orders {
        let orderdate = rng.random_range(start..=end - 151);
        let custkey = rng.random_range(0..n_customer);
        let n_lines = rng.random_range(1..=7);
        let mut total = 0.0;
        let mut all_f = true;
        for line in 0..n_lines {
            let partkey = rng.random_range(0..n_part);
            // Match a partsupp pair so Q9's join finds costs.
            let si = rng.random_range(0..4i64);
            let suppkey = (partkey + si * (n_supplier / 4 + 1)) % n_supplier;
            let quantity = rng.random_range(1..=50) as f64;
            let price = (90_000.0 + ((partkey % 20_000) as f64) * 0.5) * quantity / 100.0;
            let discount = (rng.random_range(0..=10) as f64) / 100.0;
            let tax = (rng.random_range(0..=8) as f64) / 100.0;
            let shipdate = orderdate + rng.random_range(1..=121);
            let commitdate = orderdate + rng.random_range(30..=90);
            let receiptdate = shipdate + rng.random_range(1..=30);
            let today = d(1995, 6, 17);
            let (returnflag, linestatus) = if receiptdate <= today {
                (if rng.random_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                all_f = false;
                ("N", "O")
            };
            total += price * (1.0 + tax) * (1.0 - discount);
            lineitem_rows.push(Row::new(vec![
                Value::Int(ok),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(line),
                Value::Double(quantity),
                Value::Double(price),
                Value::Double(discount),
                Value::Double(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Int(shipdate),
                Value::Int(commitdate),
                Value::Int(receiptdate),
                Value::str(INSTRUCTS[rng.random_range(0..INSTRUCTS.len())]),
                Value::str(SHIPMODES[rng.random_range(0..SHIPMODES.len())]),
            ]));
        }
        let status = if all_f { "F" } else { "O" };
        orders_rows.push(Row::new(vec![
            Value::Int(ok),
            Value::Int(custkey),
            Value::str(status),
            Value::Double(total),
            Value::Int(orderdate),
            Value::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
            Value::Int(0),
        ]));
    }

    let tables = vec![
        GeneratedTable {
            name: "region",
            schema: Schema::new(vec![
                ColumnDef::new("r_regionkey", DataType::Int64),
                ColumnDef::new("r_name", DataType::Str),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            rows: region_rows,
        },
        GeneratedTable {
            name: "nation",
            schema: Schema::new(vec![
                ColumnDef::new("n_nationkey", DataType::Int64),
                ColumnDef::new("n_name", DataType::Str),
                ColumnDef::new("n_regionkey", DataType::Int64),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            rows: nation_rows,
        },
        GeneratedTable {
            name: "supplier",
            schema: Schema::new(vec![
                ColumnDef::new("s_suppkey", DataType::Int64),
                ColumnDef::new("s_name", DataType::Str),
                ColumnDef::new("s_nationkey", DataType::Int64),
                ColumnDef::new("s_acctbal", DataType::Double),
                ColumnDef::new("s_address", DataType::Str),
                ColumnDef::new("s_phone", DataType::Str),
                ColumnDef::new("s_comment", DataType::Str),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            rows: supplier_rows,
        },
        GeneratedTable {
            name: "customer",
            schema: Schema::new(vec![
                ColumnDef::new("c_custkey", DataType::Int64),
                ColumnDef::new("c_name", DataType::Str),
                ColumnDef::new("c_nationkey", DataType::Int64),
                ColumnDef::new("c_phone", DataType::Str),
                ColumnDef::new("c_acctbal", DataType::Double),
                ColumnDef::new("c_mktsegment", DataType::Str),
                ColumnDef::new("c_comment", DataType::Str),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            rows: customer_rows,
        },
        GeneratedTable {
            name: "part",
            schema: Schema::new(vec![
                ColumnDef::new("p_partkey", DataType::Int64),
                ColumnDef::new("p_name", DataType::Str),
                ColumnDef::new("p_mfgr", DataType::Str),
                ColumnDef::new("p_brand", DataType::Str),
                ColumnDef::new("p_type", DataType::Str),
                ColumnDef::new("p_size", DataType::Int64),
                ColumnDef::new("p_container", DataType::Str),
                ColumnDef::new("p_retailprice", DataType::Double),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            rows: part_rows,
        },
        GeneratedTable {
            name: "partsupp",
            schema: Schema::new(vec![
                ColumnDef::new("ps_partkey", DataType::Int64),
                ColumnDef::new("ps_suppkey", DataType::Int64),
                ColumnDef::new("ps_availqty", DataType::Int64),
                ColumnDef::new("ps_supplycost", DataType::Double),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0, 1])
                .with_sort_key(vec![0]),
            rows: partsupp_rows,
        },
        GeneratedTable {
            name: "orders",
            schema: Schema::new(vec![
                ColumnDef::new("o_orderkey", DataType::Int64),
                ColumnDef::new("o_custkey", DataType::Int64),
                ColumnDef::new("o_orderstatus", DataType::Str),
                ColumnDef::new("o_totalprice", DataType::Double),
                ColumnDef::new("o_orderdate", DataType::Int64),
                ColumnDef::new("o_orderpriority", DataType::Str),
                ColumnDef::new("o_shippriority", DataType::Int64),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0])
                .with_sort_key(vec![4])
                .with_index("by_cust", vec![1]),
            rows: orders_rows,
        },
        GeneratedTable {
            name: "lineitem",
            schema: Schema::new(vec![
                ColumnDef::new("l_orderkey", DataType::Int64),
                ColumnDef::new("l_partkey", DataType::Int64),
                ColumnDef::new("l_suppkey", DataType::Int64),
                ColumnDef::new("l_linenumber", DataType::Int64),
                ColumnDef::new("l_quantity", DataType::Double),
                ColumnDef::new("l_extendedprice", DataType::Double),
                ColumnDef::new("l_discount", DataType::Double),
                ColumnDef::new("l_tax", DataType::Double),
                ColumnDef::new("l_returnflag", DataType::Str),
                ColumnDef::new("l_linestatus", DataType::Str),
                ColumnDef::new("l_shipdate", DataType::Int64),
                ColumnDef::new("l_commitdate", DataType::Int64),
                ColumnDef::new("l_receiptdate", DataType::Int64),
                ColumnDef::new("l_shipinstruct", DataType::Str),
                ColumnDef::new("l_shipmode", DataType::Str),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0, 3])
                .with_sort_key(vec![10])
                .with_index("by_part", vec![1]),
            rows: lineitem_rows,
        },
    ];
    TpchData { tables }
}

fn phone(nation: i64) -> String {
    format!("{}-555-{:04}", 10 + nation, nation * 137 % 10_000)
}

fn comment(rng: &mut StdRng, k: i64, kind: &str) -> String {
    // Occasionally embed the phrases Q13/Q16/Q20-style predicates look for.
    let tag = match rng.random_range(0..20) {
        0 => " special requests ",
        1 => " special pending deposits ",
        2 => " Customer Complaints ",
        _ => " carefully final packages ",
    };
    format!("{kind}-{k}{tag}sleep quickly according to the furiously even theodolites")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let data = generate(0.01, 7);
        assert_eq!(data.table("region").rows.len(), 5);
        assert_eq!(data.table("nation").rows.len(), 25);
        assert_eq!(data.table("supplier").rows.len(), 100);
        assert_eq!(data.table("customer").rows.len(), 1500);
        assert_eq!(data.table("orders").rows.len(), 15_000);
        let li = data.table("lineitem").rows.len();
        assert!((45_000..75_000).contains(&li), "lineitem {li}");
    }

    #[test]
    fn deterministic() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        assert_eq!(a.table("orders").rows.len(), b.table("orders").rows.len());
        assert_eq!(a.table("orders").rows[0], b.table("orders").rows[0]);
    }

    #[test]
    fn lineitem_dates_consistent() {
        let data = generate(0.001, 1);
        for row in &data.table("lineitem").rows {
            let ship = row.get(l::SHIPDATE).as_int().unwrap();
            let receipt = row.get(l::RECEIPTDATE).as_int().unwrap();
            assert!(receipt > ship);
        }
    }

    #[test]
    fn partsupp_pairs_cover_lineitems() {
        use std::collections::HashSet;
        let data = generate(0.001, 1);
        let pairs: HashSet<(i64, i64)> = data
            .table("partsupp")
            .rows
            .iter()
            .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
            .collect();
        for row in &data.table("lineitem").rows {
            let pk = row.get(l::PARTKEY).as_int().unwrap();
            let sk = row.get(l::SUPPKEY).as_int().unwrap();
            assert!(pairs.contains(&(pk, sk)), "lineitem references partsupp ({pk},{sk})");
        }
    }
}
