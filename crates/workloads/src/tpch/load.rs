//! Loaders and plan runners for the three engines under comparison.

use std::sync::Arc;

use s2_baseline::{CdbEngine, CdwEngine};
use s2_cluster::{Cluster, Workspace};
use s2_common::{Result, Row};
use s2_core::DuplicatePolicy;
use s2_exec::Batch;
use s2_query::{execute, ExecOptions, Plan, QueryContext};

use super::queries::{rows_to_batch, PlanRunner};
use super::TpchData;

/// Rows per load transaction.
const LOAD_BATCH: usize = 5000;

/// Load the generated data into an S2DB cluster (unified table storage),
/// then flush + merge so scans run against settled columnstore segments —
/// the paper's "one cold run ... then warm runs" setup.
pub fn load_cluster(cluster: &Arc<Cluster>, data: &TpchData) -> Result<()> {
    for t in &data.tables {
        cluster.create_table(t.name, t.schema.clone(), t.options.clone())?;
        for chunk in t.rows.chunks(LOAD_BATCH) {
            let mut txn = cluster.begin();
            txn.insert_batch(t.name, chunk.to_vec(), DuplicatePolicy::Error)?;
            txn.commit()?;
        }
        cluster.flush_table(t.name)?;
    }
    Ok(())
}

/// Load into the CDW comparator (bulk batches, its strength).
pub fn load_cdw(engine: &CdwEngine, data: &TpchData) -> Result<()> {
    for t in &data.tables {
        engine.create_table(t.name, t.schema.clone())?;
        for chunk in t.rows.chunks(LOAD_BATCH * 10) {
            engine.load_batch(t.name, chunk.to_vec())?;
        }
    }
    Ok(())
}

/// Load into the CDB comparator (row-at-a-time inserts, as an operational
/// database would take them).
pub fn load_cdb(engine: &CdbEngine, data: &TpchData) -> Result<()> {
    for t in &data.tables {
        let pk = t
            .options
            .indexes
            .iter()
            .find(|d| d.unique)
            .map(|d| d.columns.clone())
            .unwrap_or_else(|| vec![0]);
        let secondary: Vec<Vec<usize>> =
            t.options.indexes.iter().filter(|d| !d.unique).map(|d| d.columns.clone()).collect();
        engine.create_table(t.name, t.schema.clone(), pk, secondary)?;
        for row in &t.rows {
            engine.insert(t.name, row.clone())?;
        }
    }
    Ok(())
}

/// Run plans on an S2DB cluster.
pub struct ClusterRunner<'a> {
    /// Target cluster.
    pub cluster: &'a Arc<Cluster>,
    /// Execution options.
    pub opts: ExecOptions,
}

impl PlanRunner for ClusterRunner<'_> {
    fn run(&self, plan: &Plan) -> Result<Batch> {
        self.cluster.execute(plan, &self.opts)
    }
}

/// Run plans on a read-only workspace.
pub struct WorkspaceRunner<'a> {
    /// Target workspace.
    pub workspace: &'a Workspace,
    /// Execution options.
    pub opts: ExecOptions,
}

impl PlanRunner for WorkspaceRunner<'_> {
    fn run(&self, plan: &Plan) -> Result<Batch> {
        self.workspace.execute(plan, &self.opts)
    }
}

/// Run plans against any [`QueryContext`] (single partition, fixed union).
pub struct ContextRunner<'a> {
    /// Snapshot source.
    pub ctx: &'a dyn QueryContext,
    /// Execution options.
    pub opts: ExecOptions,
}

impl PlanRunner for ContextRunner<'_> {
    fn run(&self, plan: &Plan) -> Result<Batch> {
        execute(plan, self.ctx, &self.opts)
    }
}

/// Run plans on the CDW comparator.
pub struct CdwRunner<'a>(pub &'a CdwEngine);

impl PlanRunner for CdwRunner<'_> {
    fn run(&self, plan: &Plan) -> Result<Batch> {
        self.0.execute(plan)
    }
}

/// Run plans on the CDB comparator (row output converted to a batch).
pub struct CdbRunner<'a>(pub &'a CdbEngine);

impl PlanRunner for CdbRunner<'_> {
    fn run(&self, plan: &Plan) -> Result<Batch> {
        let rows: Vec<Row> = self.0.execute(plan)?;
        rows_to_batch(&rows)
    }
}
