//! The 22 TPC-H queries expressed against the plan API, with the
//! specification's validation parameters. Queries that SQL expresses with
//! scalar subqueries (Q11, Q22) execute in two phases through the
//! [`PlanRunner`], embedding the intermediate scalar as a literal — which is
//! what a real optimizer does with uncorrelated scalar subqueries.
//!
//! Each query runs unchanged on the unified-storage engine (vectorized,
//! adaptive), on the CDW comparator (vectorized, no indexes) and on the CDB
//! comparator (row-at-a-time) through the runner abstraction.

use s2_common::date::days_from_ymd;
use s2_common::{DataType, Result, Row, Value};
use s2_exec::{AggFunc, Aggregate, ArithOp, Batch, CmpOp, Expr, JoinType, SortDir};
use s2_query::Plan;

use super::{c, l, n, o, p, ps, r, s};

/// Executes plans on some engine (S2DB cluster, CDW model, CDB model).
pub trait PlanRunner {
    /// Run one plan to completion.
    fn run(&self, plan: &Plan) -> Result<Batch>;
}

/// Convert row-engine output to a batch (types inferred; all-null columns
/// default to Int64).
pub fn rows_to_batch(rows: &[Row]) -> Result<Batch> {
    let width = rows.first().map_or(0, Row::len);
    let mut types = vec![DataType::Int64; width];
    for (ci, t) in types.iter_mut().enumerate() {
        for row in rows {
            if let Some(dt) = row.get(ci).data_type() {
                *t = dt;
                break;
            }
        }
    }
    let cols: Vec<usize> = (0..width).collect();
    Batch::from_rows(rows, &cols, &types)
}

fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

fn col(i: usize) -> Expr {
    Expr::Column(i)
}

fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
}

fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Sub, Box::new(a), Box::new(b))
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Add, Box::new(a), Box::new(b))
}

fn div(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Div, Box::new(a), Box::new(b))
}

fn cmp_cols(a: usize, op: CmpOp, b: usize) -> Expr {
    Expr::Cmp(op, Box::new(col(a)), Box::new(col(b)))
}

fn d(y: i32, m: u32, day: u32) -> i64 {
    days_from_ymd(y, m, day)
}

fn agg(func: AggFunc, input: Expr) -> Aggregate {
    Aggregate { func, input }
}

/// `l_extendedprice * (1 - l_discount)` over batch positions (price, discount).
fn revenue(price: usize, discount: usize) -> Expr {
    mul(col(price), sub(lit(1.0), col(discount)))
}

/// Run query `n` (1..=22).
pub fn run_query(n: usize, runner: &dyn PlanRunner) -> Result<Batch> {
    match n {
        1 => q1(runner),
        2 => q2(runner),
        3 => q3(runner),
        4 => q4(runner),
        5 => q5(runner),
        6 => q6(runner),
        7 => q7(runner),
        8 => q8(runner),
        9 => q9(runner),
        10 => q10(runner),
        11 => q11(runner),
        12 => q12(runner),
        13 => q13(runner),
        14 => q14(runner),
        15 => q15(runner),
        16 => q16(runner),
        17 => q17(runner),
        18 => q18(runner),
        19 => q19(runner),
        20 => q20(runner),
        21 => q21(runner),
        22 => q22(runner),
        _ => Err(s2_common::Error::InvalidArgument(format!("no TPC-H query {n}"))),
    }
}

/// Q1: pricing summary report.
fn q1(r: &dyn PlanRunner) -> Result<Batch> {
    // proj: 0 qty, 1 price, 2 disc, 3 tax, 4 flag, 5 status
    let plan = Plan::scan(
        "lineitem",
        vec![l::QUANTITY, l::EXTENDEDPRICE, l::DISCOUNT, l::TAX, l::RETURNFLAG, l::LINESTATUS],
        Some(Expr::cmp(l::SHIPDATE, CmpOp::Le, d(1998, 9, 2))),
    )
    .aggregate(
        vec![col(4), col(5)],
        vec![
            agg(AggFunc::Sum, col(0)),
            agg(AggFunc::Sum, col(1)),
            agg(AggFunc::Sum, revenue(1, 2)),
            agg(AggFunc::Sum, mul(revenue(1, 2), add(lit(1.0), col(3)))),
            agg(AggFunc::Avg, col(0)),
            agg(AggFunc::Avg, col(1)),
            agg(AggFunc::Avg, col(2)),
            agg(AggFunc::Count, lit(1i64)),
        ],
    )
    .sort(vec![(0, SortDir::Asc), (1, SortDir::Asc)], None);
    r.run(&plan)
}

/// Base join for Q2: europe partsupps of brass parts of size 15.
fn q2_base() -> Plan {
    // part filtered: proj 0 p_partkey, 1 p_mfgr
    let part = Plan::scan(
        "part",
        vec![p::PARTKEY, p::MFGR],
        Some(Expr::eq(p::SIZE, 15i64).and(Expr::Like(Box::new(col(p::TYPE)), "%BRASS".into()))),
    );
    // partsupp: 0 ps_partkey, 1 ps_suppkey, 2 ps_supplycost
    let partsupp = Plan::scan("partsupp", vec![ps::PARTKEY, ps::SUPPKEY, ps::SUPPLYCOST], None);
    // supplier: 0 s_suppkey, 1 s_name, 2 s_nationkey, 3 s_acctbal, 4 s_address, 5 s_phone, 6 s_comment
    let supplier = Plan::scan(
        "supplier",
        vec![s::SUPPKEY, s::NAME, s::NATIONKEY, s::ACCTBAL, s::ADDRESS, s::PHONE, s::COMMENT],
        None,
    );
    // nation: 0 n_nationkey, 1 n_name, 2 n_regionkey
    let nation = Plan::scan("nation", vec![n::NATIONKEY, n::NAME, n::REGIONKEY], None);
    let region = Plan::scan("region", vec![r::REGIONKEY], Some(Expr::eq(r::NAME, "EUROPE")));
    // part(0,1) ⨝ partsupp(2,3,4) ⨝ supplier(5..11) ⨝ nation(12,13,14) ⨝ region(15)
    part.join(partsupp, vec![0], vec![0])
        .join(supplier, vec![3], vec![0])
        .join(nation, vec![7], vec![0])
        .join(region, vec![14], vec![0])
}

/// Q2: minimum-cost supplier.
fn q2(r: &dyn PlanRunner) -> Result<Batch> {
    let base = q2_base();
    // positions in base: 0 p_partkey, 1 p_mfgr, 2 ps_partkey, 3 ps_suppkey,
    // 4 ps_supplycost, 5 s_suppkey, 6 s_name, 7 s_nationkey, 8 s_acctbal,
    // 9 s_address, 10 s_phone, 11 s_comment, 12 n_nationkey, 13 n_name, ...
    let mins = base.clone().aggregate(vec![col(0)], vec![agg(AggFunc::Min, col(4))]);
    // join base to mins on partkey, residual cost == min.
    let plan = base
        .join_full(
            mins,
            vec![0],
            vec![0],
            JoinType::Inner,
            Some(cmp_cols(4, CmpOp::Eq, 17)), // 16 = mins.partkey, 17 = min cost
        )
        .project(vec![
            (col(8), DataType::Double), // s_acctbal
            (col(6), DataType::Str),    // s_name
            (col(13), DataType::Str),   // n_name
            (col(0), DataType::Int64),  // p_partkey
            (col(1), DataType::Str),    // p_mfgr
            (col(9), DataType::Str),    // s_address
            (col(10), DataType::Str),   // s_phone
            (col(11), DataType::Str),   // s_comment
        ])
        .sort(
            vec![(0, SortDir::Desc), (2, SortDir::Asc), (1, SortDir::Asc), (3, SortDir::Asc)],
            Some(100),
        );
    r.run(&plan)
}

/// Q3: shipping priority.
fn q3(r: &dyn PlanRunner) -> Result<Batch> {
    let cutoff = d(1995, 3, 15);
    let customer =
        Plan::scan("customer", vec![c::CUSTKEY], Some(Expr::eq(c::MKTSEGMENT, "BUILDING")));
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::CUSTKEY, o::ORDERDATE, o::SHIPPRIORITY],
        Some(Expr::cmp(o::ORDERDATE, CmpOp::Lt, cutoff)),
    );
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::EXTENDEDPRICE, l::DISCOUNT],
        Some(Expr::cmp(l::SHIPDATE, CmpOp::Gt, cutoff)),
    );
    // orders(0..3) ⨝ customer(4) ⨝ lineitem(5,6,7)
    let plan = orders
        .join(customer, vec![1], vec![0])
        .join(lineitem, vec![0], vec![0])
        .aggregate(
            vec![col(0), col(2), col(3)], // orderkey, orderdate, shippriority
            vec![agg(AggFunc::Sum, revenue(6, 7))],
        )
        .sort(vec![(3, SortDir::Desc), (1, SortDir::Asc)], Some(10));
    r.run(&plan)
}

/// Q4: order priority checking.
fn q4(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1993, 7, 1);
    let hi = d(1993, 10, 1);
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::ORDERPRIORITY],
        Some(Expr::cmp(o::ORDERDATE, CmpOp::Ge, lo).and(Expr::cmp(o::ORDERDATE, CmpOp::Lt, hi))),
    );
    let late = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY],
        Some(cmp_cols(l::COMMITDATE, CmpOp::Lt, l::RECEIPTDATE)),
    );
    let plan = orders
        .join_full(late, vec![0], vec![0], JoinType::Semi, None)
        .aggregate(vec![col(1)], vec![agg(AggFunc::Count, lit(1i64))])
        .sort(vec![(0, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q5: local supplier volume.
fn q5(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1994, 1, 1);
    let hi = d(1995, 1, 1);
    let customer = Plan::scan("customer", vec![c::CUSTKEY, c::NATIONKEY], None);
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::CUSTKEY],
        Some(Expr::cmp(o::ORDERDATE, CmpOp::Ge, lo).and(Expr::cmp(o::ORDERDATE, CmpOp::Lt, hi))),
    );
    let lineitem =
        Plan::scan("lineitem", vec![l::ORDERKEY, l::SUPPKEY, l::EXTENDEDPRICE, l::DISCOUNT], None);
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NATIONKEY], None);
    let nation = Plan::scan("nation", vec![n::NATIONKEY, n::NAME, n::REGIONKEY], None);
    let region = Plan::scan("region", vec![r::REGIONKEY], Some(Expr::eq(r::NAME, "ASIA")));
    // orders(0,1) ⨝ customer(2,3) ⨝ lineitem(4..7) ⨝ supplier(8,9 residual s_nation == c_nation)
    let plan = orders
        .join(customer, vec![1], vec![0])
        .join(lineitem, vec![0], vec![0])
        .join_full(
            supplier,
            vec![5],
            vec![0],
            JoinType::Inner,
            Some(cmp_cols(9, CmpOp::Eq, 3)), // s_nationkey == c_nationkey
        )
        .join(nation, vec![9], vec![0]) // nation at 10,11,12
        .join(region, vec![12], vec![0])
        .aggregate(vec![col(11)], vec![agg(AggFunc::Sum, revenue(6, 7))])
        .sort(vec![(1, SortDir::Desc)], None);
    r.run(&plan)
}

/// Q6: forecasting revenue change.
fn q6(r: &dyn PlanRunner) -> Result<Batch> {
    let plan = Plan::scan(
        "lineitem",
        vec![l::EXTENDEDPRICE, l::DISCOUNT],
        Some(
            Expr::cmp(l::SHIPDATE, CmpOp::Ge, d(1994, 1, 1))
                .and(Expr::cmp(l::SHIPDATE, CmpOp::Lt, d(1995, 1, 1)))
                .and(Expr::between(l::DISCOUNT, 0.05 - 1e-9, 0.07 + 1e-9))
                .and(Expr::cmp(l::QUANTITY, CmpOp::Lt, 24.0)),
        ),
    )
    .aggregate(vec![], vec![agg(AggFunc::Sum, mul(col(0), col(1)))]);
    r.run(&plan)
}

/// Q7: volume shipping between FRANCE and GERMANY.
fn q7(r: &dyn PlanRunner) -> Result<Batch> {
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NATIONKEY], None);
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::SUPPKEY, l::EXTENDEDPRICE, l::DISCOUNT, l::SHIPDATE],
        Some(Expr::between(l::SHIPDATE, d(1995, 1, 1), d(1996, 12, 31))),
    );
    let orders = Plan::scan("orders", vec![o::ORDERKEY, o::CUSTKEY], None);
    let customer = Plan::scan("customer", vec![c::CUSTKEY, c::NATIONKEY], None);
    let n1 = Plan::scan("nation", vec![n::NATIONKEY, n::NAME], None);
    let n2 = Plan::scan("nation", vec![n::NATIONKEY, n::NAME], None);
    // supplier(0,1) ⨝ lineitem(2..6) ⨝ orders(7,8) ⨝ customer(9,10)
    //   ⨝ n1(11,12 on s_nation) ⨝ n2(13,14 on c_nation)
    let nation_pair = Expr::Or(vec![
        Expr::eq(12, "FRANCE").and(Expr::eq(14, "GERMANY")),
        Expr::eq(12, "GERMANY").and(Expr::eq(14, "FRANCE")),
    ]);
    let plan = supplier
        .join(lineitem, vec![0], vec![1])
        .join(orders, vec![2], vec![0])
        .join(customer, vec![8], vec![0])
        .join(n1, vec![1], vec![0])
        .join(n2, vec![10], vec![0])
        .filter(nation_pair)
        .project(vec![
            (col(12), DataType::Str),
            (col(14), DataType::Str),
            (Expr::Year(Box::new(col(6))), DataType::Int64),
            (revenue(4, 5), DataType::Double),
        ])
        .aggregate(vec![col(0), col(1), col(2)], vec![agg(AggFunc::Sum, col(3))])
        .sort(vec![(0, SortDir::Asc), (1, SortDir::Asc), (2, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q8: national market share.
fn q8(r: &dyn PlanRunner) -> Result<Batch> {
    let part =
        Plan::scan("part", vec![p::PARTKEY], Some(Expr::eq(p::TYPE, "ECONOMY ANODIZED STEEL")));
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::PARTKEY, l::SUPPKEY, l::EXTENDEDPRICE, l::DISCOUNT],
        None,
    );
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::CUSTKEY, o::ORDERDATE],
        Some(Expr::between(o::ORDERDATE, d(1995, 1, 1), d(1996, 12, 31))),
    );
    let customer = Plan::scan("customer", vec![c::CUSTKEY, c::NATIONKEY], None);
    let n1 = Plan::scan("nation", vec![n::NATIONKEY, n::REGIONKEY], None);
    let region = Plan::scan("region", vec![r::REGIONKEY], Some(Expr::eq(r::NAME, "AMERICA")));
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NATIONKEY], None);
    let n2 = Plan::scan("nation", vec![n::NATIONKEY, n::NAME], None);
    // part(0) ⨝ lineitem(1..5) ⨝ orders(6,7,8) ⨝ customer(9,10) ⨝ n1(11,12)
    //   ⨝ region(13) ⨝ supplier(14,15) ⨝ n2(16,17)
    let plan = part
        .join(lineitem, vec![0], vec![1])
        .join(orders, vec![1], vec![0])
        .join(customer, vec![7], vec![0])
        .join(n1, vec![10], vec![0])
        .join(region, vec![12], vec![0])
        .join(supplier, vec![3], vec![0])
        .join(n2, vec![15], vec![0])
        .project(vec![
            (Expr::Year(Box::new(col(8))), DataType::Int64),
            (revenue(4, 5), DataType::Double),
            (
                Expr::Case {
                    when: vec![(Expr::eq(17, "BRAZIL"), revenue(4, 5))],
                    else_: Box::new(lit(0.0)),
                },
                DataType::Double,
            ),
        ])
        .aggregate(vec![col(0)], vec![agg(AggFunc::Sum, col(2)), agg(AggFunc::Sum, col(1))])
        .project(vec![(col(0), DataType::Int64), (div(col(1), col(2)), DataType::Double)])
        .sort(vec![(0, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q9: product type profit measure.
fn q9(r: &dyn PlanRunner) -> Result<Batch> {
    let part = Plan::scan(
        "part",
        vec![p::PARTKEY],
        Some(Expr::Like(Box::new(col(p::NAME)), "%green%".into())),
    );
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::PARTKEY, l::SUPPKEY, l::QUANTITY, l::EXTENDEDPRICE, l::DISCOUNT],
        None,
    );
    let partsupp = Plan::scan("partsupp", vec![ps::PARTKEY, ps::SUPPKEY, ps::SUPPLYCOST], None);
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NATIONKEY], None);
    let orders = Plan::scan("orders", vec![o::ORDERKEY, o::ORDERDATE], None);
    let nation = Plan::scan("nation", vec![n::NATIONKEY, n::NAME], None);
    // part(0) ⨝ lineitem(1..6) ⨝ partsupp(7,8,9 on pk+sk)
    //   ⨝ supplier(10,11) ⨝ orders(12,13) ⨝ nation(14,15)
    let plan = part
        .join(lineitem, vec![0], vec![1])
        .join(partsupp, vec![2, 3], vec![0, 1])
        .join(supplier, vec![3], vec![0])
        .join(orders, vec![1], vec![0])
        .join(nation, vec![11], vec![0])
        .project(vec![
            (col(15), DataType::Str),
            (Expr::Year(Box::new(col(13))), DataType::Int64),
            (sub(revenue(5, 6), mul(col(9), col(4))), DataType::Double),
        ])
        .aggregate(vec![col(0), col(1)], vec![agg(AggFunc::Sum, col(2))])
        .sort(vec![(0, SortDir::Asc), (1, SortDir::Desc)], None);
    r.run(&plan)
}

/// Q10: returned item reporting.
fn q10(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1993, 10, 1);
    let hi = d(1994, 1, 1);
    let customer = Plan::scan(
        "customer",
        vec![c::CUSTKEY, c::NAME, c::ACCTBAL, c::PHONE, c::NATIONKEY, c::COMMENT],
        None,
    );
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::CUSTKEY],
        Some(Expr::cmp(o::ORDERDATE, CmpOp::Ge, lo).and(Expr::cmp(o::ORDERDATE, CmpOp::Lt, hi))),
    );
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::EXTENDEDPRICE, l::DISCOUNT],
        Some(Expr::eq(l::RETURNFLAG, "R")),
    );
    let nation = Plan::scan("nation", vec![n::NATIONKEY, n::NAME], None);
    // customer(0..5) ⨝ orders(6,7) ⨝ lineitem(8,9,10) ⨝ nation(11,12)
    let plan = customer
        .join(orders, vec![0], vec![1])
        .join(lineitem, vec![6], vec![0])
        .join(nation, vec![4], vec![0])
        .aggregate(
            vec![col(0), col(1), col(2), col(3), col(12), col(5)],
            vec![agg(AggFunc::Sum, revenue(9, 10))],
        )
        .sort(vec![(6, SortDir::Desc)], Some(20));
    r.run(&plan)
}

/// Q11: important stock identification (two-phase scalar subquery).
fn q11(runner: &dyn PlanRunner) -> Result<Batch> {
    let base = || {
        let partsupp = Plan::scan(
            "partsupp",
            vec![ps::PARTKEY, ps::SUPPKEY, ps::AVAILQTY, ps::SUPPLYCOST],
            None,
        );
        let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NATIONKEY], None);
        let nation = Plan::scan("nation", vec![n::NATIONKEY], Some(Expr::eq(n::NAME, "GERMANY")));
        // partsupp(0..3) ⨝ supplier(4,5) ⨝ nation(6)
        partsupp.join(supplier, vec![1], vec![0]).join(nation, vec![5], vec![0])
    };
    // Phase 1: total value.
    let total_plan = base().aggregate(
        vec![],
        vec![agg(AggFunc::Sum, mul(col(3), col(2)))], // cost * qty
    );
    let total = runner.run(&total_plan)?.value(0, 0).as_double().unwrap_or(0.0);
    // Phase 2: per-part value with HAVING > fraction * total.
    let threshold = total * 0.0001;
    let plan = base()
        .aggregate(vec![col(0)], vec![agg(AggFunc::Sum, mul(col(3), col(2)))])
        .filter(Expr::cmp(1, CmpOp::Gt, threshold))
        .sort(vec![(1, SortDir::Desc)], None);
    runner.run(&plan)
}

/// Q12: shipping modes and order priority.
fn q12(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1994, 1, 1);
    let hi = d(1995, 1, 1);
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::ORDERKEY, l::SHIPMODE],
        Some(
            Expr::InList(Box::new(col(l::SHIPMODE)), vec![Value::str("MAIL"), Value::str("SHIP")])
                .and(cmp_cols(l::COMMITDATE, CmpOp::Lt, l::RECEIPTDATE))
                .and(cmp_cols(l::SHIPDATE, CmpOp::Lt, l::COMMITDATE))
                .and(Expr::cmp(l::RECEIPTDATE, CmpOp::Ge, lo))
                .and(Expr::cmp(l::RECEIPTDATE, CmpOp::Lt, hi)),
        ),
    );
    let orders = Plan::scan("orders", vec![o::ORDERKEY, o::ORDERPRIORITY], None);
    // lineitem(0,1) ⨝ orders(2,3)
    let high = Expr::InList(Box::new(col(3)), vec![Value::str("1-URGENT"), Value::str("2-HIGH")]);
    let plan = lineitem
        .join(orders, vec![0], vec![0])
        .aggregate(
            vec![col(1)],
            vec![
                agg(
                    AggFunc::Sum,
                    Expr::Case { when: vec![(high.clone(), lit(1.0))], else_: Box::new(lit(0.0)) },
                ),
                agg(
                    AggFunc::Sum,
                    Expr::Case { when: vec![(high, lit(0.0))], else_: Box::new(lit(1.0)) },
                ),
            ],
        )
        .sort(vec![(0, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q13: customer distribution.
fn q13(r: &dyn PlanRunner) -> Result<Batch> {
    let customer = Plan::scan("customer", vec![c::CUSTKEY], None);
    // The SQL filters on `o_comment not like '%special%requests%'`; our
    // schema carries no order comment, so an equivalent ~20%-selective
    // anti-filter on o_orderpriority stands in, preserving the query's shape
    // (distribution over a filtered left join).
    let orders = Plan::scan(
        "orders",
        vec![o::ORDERKEY, o::CUSTKEY],
        Some(Expr::Not(Box::new(Expr::eq(o::ORDERPRIORITY, "5-LOW")))),
    );
    let plan = customer
        .join_full(orders, vec![0], vec![1], JoinType::Left, None)
        // positions: 0 c_custkey, 1 o_orderkey, 2 o_custkey
        .aggregate(vec![col(0)], vec![agg(AggFunc::Count, col(1))])
        .aggregate(vec![col(1)], vec![agg(AggFunc::Count, lit(1i64))])
        .sort(vec![(1, SortDir::Desc), (0, SortDir::Desc)], None);
    r.run(&plan)
}

/// Q14: promotion effect.
fn q14(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1995, 9, 1);
    let hi = d(1995, 10, 1);
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::PARTKEY, l::EXTENDEDPRICE, l::DISCOUNT],
        Some(Expr::cmp(l::SHIPDATE, CmpOp::Ge, lo).and(Expr::cmp(l::SHIPDATE, CmpOp::Lt, hi))),
    );
    let part = Plan::scan("part", vec![p::PARTKEY, p::TYPE], None);
    // lineitem(0,1,2) ⨝ part(3,4)
    let plan = lineitem
        .join(part, vec![0], vec![0])
        .project(vec![
            (
                Expr::Case {
                    when: vec![(Expr::Like(Box::new(col(4)), "PROMO%".into()), revenue(1, 2))],
                    else_: Box::new(lit(0.0)),
                },
                DataType::Double,
            ),
            (revenue(1, 2), DataType::Double),
        ])
        .aggregate(vec![], vec![agg(AggFunc::Sum, col(0)), agg(AggFunc::Sum, col(1))])
        .project(vec![(mul(lit(100.0), div(col(0), col(1))), DataType::Double)]);
    r.run(&plan)
}

/// Q15: top supplier (revenue view + max).
fn q15(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1996, 1, 1);
    let hi = d(1996, 4, 1);
    let rev = || {
        Plan::scan(
            "lineitem",
            vec![l::SUPPKEY, l::EXTENDEDPRICE, l::DISCOUNT],
            Some(Expr::cmp(l::SHIPDATE, CmpOp::Ge, lo).and(Expr::cmp(l::SHIPDATE, CmpOp::Lt, hi))),
        )
        .aggregate(vec![col(0)], vec![agg(AggFunc::Sum, revenue(1, 2))])
    };
    let max_rev = rev().aggregate(vec![], vec![agg(AggFunc::Max, col(1))]);
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NAME, s::ADDRESS, s::PHONE], None);
    // supplier(0..3) ⨝ rev(4,5) ⨝ max(6) residual rev == max
    let plan = supplier
        .join(rev(), vec![0], vec![0])
        .join_full(
            max_rev,
            vec![], // cross join to the single max-revenue row,
            vec![], // filtered by the equality residual below
            JoinType::Inner,
            Some(cmp_cols(5, CmpOp::Eq, 6)),
        )
        .project(vec![
            (col(0), DataType::Int64),
            (col(1), DataType::Str),
            (col(2), DataType::Str),
            (col(3), DataType::Str),
            (col(5), DataType::Double),
        ])
        .sort(vec![(0, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q16: parts/supplier relationship.
fn q16(r: &dyn PlanRunner) -> Result<Batch> {
    let part = Plan::scan(
        "part",
        vec![p::PARTKEY, p::BRAND, p::TYPE, p::SIZE],
        Some(
            Expr::Not(Box::new(Expr::eq(p::BRAND, "Brand#45")))
                .and(Expr::Not(Box::new(Expr::Like(
                    Box::new(col(p::TYPE)),
                    "MEDIUM POLISHED%".into(),
                ))))
                .and(Expr::InList(
                    Box::new(col(p::SIZE)),
                    vec![
                        Value::Int(49),
                        Value::Int(14),
                        Value::Int(23),
                        Value::Int(45),
                        Value::Int(19),
                        Value::Int(3),
                        Value::Int(36),
                        Value::Int(9),
                    ],
                )),
        ),
    );
    let partsupp = Plan::scan("partsupp", vec![ps::PARTKEY, ps::SUPPKEY], None);
    let complainers = Plan::scan(
        "supplier",
        vec![s::SUPPKEY],
        Some(Expr::Like(Box::new(col(s::COMMENT)), "%Customer%Complaints%".into())),
    );
    // partsupp(0,1) ⨝ part(2..5), anti ⨝ complainers
    let plan = partsupp
        .join(part, vec![0], vec![0])
        .join_full(complainers, vec![1], vec![0], JoinType::Anti, None)
        // distinct (brand, type, size, suppkey) then count per group
        .aggregate(vec![col(3), col(4), col(5), col(1)], vec![])
        .aggregate(vec![col(0), col(1), col(2)], vec![agg(AggFunc::Count, lit(1i64))])
        .sort(
            vec![(3, SortDir::Desc), (0, SortDir::Asc), (1, SortDir::Asc), (2, SortDir::Asc)],
            None,
        );
    r.run(&plan)
}

/// Q17: small-quantity-order revenue.
fn q17(r: &dyn PlanRunner) -> Result<Batch> {
    let part = Plan::scan(
        "part",
        vec![p::PARTKEY],
        Some(Expr::eq(p::BRAND, "Brand#23").and(Expr::eq(p::CONTAINER, "MED BOX"))),
    );
    let lineitem = Plan::scan("lineitem", vec![l::PARTKEY, l::QUANTITY, l::EXTENDEDPRICE], None);
    let avg_qty = Plan::scan("lineitem", vec![l::PARTKEY, l::QUANTITY], None)
        .aggregate(vec![col(0)], vec![agg(AggFunc::Avg, col(1))]);
    // lineitem(0,1,2) ⨝ part(3) ⨝ avg(4,5) residual qty < 0.2*avg
    let plan = lineitem
        .join(part, vec![0], vec![0])
        .join_full(
            avg_qty,
            vec![0],
            vec![0],
            JoinType::Inner,
            Some(Expr::Cmp(CmpOp::Lt, Box::new(col(1)), Box::new(mul(lit(0.2), col(5))))),
        )
        .aggregate(vec![], vec![agg(AggFunc::Sum, col(2))])
        .project(vec![(div(col(0), lit(7.0)), DataType::Double)]);
    r.run(&plan)
}

/// Q18: large volume customers.
fn q18(r: &dyn PlanRunner) -> Result<Batch> {
    let big = Plan::scan("lineitem", vec![l::ORDERKEY, l::QUANTITY], None)
        .aggregate(vec![col(0)], vec![agg(AggFunc::Sum, col(1))])
        .filter(Expr::cmp(1, CmpOp::Gt, 300.0));
    let orders =
        Plan::scan("orders", vec![o::ORDERKEY, o::CUSTKEY, o::ORDERDATE, o::TOTALPRICE], None);
    let customer = Plan::scan("customer", vec![c::CUSTKEY, c::NAME], None);
    // orders(0..3) ⨝ big(4,5) ⨝ customer(6,7)
    let plan = orders
        .join(big, vec![0], vec![0])
        .join(customer, vec![1], vec![0])
        .project(vec![
            (col(7), DataType::Str),
            (col(1), DataType::Int64),
            (col(0), DataType::Int64),
            (col(2), DataType::Int64),
            (col(3), DataType::Double),
            (col(5), DataType::Double),
        ])
        .sort(vec![(4, SortDir::Desc), (3, SortDir::Asc)], Some(100));
    r.run(&plan)
}

/// Q19: discounted revenue (disjunctive bracket predicates).
fn q19(r: &dyn PlanRunner) -> Result<Batch> {
    let lineitem = Plan::scan(
        "lineitem",
        vec![l::PARTKEY, l::QUANTITY, l::EXTENDEDPRICE, l::DISCOUNT, l::SHIPINSTRUCT, l::SHIPMODE],
        Some(Expr::eq(l::SHIPINSTRUCT, "DELIVER IN PERSON").and(Expr::InList(
            Box::new(col(l::SHIPMODE)),
            vec![Value::str("AIR"), Value::str("REG AIR")],
        ))),
    );
    let part = Plan::scan("part", vec![p::PARTKEY, p::BRAND, p::CONTAINER, p::SIZE], None);
    // lineitem(0..5) ⨝ part(6..9)
    let bracket = |brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, smax: i64| {
        Expr::eq(7, brand)
            .and(Expr::InList(
                Box::new(col(8)),
                containers.iter().map(|c| Value::str(*c)).collect(),
            ))
            .and(Expr::between(1, qlo, qhi))
            .and(Expr::between(9, 1i64, smax))
    };
    let plan = lineitem
        .join(part, vec![0], vec![0])
        .filter(Expr::Or(vec![
            bracket("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1.0, 11.0, 5),
            bracket("Brand#23", ["MED BAG", "MED BOX", "MED PKG", "MED PACK"], 10.0, 20.0, 10),
            bracket("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], 20.0, 30.0, 15),
        ]))
        .aggregate(vec![], vec![agg(AggFunc::Sum, revenue(2, 3))]);
    r.run(&plan)
}

/// Q20: potential part promotion.
fn q20(r: &dyn PlanRunner) -> Result<Batch> {
    let lo = d(1994, 1, 1);
    let hi = d(1995, 1, 1);
    let forest = Plan::scan(
        "part",
        vec![p::PARTKEY],
        Some(Expr::Like(Box::new(col(p::NAME)), "forest%".into())),
    );
    let shipped = Plan::scan(
        "lineitem",
        vec![l::PARTKEY, l::SUPPKEY, l::QUANTITY],
        Some(Expr::cmp(l::SHIPDATE, CmpOp::Ge, lo).and(Expr::cmp(l::SHIPDATE, CmpOp::Lt, hi))),
    )
    .aggregate(vec![col(0), col(1)], vec![agg(AggFunc::Sum, col(2))]);
    let partsupp = Plan::scan("partsupp", vec![ps::PARTKEY, ps::SUPPKEY, ps::AVAILQTY], None);
    // partsupp(0,1,2) semi ⨝ forest, ⨝ shipped(3,4,5) residual avail > 0.5*sum
    let excess = partsupp.join_full(forest, vec![0], vec![0], JoinType::Semi, None).join_full(
        shipped,
        vec![0, 1],
        vec![0, 1],
        JoinType::Inner,
        Some(Expr::Cmp(CmpOp::Gt, Box::new(col(2)), Box::new(mul(lit(0.5), col(5))))),
    );
    let supplier =
        Plan::scan("supplier", vec![s::SUPPKEY, s::NAME, s::ADDRESS, s::NATIONKEY], None);
    let nation = Plan::scan("nation", vec![n::NATIONKEY], Some(Expr::eq(n::NAME, "CANADA")));
    let plan = supplier
        .join(nation, vec![3], vec![0])
        .join_full(excess, vec![0], vec![1], JoinType::Semi, None)
        .project(vec![(col(1), DataType::Str), (col(2), DataType::Str)])
        .sort(vec![(0, SortDir::Asc)], None);
    r.run(&plan)
}

/// Q21: suppliers who kept orders waiting.
fn q21(r: &dyn PlanRunner) -> Result<Batch> {
    let late = || {
        Plan::scan(
            "lineitem",
            vec![l::ORDERKEY, l::SUPPKEY],
            Some(cmp_cols(l::RECEIPTDATE, CmpOp::Gt, l::COMMITDATE)),
        )
    };
    let all_lines = Plan::scan("lineitem", vec![l::ORDERKEY, l::SUPPKEY], None);
    let supplier = Plan::scan("supplier", vec![s::SUPPKEY, s::NAME, s::NATIONKEY], None);
    let nation = Plan::scan("nation", vec![n::NATIONKEY], Some(Expr::eq(n::NAME, "SAUDI ARABIA")));
    let orders = Plan::scan("orders", vec![o::ORDERKEY], Some(Expr::eq(o::ORDERSTATUS, "F")));
    // l1: late(0,1) ⨝ supplier(2,3,4) ⨝ nation(5) ⨝ orders(6)
    let l1 = late().join(supplier, vec![1], vec![0]).join(nation, vec![4], vec![0]).join(
        orders,
        vec![0],
        vec![0],
    );
    // EXISTS another supplier in the same order: semi join all_lines on
    // orderkey, residual "different suppkey" (all_lines lands at 7,8).
    let with_other = l1.join_full(
        all_lines,
        vec![0],
        vec![0],
        JoinType::Semi,
        Some(Expr::Not(Box::new(cmp_cols(1, CmpOp::Eq, 8)))),
    );
    // not exists another *late* supplier in same order.
    let lonely_late = with_other.join_full(
        late(),
        vec![0],
        vec![0],
        JoinType::Anti,
        Some(Expr::Not(Box::new(cmp_cols(1, CmpOp::Eq, 8)))),
    );
    let plan = lonely_late
        .aggregate(vec![col(3)], vec![agg(AggFunc::Count, lit(1i64))])
        .sort(vec![(1, SortDir::Desc), (0, SortDir::Asc)], Some(100));
    r.run(&plan)
}

/// Q22: global sales opportunity (two-phase scalar subquery).
fn q22(runner: &dyn PlanRunner) -> Result<Batch> {
    let codes: Vec<Value> =
        ["13", "31", "23", "29", "30", "18", "17"].iter().map(|c| Value::str(*c)).collect();
    let cntrycode = Expr::Substr(Box::new(col(c::PHONE)), 1, 2);
    // Phase 1: average positive balance among those country codes.
    let avg_plan = Plan::scan("customer", vec![c::CUSTKEY, c::PHONE, c::ACCTBAL], None)
        .filter(
            Expr::cmp(2, CmpOp::Gt, 0.0)
                .and(Expr::InList(Box::new(Expr::Substr(Box::new(col(1)), 1, 2)), codes.clone())),
        )
        .aggregate(vec![], vec![agg(AggFunc::Avg, col(2))]);
    let avg_bal = runner.run(&avg_plan)?.value(0, 0).as_double().unwrap_or(0.0);
    // Phase 2: rich, inactive customers grouped by country code.
    let customer = Plan::scan(
        "customer",
        vec![c::CUSTKEY, c::PHONE, c::ACCTBAL],
        Some(
            Expr::cmp(c::ACCTBAL, CmpOp::Gt, avg_bal)
                .and(Expr::InList(Box::new(Expr::Substr(Box::new(col(c::PHONE)), 1, 2)), codes)),
        ),
    );
    let orders = Plan::scan("orders", vec![o::CUSTKEY], None);
    let plan = customer
        .join_full(orders, vec![0], vec![0], JoinType::Anti, None)
        .project(vec![(cntrycode.remap_columns(&|_| 1), DataType::Str), (col(2), DataType::Double)])
        .aggregate(vec![col(0)], vec![agg(AggFunc::Count, lit(1i64)), agg(AggFunc::Sum, col(1))])
        .sort(vec![(0, SortDir::Asc)], None);
    runner.run(&plan)
}
