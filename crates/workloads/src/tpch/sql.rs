//! SQL-text forms of the 22 TPC-H queries.
//!
//! [`super::queries`] holds the hand-built plans; this module holds the same
//! queries as SQL. Each statement is written to mirror the hand plan's join
//! order, projections and predicates, so the `s2-sql` planner lowers it to a
//! plan that returns **byte-identical** results (`tests/sql_equivalence.rs`
//! asserts this per query). Q11 and Q22 use uncorrelated scalar subqueries
//! in the spec; like the hand-built forms, they run in two phases with the
//! intermediate scalar spliced in as a literal.

use s2_common::{Error, Result};
use s2_exec::Batch;
use s2_query::QueryContext;

/// The SQL shape of one TPC-H query.
pub enum SqlForm {
    /// A single SELECT statement.
    Single(&'static str),
    /// Two statements: run `phase1`, read the scalar at (0, 0), splice it
    /// into the statement built by `phase2`.
    TwoPhase {
        /// Scalar-producing first statement.
        phase1: &'static str,
        /// Builds the second statement from the phase-1 scalar.
        phase2: fn(f64) -> String,
    },
}

/// Plan and execute TPC-H query `n` (1..=22) from its SQL text.
pub fn run_query_sql(n: usize, ctx: &dyn QueryContext) -> Result<Batch> {
    match query_sql(n)? {
        SqlForm::Single(sql) => s2_sql::query(ctx, sql),
        SqlForm::TwoPhase { phase1, phase2 } => {
            let scalar = s2_sql::query(ctx, phase1)?.value(0, 0).as_double().unwrap_or(0.0);
            s2_sql::query(ctx, &phase2(scalar))
        }
    }
}

/// SQL text for TPC-H query `n` (1..=22).
pub fn query_sql(n: usize) -> Result<SqlForm> {
    use SqlForm::{Single, TwoPhase};
    Ok(match n {
        1 => Single(
            "SELECT l_returnflag, l_linestatus, \
               SUM(l_quantity), SUM(l_extendedprice), \
               SUM(l_extendedprice * (1.0 - l_discount)), \
               SUM((l_extendedprice * (1.0 - l_discount)) * (1.0 + l_tax)), \
               AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) \
             FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus",
        ),
        2 => Single(Q2),
        3 => Single(
            "SELECT o_orderkey, o_orderdate, o_shippriority, \
               SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
             FROM orders JOIN customer ON o_custkey = c_custkey \
               JOIN lineitem ON o_orderkey = l_orderkey \
             WHERE c_mktsegment = 'BUILDING' \
               AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
             GROUP BY o_orderkey, o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate LIMIT 10",
        ),
        4 => Single(
            "SELECT o_orderpriority, COUNT(*) FROM orders \
             SEMI JOIN (SELECT l_orderkey FROM lineitem \
                        WHERE l_commitdate < l_receiptdate) AS late \
               ON o_orderkey = late.l_orderkey \
             WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' \
             GROUP BY o_orderpriority ORDER BY o_orderpriority",
        ),
        5 => Single(
            "SELECT n_name, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
             FROM orders JOIN customer ON o_custkey = c_custkey \
               JOIN lineitem ON o_orderkey = l_orderkey \
               JOIN supplier ON l_suppkey = s_suppkey AND s_nationkey = c_nationkey \
               JOIN nation ON s_nationkey = n_nationkey \
               JOIN region ON n_regionkey = r_regionkey \
             WHERE o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
               AND r_name = 'ASIA' \
             GROUP BY n_name ORDER BY revenue DESC",
        ),
        6 => Single(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
               AND l_discount BETWEEN 0.05 - 0.000000001 AND 0.07 + 0.000000001 \
               AND l_quantity < 24.0",
        ),
        7 => Single(
            "SELECT n1.n_name, n2.n_name, YEAR(l_shipdate) AS l_year, \
               SUM(l_extendedprice * (1.0 - l_discount)) \
             FROM supplier JOIN lineitem ON s_suppkey = l_suppkey \
               JOIN orders ON l_orderkey = o_orderkey \
               JOIN customer ON o_custkey = c_custkey \
               JOIN nation AS n1 ON s_nationkey = n1.n_nationkey \
               JOIN nation AS n2 ON c_nationkey = n2.n_nationkey \
             WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
               AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
                 OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
             GROUP BY n1.n_name, n2.n_name, YEAR(l_shipdate) \
             ORDER BY 1, 2, 3",
        ),
        8 => Single(
            "SELECT YEAR(o_orderdate) AS o_year, \
               SUM(CASE WHEN n2.n_name = 'BRAZIL' \
                        THEN l_extendedprice * (1.0 - l_discount) ELSE 0.0 END) \
                 / SUM(l_extendedprice * (1.0 - l_discount)) AS mkt_share \
             FROM part JOIN lineitem ON p_partkey = l_partkey \
               JOIN orders ON l_orderkey = o_orderkey \
               JOIN customer ON o_custkey = c_custkey \
               JOIN nation AS n1 ON c_nationkey = n1.n_nationkey \
               JOIN region ON n1.n_regionkey = r_regionkey \
               JOIN supplier ON l_suppkey = s_suppkey \
               JOIN nation AS n2 ON s_nationkey = n2.n_nationkey \
             WHERE p_type = 'ECONOMY ANODIZED STEEL' \
               AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
               AND r_name = 'AMERICA' \
             GROUP BY YEAR(o_orderdate) ORDER BY o_year",
        ),
        9 => Single(
            "SELECT n_name, YEAR(o_orderdate) AS o_year, \
               SUM((l_extendedprice * (1.0 - l_discount)) - (ps_supplycost * l_quantity)) \
             FROM part JOIN lineitem ON p_partkey = l_partkey \
               JOIN partsupp ON l_partkey = ps_partkey AND l_suppkey = ps_suppkey \
               JOIN supplier ON l_suppkey = s_suppkey \
               JOIN orders ON l_orderkey = o_orderkey \
               JOIN nation ON s_nationkey = n_nationkey \
             WHERE p_name LIKE '%green%' \
             GROUP BY n_name, YEAR(o_orderdate) \
             ORDER BY n_name, o_year DESC",
        ),
        10 => Single(
            "SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_comment, \
               SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
             FROM customer JOIN orders ON c_custkey = o_custkey \
               JOIN lineitem ON o_orderkey = l_orderkey \
               JOIN nation ON c_nationkey = n_nationkey \
             WHERE o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
               AND l_returnflag = 'R' \
             GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_comment \
             ORDER BY revenue DESC LIMIT 20",
        ),
        11 => TwoPhase {
            phase1: "SELECT SUM(ps_supplycost * ps_availqty) \
                     FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey \
                       JOIN nation ON s_nationkey = n_nationkey \
                     WHERE n_name = 'GERMANY'",
            phase2: |total| {
                let threshold = total * 0.0001;
                format!(
                    "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
                     FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey \
                       JOIN nation ON s_nationkey = n_nationkey \
                     WHERE n_name = 'GERMANY' \
                     GROUP BY ps_partkey \
                     HAVING SUM(ps_supplycost * ps_availqty) > {threshold:?} \
                     ORDER BY value DESC"
                )
            },
        },
        12 => Single(
            "SELECT l_shipmode, \
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') \
                        THEN 1.0 ELSE 0.0 END), \
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') \
                        THEN 0.0 ELSE 1.0 END) \
             FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
             WHERE l_shipmode IN ('MAIL', 'SHIP') \
               AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
               AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' \
             GROUP BY l_shipmode ORDER BY l_shipmode",
        ),
        // The hand plan stands in for `o_comment NOT LIKE '%special%requests%'`
        // with a priority anti-filter (the schema carries no order comment);
        // the SQL form mirrors that.
        13 => Single(
            "SELECT c_count, COUNT(*) AS custdist FROM \
               (SELECT c_custkey, COUNT(o_orderkey) AS c_count \
                FROM customer LEFT JOIN orders \
                  ON c_custkey = o_custkey AND NOT o_orderpriority = '5-LOW' \
                GROUP BY c_custkey) AS c_orders \
             GROUP BY c_count ORDER BY custdist DESC, c_count DESC",
        ),
        14 => Single(
            "SELECT 100.0 * (SUM(CASE WHEN p_type LIKE 'PROMO%' \
                                      THEN l_extendedprice * (1.0 - l_discount) \
                                      ELSE 0.0 END) \
                             / SUM(l_extendedprice * (1.0 - l_discount))) \
             FROM lineitem JOIN part ON l_partkey = p_partkey \
             WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'",
        ),
        15 => Single(Q15),
        16 => Single(
            "SELECT p_brand, p_type, p_size, COUNT(*) AS supplier_cnt FROM \
               (SELECT DISTINCT p_brand, p_type, p_size, ps_suppkey \
                FROM partsupp JOIN part ON ps_partkey = p_partkey \
                ANTI JOIN (SELECT s_suppkey FROM supplier \
                           WHERE s_comment LIKE '%Customer%Complaints%') AS compl \
                  ON ps_suppkey = compl.s_suppkey \
                WHERE NOT p_brand = 'Brand#45' \
                  AND NOT p_type LIKE 'MEDIUM POLISHED%' \
                  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)) AS pss \
             GROUP BY p_brand, p_type, p_size \
             ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
        ),
        17 => Single(
            "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly \
             FROM lineitem JOIN part ON l_partkey = p_partkey \
               JOIN (SELECT l_partkey AS a_partkey, AVG(l_quantity) AS a_qty \
                     FROM lineitem GROUP BY l_partkey) AS a \
                 ON l_partkey = a_partkey AND l_quantity < 0.2 * a_qty \
             WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX'",
        ),
        18 => Single(
            "SELECT c_name, o_custkey, o_orderkey, o_orderdate, o_totalprice, qty_sum \
             FROM orders \
               JOIN (SELECT l_orderkey AS big_orderkey, SUM(l_quantity) AS qty_sum \
                     FROM lineitem GROUP BY l_orderkey \
                     HAVING SUM(l_quantity) > 300.0) AS big \
                 ON o_orderkey = big_orderkey \
               JOIN customer ON o_custkey = c_custkey \
             ORDER BY o_totalprice DESC, o_orderdate LIMIT 100",
        ),
        19 => Single(Q19),
        20 => Single(Q20),
        21 => Single(Q21),
        22 => TwoPhase {
            phase1: "SELECT AVG(c_acctbal) FROM customer \
                     WHERE c_acctbal > 0.0 \
                       AND SUBSTR(c_phone, 1, 2) IN \
                         ('13', '31', '23', '29', '30', '18', '17')",
            phase2: |avg_bal| {
                format!(
                    "SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, \
                       COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal \
                     FROM customer ANTI JOIN orders ON c_custkey = o_custkey \
                     WHERE c_acctbal > {avg_bal:?} \
                       AND SUBSTR(c_phone, 1, 2) IN \
                         ('13', '31', '23', '29', '30', '18', '17') \
                     GROUP BY SUBSTR(c_phone, 1, 2) \
                     ORDER BY cntrycode"
                )
            },
        },
        _ => return Err(Error::InvalidArgument(format!("no TPC-H query {n}"))),
    })
}

// The minimum-cost-supplier query needs its base join twice (once per side
// of the min-cost self-join), exactly like `q2_base()` in `queries.rs`.
const Q2: &str = "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, \
       s_address, s_phone, s_comment \
 FROM (SELECT p_partkey, p_mfgr, ps_partkey, ps_suppkey, ps_supplycost, \
         s_suppkey, s_name, s_nationkey, s_acctbal, s_address, s_phone, s_comment, \
         n_nationkey, n_name, n_regionkey, r_regionkey \
       FROM part JOIN partsupp ON p_partkey = ps_partkey \
         JOIN supplier ON ps_suppkey = s_suppkey \
         JOIN nation ON s_nationkey = n_nationkey \
         JOIN region ON n_regionkey = r_regionkey \
       WHERE p_size = 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE') AS b \
   JOIN (SELECT p_partkey AS pk, MIN(ps_supplycost) AS min_cost \
         FROM (SELECT p_partkey, p_mfgr, ps_partkey, ps_suppkey, ps_supplycost, \
                 s_suppkey, s_name, s_nationkey, s_acctbal, s_address, s_phone, s_comment, \
                 n_nationkey, n_name, n_regionkey, r_regionkey \
               FROM part JOIN partsupp ON p_partkey = ps_partkey \
                 JOIN supplier ON ps_suppkey = s_suppkey \
                 JOIN nation ON s_nationkey = n_nationkey \
                 JOIN region ON n_regionkey = r_regionkey \
               WHERE p_size = 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE') AS i \
         GROUP BY p_partkey) AS m \
     ON p_partkey = pk AND ps_supplycost = min_cost \
 ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100";

// Top supplier: the revenue view appears twice (joined and max-reduced); the
// max row attaches via CROSS JOIN + WHERE equality, which plans as the same
// keyless hash join the hand plan builds, with the residual as a filter.
const Q15: &str = "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue \
 FROM supplier \
   JOIN (SELECT l_suppkey AS supplier_no, \
           SUM(l_extendedprice * (1.0 - l_discount)) AS total_revenue \
         FROM lineitem \
         WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
         GROUP BY l_suppkey) AS revenue0 \
     ON s_suppkey = supplier_no \
   CROSS JOIN (SELECT MAX(total_revenue) AS max_rev FROM \
         (SELECT l_suppkey AS supplier_no, \
            SUM(l_extendedprice * (1.0 - l_discount)) AS total_revenue \
          FROM lineitem \
          WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
          GROUP BY l_suppkey) AS r2) AS m \
 WHERE total_revenue = max_rev \
 ORDER BY s_suppkey";

const Q19: &str = "SELECT SUM(l_extendedprice * (1.0 - l_discount)) \
 FROM lineitem JOIN part ON l_partkey = p_partkey \
 WHERE l_shipinstruct = 'DELIVER IN PERSON' AND l_shipmode IN ('AIR', 'REG AIR') \
   AND ((p_brand = 'Brand#12' \
         AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
         AND l_quantity BETWEEN 1.0 AND 11.0 AND p_size BETWEEN 1 AND 5) \
     OR (p_brand = 'Brand#23' \
         AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
         AND l_quantity BETWEEN 10.0 AND 20.0 AND p_size BETWEEN 1 AND 10) \
     OR (p_brand = 'Brand#34' \
         AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
         AND l_quantity BETWEEN 20.0 AND 30.0 AND p_size BETWEEN 1 AND 15))";

const Q20: &str = "SELECT s_name, s_address FROM supplier \
   JOIN nation ON s_nationkey = n_nationkey \
   SEMI JOIN (SELECT ps_partkey, ps_suppkey, ps_availqty FROM partsupp \
              SEMI JOIN (SELECT p_partkey FROM part \
                         WHERE p_name LIKE 'forest%') AS forest \
                ON ps_partkey = forest.p_partkey \
              JOIN (SELECT l_partkey AS sl_partkey, l_suppkey AS sl_suppkey, \
                      SUM(l_quantity) AS sum_qty \
                    FROM lineitem \
                    WHERE l_shipdate >= DATE '1994-01-01' \
                      AND l_shipdate < DATE '1995-01-01' \
                    GROUP BY l_partkey, l_suppkey) AS shipped \
                ON ps_partkey = sl_partkey AND ps_suppkey = sl_suppkey \
                   AND ps_availqty > 0.5 * sum_qty) AS excess \
     ON s_suppkey = excess.ps_suppkey \
 WHERE n_name = 'CANADA' \
 ORDER BY s_name";

const Q21: &str = "SELECT s_name, COUNT(*) AS numwait \
 FROM (SELECT l_orderkey, l_suppkey FROM lineitem \
       WHERE l_receiptdate > l_commitdate) AS l1 \
   JOIN supplier ON l1.l_suppkey = s_suppkey \
   JOIN nation ON s_nationkey = n_nationkey \
   JOIN orders ON l1.l_orderkey = o_orderkey \
   SEMI JOIN lineitem AS l2 \
     ON l1.l_orderkey = l2.l_orderkey AND NOT l1.l_suppkey = l2.l_suppkey \
   ANTI JOIN (SELECT l_orderkey, l_suppkey FROM lineitem \
              WHERE l_receiptdate > l_commitdate) AS l3 \
     ON l1.l_orderkey = l3.l_orderkey AND NOT l1.l_suppkey = l3.l_suppkey \
 WHERE n_name = 'SAUDI ARABIA' AND o_orderstatus = 'F' \
 GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100";
