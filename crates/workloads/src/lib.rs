//! Benchmark workloads reproducing the paper's §6 evaluation: TPC-C (OLTP),
//! TPC-H (OLAP, all 22 queries) and the CH-BenCHmark mixed workload, each
//! runnable against the unified-storage cluster and the CDW/CDB comparator
//! models.

pub mod ch;
pub mod tpcc;
pub mod tpch;
