//! TPC-C transaction profiles against the engines under test: the S2DB
//! cluster (unified table storage, real transactions with row-level locking
//! and move transactions) and the CDB comparator (row store, per-operation
//! application). The CDW comparator is deliberately absent: its model
//! supports neither unique keys nor point updates, which is the paper's
//! point ("CDW1 and CDW2 do not support running TPC-C").

use std::sync::Arc;

use s2_baseline::CdbEngine;
use s2_cluster::Cluster;
use s2_common::{Error, Result, Row, Value};
use s2_core::DuplicatePolicy;
use s2_exec::{Expr, SortDir};
use s2_query::{ExecOptions, Plan};

use super::{tables, TpccRng, TpccScale};

/// How a customer is identified (60% by last name per the spec).
#[derive(Debug, Clone)]
pub enum CustomerSel {
    /// By customer id.
    Id(i64),
    /// By last name (pick the median match ordered by first name).
    LastName(String),
}

/// New-order parameters.
#[derive(Debug, Clone)]
pub struct NewOrderParams {
    /// Warehouse.
    pub w: i64,
    /// District.
    pub d: i64,
    /// Customer id.
    pub c: i64,
    /// (item id, supply warehouse, quantity) per line; an item id of -1
    /// triggers the spec's 1% intentional rollback.
    pub lines: Vec<(i64, i64, i64)>,
    /// Entry date.
    pub entry_d: i64,
}

/// Payment parameters.
#[derive(Debug, Clone)]
pub struct PaymentParams {
    /// Warehouse paying through.
    pub w: i64,
    /// District paying through.
    pub d: i64,
    /// Customer's warehouse (15% remote).
    pub c_w: i64,
    /// Customer's district.
    pub c_d: i64,
    /// Customer selector.
    pub customer: CustomerSel,
    /// Amount.
    pub amount: f64,
    /// Date.
    pub date: i64,
}

/// Order-status parameters.
#[derive(Debug, Clone)]
pub struct OrderStatusParams {
    /// Warehouse.
    pub w: i64,
    /// District.
    pub d: i64,
    /// Customer selector.
    pub customer: CustomerSel,
}

/// Delivery parameters.
#[derive(Debug, Clone)]
pub struct DeliveryParams {
    /// Warehouse.
    pub w: i64,
    /// Carrier id.
    pub carrier: i64,
    /// Delivery date.
    pub date: i64,
}

/// Stock-level parameters.
#[derive(Debug, Clone)]
pub struct StockLevelParams {
    /// Warehouse.
    pub w: i64,
    /// District.
    pub d: i64,
    /// Threshold.
    pub threshold: f64,
}

/// Generate the parameters of one transaction of each type.
pub fn gen_new_order(rng: &mut TpccRng, scale: &TpccScale) -> NewOrderParams {
    let w = rng.uniform(1, scale.warehouses);
    let d = rng.uniform(1, scale.districts);
    let c = rng.customer_id(scale.customers);
    let n_lines = rng.uniform(5, 15);
    let rollback = rng.uniform(1, 100) == 1;
    let mut lines = Vec::with_capacity(n_lines as usize);
    for i in 0..n_lines {
        let item = if rollback && i == n_lines - 1 { -1 } else { rng.item_id(scale.items) };
        // 1% remote warehouse when more than one exists.
        let supply = if scale.warehouses > 1 && rng.uniform(1, 100) == 1 {
            let mut s = rng.uniform(1, scale.warehouses - 1);
            if s >= w {
                s += 1;
            }
            s
        } else {
            w
        };
        lines.push((item, supply, rng.uniform(1, 10)));
    }
    NewOrderParams { w, d, c, lines, entry_d: s2_common::date::days_from_ymd(2022, 6, 1) }
}

/// Payment parameter generation.
pub fn gen_payment(rng: &mut TpccRng, scale: &TpccScale) -> PaymentParams {
    let w = rng.uniform(1, scale.warehouses);
    let d = rng.uniform(1, scale.districts);
    let (c_w, c_d) = if scale.warehouses > 1 && rng.uniform(1, 100) <= 15 {
        let mut rw = rng.uniform(1, scale.warehouses - 1);
        if rw >= w {
            rw += 1;
        }
        (rw, rng.uniform(1, scale.districts))
    } else {
        (w, d)
    };
    let customer = if rng.uniform(1, 100) <= 60 {
        CustomerSel::LastName(super::last_name(rng.lastname_num(scale.customers)))
    } else {
        CustomerSel::Id(rng.customer_id(scale.customers))
    };
    PaymentParams {
        w,
        d,
        c_w,
        c_d,
        customer,
        amount: rng.uniform_f(1.0, 5000.0),
        date: s2_common::date::days_from_ymd(2022, 6, 1),
    }
}

/// Order-status parameter generation.
pub fn gen_order_status(rng: &mut TpccRng, scale: &TpccScale) -> OrderStatusParams {
    let customer = if rng.uniform(1, 100) <= 60 {
        CustomerSel::LastName(super::last_name(rng.lastname_num(scale.customers)))
    } else {
        CustomerSel::Id(rng.customer_id(scale.customers))
    };
    OrderStatusParams {
        w: rng.uniform(1, scale.warehouses),
        d: rng.uniform(1, scale.districts),
        customer,
    }
}

/// Delivery parameter generation.
pub fn gen_delivery(rng: &mut TpccRng, scale: &TpccScale) -> DeliveryParams {
    DeliveryParams {
        w: rng.uniform(1, scale.warehouses),
        carrier: rng.uniform(1, 10),
        date: s2_common::date::days_from_ymd(2022, 6, 2),
    }
}

/// Stock-level parameter generation.
pub fn gen_stock_level(rng: &mut TpccRng, scale: &TpccScale) -> StockLevelParams {
    StockLevelParams {
        w: rng.uniform(1, scale.warehouses),
        d: rng.uniform(1, scale.districts),
        threshold: rng.uniform(10, 20) as f64,
    }
}

/// A TPC-C-capable engine.
pub trait TpccBackend: Send + Sync {
    /// Execute new-order; `Ok(false)` = the spec's intentional rollback.
    fn new_order(&self, p: &NewOrderParams) -> Result<bool>;
    /// Execute payment.
    fn payment(&self, p: &PaymentParams) -> Result<()>;
    /// Execute order-status.
    fn order_status(&self, p: &OrderStatusParams) -> Result<()>;
    /// Execute delivery (all districts of the warehouse).
    fn delivery(&self, p: &DeliveryParams) -> Result<()>;
    /// Execute stock-level; returns the low-stock count.
    fn stock_level(&self, p: &StockLevelParams) -> Result<i64>;
}

// ---------------------------------------------------------------------------
// S2DB backend
// ---------------------------------------------------------------------------

/// TPC-C over the unified-storage cluster.
pub struct ClusterBackend {
    /// Target cluster.
    pub cluster: Arc<Cluster>,
    /// Scale (for district counts in delivery).
    pub scale: TpccScale,
    opts: ExecOptions,
}

impl ClusterBackend {
    /// Wrap a loaded cluster.
    pub fn new(cluster: Arc<Cluster>, scale: TpccScale) -> ClusterBackend {
        ClusterBackend { cluster, scale, opts: ExecOptions::default() }
    }

    /// Resolve a customer selector to an id (median-by-first-name for last
    /// names, via the multi-column secondary index on (w, d, last)).
    fn resolve_customer(&self, w: i64, d: i64, sel: &CustomerSel) -> Result<i64> {
        match sel {
            CustomerSel::Id(id) => Ok(*id),
            CustomerSel::LastName(name) => {
                let plan = Plan::scan(
                    "customer",
                    vec![2, 3],
                    Some(Expr::eq(0, w).and(Expr::eq(1, d)).and(Expr::eq(4, name.as_str()))),
                )
                .sort(vec![(1, SortDir::Asc)], None);
                let out = self.cluster.execute(&plan, &self.opts)?;
                if out.rows() == 0 {
                    return Err(Error::NotFound(format!("customer last name {name:?}")));
                }
                Ok(out.value(0, out.rows() / 2).as_int()?)
            }
        }
    }
}

impl TpccBackend for ClusterBackend {
    fn new_order(&self, p: &NewOrderParams) -> Result<bool> {
        let mut txn = self.cluster.begin();
        let _w_tax = txn
            .get_unique("warehouse", &[Value::Int(p.w)])?
            .ok_or_else(|| Error::NotFound("warehouse".into()))?
            .get(2)
            .as_double()?;
        // Read and bump the district's next order id.
        let mut o_id = 0;
        let ok =
            txn.update_unique_with("district", &[Value::Int(p.w), Value::Int(p.d)], |row| {
                o_id = row.get(5).as_int().unwrap();
                let mut v = row.values().to_vec();
                v[5] = Value::Int(o_id + 1);
                Row::new(v)
            })?;
        if !ok {
            return Err(Error::NotFound("district".into()));
        }
        let customer = txn
            .get_unique("customer", &[Value::Int(p.w), Value::Int(p.d), Value::Int(p.c)])?
            .ok_or_else(|| Error::NotFound("customer".into()))?;
        let _discount = customer.get(9).as_double()?;

        txn.insert(
            "orders",
            Row::new(vec![
                Value::Int(p.w),
                Value::Int(p.d),
                Value::Int(o_id),
                Value::Int(p.c),
                Value::Int(p.entry_d),
                Value::Null,
                Value::Int(p.lines.len() as i64),
            ]),
        )?;
        txn.insert(
            "new_order",
            Row::new(vec![Value::Int(p.w), Value::Int(p.d), Value::Int(o_id)]),
        )?;

        // Acquire stock locks in a canonical order (supply warehouse, item)
        // so concurrent new-orders cannot deadlock on each other's stock
        // rows; the line numbering follows the sorted order, which the spec
        // permits (line numbers just need to be unique per order).
        let mut lines = p.lines.clone();
        lines.sort_unstable();
        if lines.first().is_some_and(|(i, _, _)| *i == -1) {
            // The spec's 1% unused-item rollback (checked up front so the
            // district bump above still exercises the rollback path).
            txn.rollback();
            return Ok(false);
        }
        for (number, (item, supply_w, qty)) in lines.iter().enumerate() {
            let Some(item_row) = txn.get_unique("item", &[Value::Int(*item)])? else {
                txn.rollback();
                return Ok(false);
            };
            let price = item_row.get(2).as_double()?;
            let remote = *supply_w != p.w;
            let updated = txn.update_unique_with(
                "stock",
                &[Value::Int(*supply_w), Value::Int(*item)],
                |row| {
                    let mut v = row.values().to_vec();
                    let q = row.get(2).as_double().unwrap();
                    let new_q = if q >= *qty as f64 + 10.0 {
                        q - *qty as f64
                    } else {
                        q - *qty as f64 + 91.0
                    };
                    v[2] = Value::Double(new_q);
                    v[3] = Value::Double(row.get(3).as_double().unwrap() + *qty as f64);
                    v[4] = Value::Int(row.get(4).as_int().unwrap() + 1);
                    if remote {
                        v[5] = Value::Int(row.get(5).as_int().unwrap() + 1);
                    }
                    Row::new(v)
                },
            )?;
            if !updated {
                return Err(Error::NotFound("stock".into()));
            }
            txn.insert(
                "order_line",
                Row::new(vec![
                    Value::Int(p.w),
                    Value::Int(p.d),
                    Value::Int(o_id),
                    Value::Int(number as i64 + 1),
                    Value::Int(*item),
                    Value::Int(*supply_w),
                    Value::Null,
                    Value::Double(*qty as f64),
                    Value::Double(price * *qty as f64),
                ]),
            )?;
        }
        txn.commit()?;
        Ok(true)
    }

    fn payment(&self, p: &PaymentParams) -> Result<()> {
        let c_id = self.resolve_customer(p.c_w, p.c_d, &p.customer)?;
        let mut txn = self.cluster.begin();
        txn.update_unique_with("warehouse", &[Value::Int(p.w)], |row| {
            let mut v = row.values().to_vec();
            v[3] = Value::Double(row.get(3).as_double().unwrap() + p.amount);
            Row::new(v)
        })?;
        txn.update_unique_with("district", &[Value::Int(p.w), Value::Int(p.d)], |row| {
            let mut v = row.values().to_vec();
            v[4] = Value::Double(row.get(4).as_double().unwrap() + p.amount);
            Row::new(v)
        })?;
        txn.update_unique_with(
            "customer",
            &[Value::Int(p.c_w), Value::Int(p.c_d), Value::Int(c_id)],
            |row| {
                let mut v = row.values().to_vec();
                v[5] = Value::Double(row.get(5).as_double().unwrap() - p.amount);
                v[6] = Value::Double(row.get(6).as_double().unwrap() + p.amount);
                v[7] = Value::Int(row.get(7).as_int().unwrap() + 1);
                Row::new(v)
            },
        )?;
        txn.insert(
            "history",
            Row::new(vec![
                Value::Int(p.c_w),
                Value::Int(p.c_d),
                Value::Int(c_id),
                Value::Int(p.date),
                Value::Double(p.amount),
            ]),
        )?;
        txn.commit()?;
        Ok(())
    }

    fn order_status(&self, p: &OrderStatusParams) -> Result<()> {
        let c_id = self.resolve_customer(p.w, p.d, &p.customer)?;
        // Latest order of the customer via the (w, d, c) secondary index.
        let plan = Plan::scan(
            "orders",
            vec![2, 5, 6],
            Some(Expr::eq(0, p.w).and(Expr::eq(1, p.d)).and(Expr::eq(3, c_id))),
        )
        .sort(vec![(0, SortDir::Desc)], Some(1));
        let out = self.cluster.execute(&plan, &self.opts)?;
        if out.rows() == 0 {
            return Ok(()); // customer with no orders
        }
        let o_id = out.value(0, 0).as_int()?;
        let ol_cnt = out.value(2, 0).as_int()?;
        let mut txn = self.cluster.begin();
        for ol in 1..=ol_cnt {
            let _ = txn.get_unique(
                "order_line",
                &[Value::Int(p.w), Value::Int(p.d), Value::Int(o_id), Value::Int(ol)],
            )?;
        }
        txn.rollback(); // read-only
        Ok(())
    }

    fn delivery(&self, p: &DeliveryParams) -> Result<()> {
        for d in 1..=self.scale.districts {
            let mut txn = self.cluster.begin();
            // Claim the district's next undelivered order by bumping the
            // delivery cursor first: this takes the district lock up front,
            // serializing deliveries per district and keeping the lock order
            // (district before customer) consistent with payment.
            let mut del_o = 0;
            let mut next_o = 0;
            let ok =
                txn.update_unique_with("district", &[Value::Int(p.w), Value::Int(d)], |row| {
                    del_o = row.get(6).as_int().unwrap();
                    next_o = row.get(5).as_int().unwrap();
                    let mut v = row.values().to_vec();
                    if del_o < next_o {
                        v[6] = Value::Int(del_o + 1);
                    }
                    Row::new(v)
                })?;
            if !ok {
                txn.rollback();
                return Err(Error::NotFound("district".into()));
            }
            if del_o >= next_o {
                txn.rollback();
                continue; // nothing to deliver in this district
            }
            let _ = txn
                .delete_unique("new_order", &[Value::Int(p.w), Value::Int(d), Value::Int(del_o)])?;
            let mut ol_cnt = 0;
            let mut c_id = 0;
            let updated = txn.update_unique_with(
                "orders",
                &[Value::Int(p.w), Value::Int(d), Value::Int(del_o)],
                |row| {
                    ol_cnt = row.get(6).as_int().unwrap();
                    c_id = row.get(3).as_int().unwrap();
                    let mut v = row.values().to_vec();
                    v[5] = Value::Int(p.carrier);
                    Row::new(v)
                },
            )?;
            if updated {
                let mut total = 0.0;
                for ol in 1..=ol_cnt {
                    txn.update_unique_with(
                        "order_line",
                        &[Value::Int(p.w), Value::Int(d), Value::Int(del_o), Value::Int(ol)],
                        |row| {
                            total += row.get(8).as_double().unwrap();
                            let mut v = row.values().to_vec();
                            v[6] = Value::Int(p.date);
                            Row::new(v)
                        },
                    )?;
                }
                txn.update_unique_with(
                    "customer",
                    &[Value::Int(p.w), Value::Int(d), Value::Int(c_id)],
                    |row| {
                        let mut v = row.values().to_vec();
                        v[5] = Value::Double(row.get(5).as_double().unwrap() + total);
                        Row::new(v)
                    },
                )?;
            }
            txn.commit()?;
        }
        Ok(())
    }

    fn stock_level(&self, p: &StockLevelParams) -> Result<i64> {
        let mut txn = self.cluster.begin();
        let district = txn
            .get_unique("district", &[Value::Int(p.w), Value::Int(p.d)])?
            .ok_or_else(|| Error::NotFound("district".into()))?;
        let next_o = district.get(5).as_int()?;
        let mut items = std::collections::HashSet::new();
        for o in (next_o - 20).max(1)..next_o {
            let Some(order) =
                txn.get_unique("orders", &[Value::Int(p.w), Value::Int(p.d), Value::Int(o)])?
            else {
                continue;
            };
            let ol_cnt = order.get(6).as_int()?;
            for ol in 1..=ol_cnt {
                if let Some(line) = txn.get_unique(
                    "order_line",
                    &[Value::Int(p.w), Value::Int(p.d), Value::Int(o), Value::Int(ol)],
                )? {
                    items.insert(line.get(4).as_int()?);
                }
            }
        }
        let mut low = 0;
        for item in items {
            if let Some(stock) = txn.get_unique("stock", &[Value::Int(p.w), Value::Int(item)])? {
                if stock.get(2).as_double()? < p.threshold {
                    low += 1;
                }
            }
        }
        txn.rollback(); // read-only
        Ok(low)
    }
}

/// Load TPC-C data into the cluster.
pub fn load_cluster(cluster: &Arc<Cluster>, scale: &TpccScale, seed: u64) -> Result<()> {
    for t in tables() {
        cluster.create_table(t.name, t.schema.clone(), t.options.clone())?;
    }
    for (name, rows) in super::generate_rows(scale, seed) {
        for chunk in rows.chunks(5000) {
            let mut txn = cluster.begin();
            txn.insert_batch(name, chunk.to_vec(), DuplicatePolicy::Error)?;
            txn.commit()?;
        }
        cluster.flush_table(name)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CDB backend
// ---------------------------------------------------------------------------

/// TPC-C over the row-store comparator. Operations apply immediately
/// (per-op consistency): throughput-comparable, not isolation-comparable.
pub struct CdbBackend {
    /// The engine.
    pub engine: Arc<CdbEngine>,
    /// Scale.
    pub scale: TpccScale,
}

impl CdbBackend {
    fn resolve_customer(&self, w: i64, d: i64, sel: &CustomerSel) -> Result<i64> {
        match sel {
            CustomerSel::Id(id) => Ok(*id),
            CustomerSel::LastName(name) => {
                let mut rows = self.engine.lookup_secondary(
                    "customer",
                    &[0, 1, 4],
                    &[Value::Int(w), Value::Int(d), Value::str(name.as_str())],
                )?;
                if rows.is_empty() {
                    return Err(Error::NotFound(format!("customer last name {name:?}")));
                }
                rows.sort_by(|a, b| a.get(3).total_cmp(b.get(3)));
                rows[rows.len() / 2].get(2).as_int()
            }
        }
    }
}

impl TpccBackend for CdbBackend {
    fn new_order(&self, p: &NewOrderParams) -> Result<bool> {
        let e = &self.engine;
        // Intentional rollback check first (CDB has no multi-op rollback here).
        if p.lines.iter().any(|(i, _, _)| *i == -1) {
            return Ok(false);
        }
        let mut o_id = 0;
        e.update_with("district", &[Value::Int(p.w), Value::Int(p.d)], |row| {
            o_id = row.get(5).as_int().unwrap();
            let mut v = row.values().to_vec();
            v[5] = Value::Int(o_id + 1);
            Row::new(v)
        })?;
        let _ = e.get("warehouse", &[Value::Int(p.w)])?;
        let _ = e.get("customer", &[Value::Int(p.w), Value::Int(p.d), Value::Int(p.c)])?;
        e.insert(
            "orders",
            Row::new(vec![
                Value::Int(p.w),
                Value::Int(p.d),
                Value::Int(o_id),
                Value::Int(p.c),
                Value::Int(p.entry_d),
                Value::Null,
                Value::Int(p.lines.len() as i64),
            ]),
        )?;
        e.insert("new_order", Row::new(vec![Value::Int(p.w), Value::Int(p.d), Value::Int(o_id)]))?;
        for (number, (item, supply_w, qty)) in p.lines.iter().enumerate() {
            let item_row = e
                .get("item", &[Value::Int(*item)])?
                .ok_or_else(|| Error::NotFound("item".into()))?;
            let price = item_row.get(2).as_double()?;
            e.update_with("stock", &[Value::Int(*supply_w), Value::Int(*item)], |row| {
                let mut v = row.values().to_vec();
                v[2] = Value::Double(row.get(2).as_double().unwrap() - *qty as f64);
                v[4] = Value::Int(row.get(4).as_int().unwrap() + 1);
                Row::new(v)
            })?;
            e.insert(
                "order_line",
                Row::new(vec![
                    Value::Int(p.w),
                    Value::Int(p.d),
                    Value::Int(o_id),
                    Value::Int(number as i64 + 1),
                    Value::Int(*item),
                    Value::Int(*supply_w),
                    Value::Null,
                    Value::Double(*qty as f64),
                    Value::Double(price * *qty as f64),
                ]),
            )?;
        }
        Ok(true)
    }

    fn payment(&self, p: &PaymentParams) -> Result<()> {
        let e = &self.engine;
        let c_id = self.resolve_customer(p.c_w, p.c_d, &p.customer)?;
        e.update_with("warehouse", &[Value::Int(p.w)], |row| {
            let mut v = row.values().to_vec();
            v[3] = Value::Double(row.get(3).as_double().unwrap() + p.amount);
            Row::new(v)
        })?;
        e.update_with("district", &[Value::Int(p.w), Value::Int(p.d)], |row| {
            let mut v = row.values().to_vec();
            v[4] = Value::Double(row.get(4).as_double().unwrap() + p.amount);
            Row::new(v)
        })?;
        e.update_with(
            "customer",
            &[Value::Int(p.c_w), Value::Int(p.c_d), Value::Int(c_id)],
            |row| {
                let mut v = row.values().to_vec();
                v[5] = Value::Double(row.get(5).as_double().unwrap() - p.amount);
                Row::new(v)
            },
        )?;
        e.insert(
            "history",
            Row::new(vec![
                Value::Int(p.c_w),
                Value::Int(p.c_d),
                Value::Int(c_id),
                Value::Int(p.date),
                Value::Double(p.amount),
            ]),
        )?;
        Ok(())
    }

    fn order_status(&self, p: &OrderStatusParams) -> Result<()> {
        let e = &self.engine;
        let c_id = self.resolve_customer(p.w, p.d, &p.customer)?;
        let orders = e.lookup_secondary(
            "orders",
            &[0, 1, 3],
            &[Value::Int(p.w), Value::Int(p.d), Value::Int(c_id)],
        )?;
        let Some(last) = orders.iter().max_by_key(|r| r.get(2).as_int().unwrap()) else {
            return Ok(());
        };
        let o_id = last.get(2).as_int()?;
        let ol_cnt = last.get(6).as_int()?;
        for ol in 1..=ol_cnt {
            let _ = e.get(
                "order_line",
                &[Value::Int(p.w), Value::Int(p.d), Value::Int(o_id), Value::Int(ol)],
            )?;
        }
        Ok(())
    }

    fn delivery(&self, p: &DeliveryParams) -> Result<()> {
        let e = &self.engine;
        for d in 1..=self.scale.districts {
            let Some(district) = e.get("district", &[Value::Int(p.w), Value::Int(d)])? else {
                continue;
            };
            let del_o = district.get(6).as_int()?;
            let next_o = district.get(5).as_int()?;
            if del_o >= next_o {
                continue;
            }
            e.delete("new_order", &[Value::Int(p.w), Value::Int(d), Value::Int(del_o)])?;
            let mut ol_cnt = 0;
            let mut c_id = 0;
            let updated = e.update_with(
                "orders",
                &[Value::Int(p.w), Value::Int(d), Value::Int(del_o)],
                |row| {
                    ol_cnt = row.get(6).as_int().unwrap();
                    c_id = row.get(3).as_int().unwrap();
                    let mut v = row.values().to_vec();
                    v[5] = Value::Int(p.carrier);
                    Row::new(v)
                },
            )?;
            if updated {
                let mut total = 0.0;
                for ol in 1..=ol_cnt {
                    e.update_with(
                        "order_line",
                        &[Value::Int(p.w), Value::Int(d), Value::Int(del_o), Value::Int(ol)],
                        |row| {
                            total += row.get(8).as_double().unwrap();
                            let mut v = row.values().to_vec();
                            v[6] = Value::Int(p.date);
                            Row::new(v)
                        },
                    )?;
                }
                e.update_with(
                    "customer",
                    &[Value::Int(p.w), Value::Int(d), Value::Int(c_id)],
                    |row| {
                        let mut v = row.values().to_vec();
                        v[5] = Value::Double(row.get(5).as_double().unwrap() + total);
                        Row::new(v)
                    },
                )?;
            }
            e.update_with("district", &[Value::Int(p.w), Value::Int(d)], |row| {
                let mut v = row.values().to_vec();
                v[6] = Value::Int(del_o + 1);
                Row::new(v)
            })?;
        }
        Ok(())
    }

    fn stock_level(&self, p: &StockLevelParams) -> Result<i64> {
        let e = &self.engine;
        let district = e
            .get("district", &[Value::Int(p.w), Value::Int(p.d)])?
            .ok_or_else(|| Error::NotFound("district".into()))?;
        let next_o = district.get(5).as_int()?;
        let mut items = std::collections::HashSet::new();
        for o in (next_o - 20).max(1)..next_o {
            let Some(order) =
                e.get("orders", &[Value::Int(p.w), Value::Int(p.d), Value::Int(o)])?
            else {
                continue;
            };
            let ol_cnt = order.get(6).as_int()?;
            for ol in 1..=ol_cnt {
                if let Some(line) = e.get(
                    "order_line",
                    &[Value::Int(p.w), Value::Int(p.d), Value::Int(o), Value::Int(ol)],
                )? {
                    items.insert(line.get(4).as_int()?);
                }
            }
        }
        let mut low = 0;
        for item in items {
            if let Some(stock) = e.get("stock", &[Value::Int(p.w), Value::Int(item)])? {
                if stock.get(2).as_double()? < p.threshold {
                    low += 1;
                }
            }
        }
        Ok(low)
    }
}

/// Load TPC-C data into the CDB comparator.
pub fn load_cdb(engine: &Arc<CdbEngine>, scale: &TpccScale, seed: u64) -> Result<()> {
    for t in tables() {
        // History has no natural PK; give the CDB model a synthetic one by
        // keying on all columns.
        let pk = if t.pk.is_empty() { (0..t.schema.len()).collect() } else { t.pk.clone() };
        engine.create_table(t.name, t.schema.clone(), pk, t.secondary.clone())?;
    }
    for (name, rows) in super::generate_rows(scale, seed) {
        for row in rows {
            engine.insert(name, row)?;
        }
    }
    Ok(())
}
