//! TPC-C-derived OLTP workload (paper §6, Table 1): the five standard
//! transaction profiles over the nine-table schema, runnable at scaled-down
//! warehouse counts with proportionally scaled keying/think times so the
//! per-warehouse tpmC ceiling semantics (max 12.86 tpmC/warehouse) carry
//! over to laptop scale.
//!
//! All tables are sharded by warehouse id, so transactions are almost always
//! single-partition — the same property the paper's S2DB schema has.

pub mod backend;
pub mod driver;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};

/// Cardinalities per warehouse. The official scale is `TpccScale::full()`;
/// tests and laptop benches shrink everything but keep the structure.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    /// Warehouses.
    pub warehouses: i64,
    /// Districts per warehouse (spec: 10).
    pub districts: i64,
    /// Customers per district (spec: 3000).
    pub customers: i64,
    /// Items (global; spec: 100_000).
    pub items: i64,
    /// Pre-loaded orders per district (spec: 3000).
    pub preload_orders: i64,
}

impl TpccScale {
    /// Specification cardinalities.
    pub fn full(warehouses: i64) -> TpccScale {
        TpccScale {
            warehouses,
            districts: 10,
            customers: 3000,
            items: 100_000,
            preload_orders: 3000,
        }
    }

    /// Laptop-bench cardinalities.
    pub fn bench(warehouses: i64) -> TpccScale {
        TpccScale { warehouses, districts: 10, customers: 300, items: 10_000, preload_orders: 100 }
    }

    /// Unit-test cardinalities.
    pub fn tiny(warehouses: i64) -> TpccScale {
        TpccScale { warehouses, districts: 2, customers: 20, items: 50, preload_orders: 5 }
    }
}

/// Table definition: name, schema, unified-storage options, CDB-style keys.
pub struct TpccTable {
    /// Table name.
    pub name: &'static str,
    /// Schema.
    pub schema: Schema,
    /// Options for the unified-storage engine.
    pub options: TableOptions,
    /// Primary key for the CDB comparator.
    pub pk: Vec<usize>,
    /// Secondary indexes for the CDB comparator.
    pub secondary: Vec<Vec<usize>>,
}

/// The nine TPC-C tables.
pub fn tables() -> Vec<TpccTable> {
    let int = |n: &str| ColumnDef::new(n.to_string(), DataType::Int64);
    let intn = |n: &str| ColumnDef::nullable(n.to_string(), DataType::Int64);
    let dbl = |n: &str| ColumnDef::new(n.to_string(), DataType::Double);
    let txt = |n: &str| ColumnDef::new(n.to_string(), DataType::Str);
    vec![
        TpccTable {
            name: "warehouse",
            schema: Schema::new(vec![int("w_id"), txt("w_name"), dbl("w_tax"), dbl("w_ytd")])
                .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            pk: vec![0],
            secondary: vec![],
        },
        TpccTable {
            name: "district",
            schema: Schema::new(vec![
                int("d_w_id"),
                int("d_id"),
                txt("d_name"),
                dbl("d_tax"),
                dbl("d_ytd"),
                int("d_next_o_id"),
                int("d_next_del_o_id"),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0, 1]),
            pk: vec![0, 1],
            secondary: vec![],
        },
        TpccTable {
            name: "customer",
            schema: Schema::new(vec![
                int("c_w_id"),
                int("c_d_id"),
                int("c_id"),
                txt("c_first"),
                txt("c_last"),
                dbl("c_balance"),
                dbl("c_ytd_payment"),
                int("c_payment_cnt"),
                txt("c_credit"),
                dbl("c_discount"),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0, 1, 2])
                .with_index("by_last", vec![0, 1, 4]),
            pk: vec![0, 1, 2],
            secondary: vec![vec![0, 1, 4]],
        },
        TpccTable {
            name: "history",
            schema: Schema::new(vec![
                int("h_w_id"),
                int("h_d_id"),
                int("h_c_id"),
                int("h_date"),
                dbl("h_amount"),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]),
            pk: vec![],
            secondary: vec![],
        },
        TpccTable {
            name: "orders",
            schema: Schema::new(vec![
                int("o_w_id"),
                int("o_d_id"),
                int("o_id"),
                int("o_c_id"),
                int("o_entry_d"),
                intn("o_carrier_id"),
                int("o_ol_cnt"),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0, 1, 2])
                .with_index("by_cust", vec![0, 1, 3]),
            pk: vec![0, 1, 2],
            secondary: vec![vec![0, 1, 3]],
        },
        TpccTable {
            name: "new_order",
            schema: Schema::new(vec![int("no_w_id"), int("no_d_id"), int("no_o_id")]).unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0, 1, 2]),
            pk: vec![0, 1, 2],
            secondary: vec![],
        },
        TpccTable {
            name: "item",
            schema: Schema::new(vec![int("i_id"), txt("i_name"), dbl("i_price"), txt("i_data")])
                .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
            pk: vec![0],
            secondary: vec![],
        },
        TpccTable {
            name: "stock",
            schema: Schema::new(vec![
                int("s_w_id"),
                int("s_i_id"),
                dbl("s_quantity"),
                dbl("s_ytd"),
                int("s_order_cnt"),
                int("s_remote_cnt"),
                txt("s_data"),
            ])
            .unwrap(),
            options: TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0, 1]),
            pk: vec![0, 1],
            secondary: vec![],
        },
        TpccTable {
            name: "order_line",
            schema: Schema::new(vec![
                int("ol_w_id"),
                int("ol_d_id"),
                int("ol_o_id"),
                int("ol_number"),
                int("ol_i_id"),
                int("ol_supply_w_id"),
                intn("ol_delivery_d"),
                dbl("ol_quantity"),
                dbl("ol_amount"),
            ])
            .unwrap(),
            options: TableOptions::new()
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0, 1, 2, 3]),
            pk: vec![0, 1, 2, 3],
            secondary: vec![],
        },
    ]
}

/// The spec's 1000 last names are syllable triples over these 10 syllables.
pub const LAST_NAME_SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Last name for a number in [0, 999].
pub fn last_name(num: i64) -> String {
    let num = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        LAST_NAME_SYLLABLES[num / 100],
        LAST_NAME_SYLLABLES[(num / 10) % 10],
        LAST_NAME_SYLLABLES[num % 10]
    )
}

/// TPC-C randomness: uniform helpers plus the non-uniform NURand generator.
pub struct TpccRng {
    rng: StdRng,
    c_last: i64,
    c_cid: i64,
    c_iid: i64,
}

impl TpccRng {
    /// Seeded generator (the C constants derive from the seed).
    pub fn new(seed: u64) -> TpccRng {
        let mut rng = StdRng::seed_from_u64(seed);
        let c_last = rng.random_range(0..256);
        let c_cid = rng.random_range(0..1024);
        let c_iid = rng.random_range(0..8192);
        TpccRng { rng, c_last, c_cid, c_iid }
    }

    /// Uniform in `[lo, hi]`.
    pub fn uniform(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// NURand(A, x, y) per the spec.
    pub fn nurand(&mut self, a: i64, x: i64, y: i64) -> i64 {
        let c = match a {
            255 => self.c_last,
            1023 => self.c_cid,
            8191 => self.c_iid,
            _ => 0,
        };
        (((self.uniform(0, a) | self.uniform(x, y)) + c) % (y - x + 1)) + x
    }

    /// Customer id via NURand, scaled to `customers` per district.
    pub fn customer_id(&mut self, customers: i64) -> i64 {
        self.nurand(1023, 1, customers.max(1)).min(customers)
    }

    /// Item id via NURand, scaled to `items`.
    pub fn item_id(&mut self, items: i64) -> i64 {
        self.nurand(8191, 1, items.max(1)).min(items)
    }

    /// Last-name number via NURand (bounded by the customer count so small
    /// scales still hit existing names).
    pub fn lastname_num(&mut self, customers: i64) -> i64 {
        self.nurand(255, 0, 999.min(customers - 1))
    }
}

/// Initial database contents for one scale, as rows per table.
pub fn generate_rows(scale: &TpccScale, seed: u64) -> Vec<(&'static str, Vec<Row>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut warehouse = Vec::new();
    let mut district = Vec::new();
    let mut customer = Vec::new();
    let mut orders = Vec::new();
    let mut new_order = Vec::new();
    let mut order_line = Vec::new();
    let mut stock = Vec::new();
    let entry_d = s2_common::date::days_from_ymd(2022, 1, 1);

    let item: Vec<Row> = (1..=scale.items)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::str(format!("item-{i}")),
                Value::Double(rng.random_range(1.0..100.0)),
                Value::str(if rng.random_range(0..10) == 0 {
                    format!("data ORIGINAL {i}")
                } else {
                    format!("data plain {i}")
                }),
            ])
        })
        .collect();

    for w in 1..=scale.warehouses {
        warehouse.push(Row::new(vec![
            Value::Int(w),
            Value::str(format!("wh-{w}")),
            Value::Double(rng.random_range(0.0..0.2)),
            Value::Double(300_000.0),
        ]));
        for i in 1..=scale.items {
            stock.push(Row::new(vec![
                Value::Int(w),
                Value::Int(i),
                Value::Double(rng.random_range(10.0..100.0)),
                Value::Double(0.0),
                Value::Int(0),
                Value::Int(0),
                Value::str(format!("stock-{w}-{i}")),
            ]));
        }
        for d in 1..=scale.districts {
            district.push(Row::new(vec![
                Value::Int(w),
                Value::Int(d),
                Value::str(format!("dist-{w}-{d}")),
                Value::Double(rng.random_range(0.0..0.2)),
                Value::Double(30_000.0),
                Value::Int(scale.preload_orders + 1),
                Value::Int(scale.preload_orders.max(1) * 7 / 10 + 1),
            ]));
            for c in 1..=scale.customers {
                customer.push(Row::new(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(c),
                    Value::str(format!("First{c}")),
                    Value::str(last_name(if c <= 1000 {
                        c - 1
                    } else {
                        rng.random_range(0..1000)
                    })),
                    Value::Double(-10.0),
                    Value::Double(10.0),
                    Value::Int(1),
                    Value::str(if rng.random_range(0..10) == 0 { "BC" } else { "GC" }),
                    Value::Double(rng.random_range(0.0..0.5)),
                ]));
            }
            for o in 1..=scale.preload_orders {
                let ol_cnt = rng.random_range(5..=15i64);
                let delivered = o < scale.preload_orders.max(1) * 7 / 10 + 1;
                orders.push(Row::new(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o),
                    Value::Int(rng.random_range(1..=scale.customers)),
                    Value::Int(entry_d),
                    if delivered { Value::Int(rng.random_range(1..=10)) } else { Value::Null },
                    Value::Int(ol_cnt),
                ]));
                if !delivered {
                    new_order.push(Row::new(vec![Value::Int(w), Value::Int(d), Value::Int(o)]));
                }
                for ol in 1..=ol_cnt {
                    order_line.push(Row::new(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o),
                        Value::Int(ol),
                        Value::Int(rng.random_range(1..=scale.items)),
                        Value::Int(w),
                        if delivered { Value::Int(entry_d) } else { Value::Null },
                        Value::Double(5.0),
                        Value::Double(rng.random_range(1.0..500.0)),
                    ]));
                }
            }
        }
    }

    vec![
        ("warehouse", warehouse),
        ("district", district),
        ("customer", customer),
        ("history", Vec::new()),
        ("orders", orders),
        ("new_order", new_order),
        ("item", item),
        ("stock", stock),
        ("order_line", order_line),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_names() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
    }

    #[test]
    fn nurand_in_range() {
        let mut r = TpccRng::new(7);
        for _ in 0..1000 {
            let c = r.customer_id(3000);
            assert!((1..=3000).contains(&c));
            let i = r.item_id(100_000);
            assert!((1..=100_000).contains(&i));
            let ln = r.lastname_num(3000);
            assert!((0..=999).contains(&ln));
        }
    }

    #[test]
    fn generated_cardinalities() {
        let scale = TpccScale::tiny(2);
        let rows = generate_rows(&scale, 1);
        let get = |n: &str| rows.iter().find(|(t, _)| *t == n).unwrap().1.len();
        assert_eq!(get("warehouse"), 2);
        assert_eq!(get("district"), 4);
        assert_eq!(get("customer"), 80);
        assert_eq!(get("item"), 50);
        assert_eq!(get("stock"), 100);
        assert_eq!(get("orders"), 20);
        assert!(get("new_order") > 0);
        assert!(get("order_line") >= 100);
    }

    #[test]
    fn tables_validate() {
        for t in tables() {
            t.options.validate(&t.schema).unwrap();
        }
    }
}
