//! The TPC-C terminal driver: the standard transaction mix with keying and
//! think times, scaled down uniformly so the per-warehouse tpmC ceiling
//! carries over to short laptop runs.
//!
//! With the spec's waits, ten terminals per warehouse can complete at most
//! ~12.86 new-orders/minute/warehouse. Dividing every wait by `wait_scale`
//! multiplies that ceiling by the same factor, so reporting
//! `tpmC / wait_scale` preserves the paper's "% of max" semantics (Table 1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use s2_common::Result;

use super::backend::{
    gen_delivery, gen_new_order, gen_order_status, gen_payment, gen_stock_level, TpccBackend,
};
use super::{TpccRng, TpccScale};

/// Theoretical ceiling in new-orders/minute/warehouse at spec waits.
pub const MAX_TPMC_PER_WAREHOUSE: f64 = 12.86;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Scale of the loaded database.
    pub scale: TpccScale,
    /// Terminals per warehouse (spec: 10).
    pub terminals_per_warehouse: usize,
    /// Divide all keying/think times by this factor (1.0 = spec timing).
    /// `f64::INFINITY` disables waits entirely (raw throughput mode).
    pub wait_scale: f64,
    /// Wall-clock run duration.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl DriverConfig {
    /// A short scaled run: waits divided by 1000.
    pub fn quick(scale: TpccScale, duration: Duration) -> DriverConfig {
        DriverConfig { scale, terminals_per_warehouse: 10, wait_scale: 1000.0, duration, seed: 42 }
    }
}

/// Aggregated run outcome.
#[derive(Debug, Default)]
pub struct DriverResult {
    /// Committed new-order transactions.
    pub new_orders: u64,
    /// Intentionally rolled-back new-orders (the spec's 1%).
    pub rollbacks: u64,
    /// Payments.
    pub payments: u64,
    /// Order-status queries.
    pub order_status: u64,
    /// Deliveries.
    pub deliveries: u64,
    /// Stock-level queries.
    pub stock_levels: u64,
    /// Lock-conflict retries.
    pub conflicts: u64,
    /// Errors that aborted a transaction (after retries).
    pub errors: u64,
    /// Actual run duration.
    pub elapsed: Duration,
}

impl DriverResult {
    /// Raw committed new-orders per minute.
    pub fn raw_tpm(&self) -> f64 {
        self.new_orders as f64 / self.elapsed.as_secs_f64() * 60.0
    }

    /// Spec-equivalent tpmC: raw rate divided by the wait scale-down.
    pub fn tpmc(&self, wait_scale: f64) -> f64 {
        if wait_scale.is_finite() {
            self.raw_tpm() / wait_scale
        } else {
            self.raw_tpm()
        }
    }

    /// Percentage of the 12.86/warehouse ceiling achieved.
    pub fn pct_of_max(&self, config: &DriverConfig) -> f64 {
        if !config.wait_scale.is_finite() {
            return f64::NAN; // ceiling is undefined without waits
        }
        100.0 * self.tpmc(config.wait_scale)
            / (MAX_TPMC_PER_WAREHOUSE * config.scale.warehouses as f64)
    }
}

/// The spec's deck of 23 cards: 10 new-order, 10 payment, 1 each of
/// order-status, delivery, stock-level.
#[derive(Clone, Copy)]
enum TxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

const DECK: [TxnKind; 23] = [
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::NewOrder,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::Payment,
    TxnKind::OrderStatus,
    TxnKind::Delivery,
    TxnKind::StockLevel,
];

/// (keying seconds, mean think seconds) per transaction type.
fn waits(kind: TxnKind) -> (f64, f64) {
    match kind {
        TxnKind::NewOrder => (18.0, 12.0),
        TxnKind::Payment => (3.0, 12.0),
        TxnKind::OrderStatus => (2.0, 10.0),
        TxnKind::Delivery => (2.0, 5.0),
        TxnKind::StockLevel => (2.0, 5.0),
    }
}

/// Run the mix against `backend` with `config`, returning aggregate counts.
pub fn run(backend: Arc<dyn TpccBackend>, config: &DriverConfig) -> DriverResult {
    let stop = Arc::new(AtomicBool::new(false));
    let counters: Arc<[AtomicU64; 8]> = Arc::new(Default::default());
    let n_terminals = config.scale.warehouses as usize * config.terminals_per_warehouse;
    let started = Instant::now();
    let mut handles = Vec::with_capacity(n_terminals);
    for t in 0..n_terminals {
        let backend = Arc::clone(&backend);
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = TpccRng::new(config.seed.wrapping_add(t as u64 * 7919));
            let mut deck_pos = 23;
            let mut deck = DECK;
            while !stop.load(Ordering::Relaxed) {
                if deck_pos >= deck.len() {
                    // Reshuffle.
                    for i in (1..deck.len()).rev() {
                        let j = rng.uniform(0, i as i64) as usize;
                        deck.swap(i, j);
                    }
                    deck_pos = 0;
                }
                let kind = deck[deck_pos];
                deck_pos += 1;
                let (keying, think_mean) = waits(kind);
                sleep_scaled(keying, config.wait_scale, &stop);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let _ = run_one(&*backend, kind, &mut rng, &config, &counters);
                // Exponentially distributed think time, capped at 10x mean.
                let u: f64 = rng.uniform_f(1e-9, 1.0);
                let think = (-u.ln() * think_mean).min(think_mean * 10.0);
                sleep_scaled(think, config.wait_scale, &stop);
            }
        }));
    }
    while started.elapsed() < config.duration {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();
    let c = &counters;
    DriverResult {
        new_orders: c[0].load(Ordering::Relaxed),
        rollbacks: c[1].load(Ordering::Relaxed),
        payments: c[2].load(Ordering::Relaxed),
        order_status: c[3].load(Ordering::Relaxed),
        deliveries: c[4].load(Ordering::Relaxed),
        stock_levels: c[5].load(Ordering::Relaxed),
        conflicts: c[6].load(Ordering::Relaxed),
        errors: c[7].load(Ordering::Relaxed),
        elapsed,
    }
}

fn sleep_scaled(seconds: f64, wait_scale: f64, stop: &AtomicBool) {
    if !wait_scale.is_finite() || seconds <= 0.0 {
        return;
    }
    let total = Duration::from_secs_f64(seconds / wait_scale);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1).min(deadline - Instant::now()));
    }
}

fn run_one(
    backend: &dyn TpccBackend,
    kind: TxnKind,
    rng: &mut TpccRng,
    config: &DriverConfig,
    counters: &[AtomicU64; 8],
) -> Result<()> {
    // Retry lock conflicts, as a real terminal would (lock-order cycles
    // resolve by timeout + retry; see rowstore's DEFAULT_LOCK_TIMEOUT).
    for attempt in 0..8 {
        let result = match kind {
            TxnKind::NewOrder => {
                let p = gen_new_order(rng, &config.scale);
                backend.new_order(&p).map(|committed| {
                    if committed {
                        counters[0].fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters[1].fetch_add(1, Ordering::Relaxed);
                    }
                })
            }
            TxnKind::Payment => {
                let p = gen_payment(rng, &config.scale);
                backend.payment(&p).map(|()| {
                    counters[2].fetch_add(1, Ordering::Relaxed);
                })
            }
            TxnKind::OrderStatus => {
                let p = gen_order_status(rng, &config.scale);
                backend.order_status(&p).map(|()| {
                    counters[3].fetch_add(1, Ordering::Relaxed);
                })
            }
            TxnKind::Delivery => {
                let p = gen_delivery(rng, &config.scale);
                backend.delivery(&p).map(|()| {
                    counters[4].fetch_add(1, Ordering::Relaxed);
                })
            }
            TxnKind::StockLevel => {
                let p = gen_stock_level(rng, &config.scale);
                backend.stock_level(&p).map(|_| {
                    counters[5].fetch_add(1, Ordering::Relaxed);
                })
            }
        };
        match result {
            Ok(()) => return Ok(()),
            Err(e) if e.is_retryable() && attempt < 7 => {
                counters[6].fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200 << attempt));
            }
            Err(e) => {
                counters[7].fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
    }
    Ok(())
}
