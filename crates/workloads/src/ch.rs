//! CH-BenCHmark-style mixed workload (paper §6, Table 3): TPC-C transaction
//! workers and TPC-H-style analytic workers running concurrently over the
//! *same* TPC-C tables — the workload unified table storage exists for.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use s2_common::{Result, Value};
use s2_exec::{AggFunc, Aggregate, Batch, CmpOp, Expr, SortDir};
use s2_query::Plan;

fn agg(func: AggFunc, input: Expr) -> Aggregate {
    Aggregate { func, input }
}

/// The analytic query set: TPC-H-flavoured aggregations/joins over the live
/// TPC-C schema (CH-BenCHmark's approach).
pub fn queries() -> Vec<(&'static str, Plan)> {
    vec![
        (
            // Revenue by district (Q1-flavoured wide aggregation).
            "revenue_by_district",
            Plan::scan("order_line", vec![0, 1, 7, 8], None)
                .aggregate(
                    vec![Expr::Column(0), Expr::Column(1)],
                    vec![
                        agg(AggFunc::Sum, Expr::Column(3)),
                        agg(AggFunc::Avg, Expr::Column(2)),
                        agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                    ],
                )
                .sort(vec![(0, SortDir::Asc), (1, SortDir::Asc)], None),
        ),
        (
            // Stock value by warehouse (join stock to item).
            "stock_value",
            Plan::scan("stock", vec![0, 1, 2], None)
                .join(Plan::scan("item", vec![0, 2], None), vec![1], vec![0])
                // positions: 0 s_w_id, 1 s_i_id, 2 s_qty, 3 i_id, 4 i_price
                .project(vec![
                    (Expr::Column(0), s2_common::DataType::Int64),
                    (
                        Expr::Arith(
                            s2_exec::ArithOp::Mul,
                            Box::new(Expr::Column(2)),
                            Box::new(Expr::Column(4)),
                        ),
                        s2_common::DataType::Double,
                    ),
                ])
                .aggregate(vec![Expr::Column(0)], vec![agg(AggFunc::Sum, Expr::Column(1))])
                .sort(vec![(0, SortDir::Asc)], None),
        ),
        (
            // Top indebted customers (Q10-flavoured).
            "top_customers",
            Plan::scan("customer", vec![0, 1, 2, 4, 5], None)
                .filter(Expr::cmp(4, CmpOp::Lt, 0.0))
                .sort(vec![(4, SortDir::Asc)], Some(20)),
        ),
        (
            // Undelivered order lines joined to their orders (Q4-flavoured).
            "pending_orders",
            Plan::scan("orders", vec![0, 1, 2, 6], Some(Expr::IsNull(Box::new(Expr::Column(5)))))
                .join(
                    Plan::scan("order_line", vec![0, 1, 2, 8], None),
                    vec![0, 1, 2],
                    vec![0, 1, 2],
                )
                .aggregate(
                    vec![Expr::Column(0)],
                    vec![
                        agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                        agg(AggFunc::Sum, Expr::Column(7)),
                    ],
                )
                .sort(vec![(0, SortDir::Asc)], None),
        ),
        (
            // Revenue from orders placed during the live run (Q6-flavoured:
            // a tight range over the fact table). `TpccScale::bench` preloads
            // 100 orders per district, so `ol_o_id >= 101` selects exactly
            // the lines written by concurrent transaction workers — and
            // min/max segment elimination prunes every segment holding only
            // preloaded history.
            "live_revenue",
            Plan::scan("order_line", vec![2, 8], Some(Expr::cmp(2, CmpOp::Ge, 101i64))).aggregate(
                vec![],
                vec![
                    agg(AggFunc::Sum, Expr::Column(1)),
                    agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                ],
            ),
        ),
        (
            // Hot items (Q18-flavoured: heavy group-by on the fact table).
            "hot_items",
            Plan::scan("order_line", vec![4, 7, 8], None)
                .aggregate(
                    vec![Expr::Column(0)],
                    vec![
                        agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                        agg(AggFunc::Sum, Expr::Column(1)),
                        agg(AggFunc::Sum, Expr::Column(2)),
                    ],
                )
                .sort(vec![(3, SortDir::Desc)], Some(10)),
        ),
    ]
}

/// SQL-text forms of the analytic query set, paired by name with
/// [`queries`]. Each is written to mirror its hand-built plan's shape so the
/// `s2-sql` planner returns byte-identical results
/// (`tests/sql_equivalence.rs` asserts this).
pub fn queries_sql() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "revenue_by_district",
            "SELECT ol_w_id, ol_d_id, SUM(ol_amount), AVG(ol_quantity), COUNT(*) \
             FROM order_line GROUP BY ol_w_id, ol_d_id ORDER BY ol_w_id, ol_d_id",
        ),
        (
            "stock_value",
            "SELECT s_w_id, SUM(s_quantity * i_price) \
             FROM stock JOIN item ON s_i_id = i_id \
             GROUP BY s_w_id ORDER BY s_w_id",
        ),
        (
            "top_customers",
            "SELECT c_w_id, c_d_id, c_id, c_last, c_balance \
             FROM customer WHERE c_balance < 0.0 ORDER BY c_balance LIMIT 20",
        ),
        (
            "pending_orders",
            "SELECT o_w_id, COUNT(*), SUM(ol_amount) \
             FROM orders JOIN order_line \
               ON o_w_id = ol_w_id AND o_d_id = ol_d_id AND o_id = ol_o_id \
             WHERE o_carrier_id IS NULL \
             GROUP BY o_w_id ORDER BY o_w_id",
        ),
        ("live_revenue", "SELECT SUM(ol_amount), COUNT(*) FROM order_line WHERE ol_o_id >= 101"),
        (
            "hot_items",
            "SELECT ol_i_id, COUNT(*), SUM(ol_quantity), SUM(ol_amount) \
             FROM order_line GROUP BY ol_i_id ORDER BY 4 DESC LIMIT 10",
        ),
    ]
}

/// Outcome of an analytics run.
#[derive(Debug, Default)]
pub struct AnalyticsResult {
    /// Completed analytic queries.
    pub queries_run: u64,
    /// Query errors.
    pub errors: u64,
    /// Run duration.
    pub elapsed: Duration,
}

impl AnalyticsResult {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        self.queries_run as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run `workers` analytic workers for `duration`, each cycling through the
/// query set. `exec` is the execution channel — the primary cluster for the
/// shared-workspace configurations, a read-only workspace for the isolated
/// ones (Table 3's test cases 3 vs 4).
pub fn run_analytics(
    exec: impl Fn(&Plan) -> Result<Batch> + Sync,
    workers: usize,
    duration: Duration,
) -> AnalyticsResult {
    let stop = AtomicBool::new(false);
    let done = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let qs = queries();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let exec = &exec;
            let stop = &stop;
            let done = &done;
            let errors = &errors;
            let qs = &qs;
            scope.spawn(move || {
                let mut i = w; // stagger starting queries across workers
                while !stop.load(Ordering::Relaxed) {
                    let (_, plan) = &qs[i % qs.len()];
                    match exec(plan) {
                        Ok(_) => {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += 1;
                }
            });
        }
        while started.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    AnalyticsResult {
        queries_run: done.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}
