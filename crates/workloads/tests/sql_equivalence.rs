//! The SQL front end must be a faithful surface over the plan API: every
//! TPC-H and CH query's SQL-text form, planned by `s2-sql`, returns
//! **byte-identical** results to the hand-built plan from `queries.rs` /
//! `ch.rs` — same rows, same order, same formatting.

use std::sync::Arc;

use s2_cluster::{Cluster, ClusterConfig};
use s2_exec::Batch;
use s2_query::{format_batch, ExecOptions};
use s2_workloads::tpcc;
use s2_workloads::tpch;
use s2_workloads::tpch::load::ClusterRunner;
use s2_workloads::tpch::queries::run_query;
use s2_workloads::tpch::sql::run_query_sql;

fn small_cluster() -> Arc<Cluster> {
    Cluster::new(
        "test",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 0,
            sync_replication: false,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Render a batch with positional headers so two batches compare as bytes.
fn bytes_of(b: &Batch) -> String {
    let headers: Vec<String> = (0..b.width()).map(|i| format!("c{i}")).collect();
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    format_batch(b, &refs)
}

#[test]
fn tpch_sql_forms_match_hand_built_plans_byte_for_byte() {
    let data = tpch::generate(0.002, 4242);
    let cluster = small_cluster();
    tpch::load::load_cluster(&cluster, &data).unwrap();
    let runner = ClusterRunner { cluster: &cluster, opts: ExecOptions::default() };
    let ctx = cluster.context().unwrap();

    for q in 1..=22 {
        let hand = run_query(q, &runner).unwrap_or_else(|e| panic!("q{q} hand plan: {e}"));
        let sql = run_query_sql(q, &ctx).unwrap_or_else(|e| panic!("q{q} sql form: {e}"));
        assert_eq!(hand.width(), sql.width(), "q{q}: output width");
        assert_eq!(hand.rows(), sql.rows(), "q{q}: row count");
        assert_eq!(bytes_of(&hand), bytes_of(&sql), "q{q}: byte-identical output");
    }
}

#[test]
fn ch_sql_forms_match_hand_built_plans_byte_for_byte() {
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(2);
    tpcc::backend::load_cluster(&cluster, &scale, 21).unwrap();
    let opts = ExecOptions::default();
    let ctx = cluster.context().unwrap();

    let hand: Vec<_> = s2_workloads::ch::queries();
    let sql: Vec<_> = s2_workloads::ch::queries_sql();
    assert_eq!(hand.len(), sql.len(), "one SQL form per hand-built CH query");
    for ((name, plan), (sql_name, text)) in hand.iter().zip(&sql) {
        assert_eq!(name, sql_name, "query sets paired by name");
        let a = cluster.execute(plan, &opts).unwrap_or_else(|e| panic!("{name} hand: {e}"));
        let b = s2_sql::query(&ctx, text).unwrap_or_else(|e| panic!("{name} sql: {e}"));
        assert_eq!(a.width(), b.width(), "{name}: output width");
        assert_eq!(bytes_of(&a), bytes_of(&b), "{name}: byte-identical output");
    }
}

/// Encoded-domain execution (`S2_ENCODED_EXEC=1`) must be byte-identical
/// to the decode-first path over the full TPC-H suite: same rows, same
/// order, same formatting, for every query.
#[test]
fn tpch_encoded_exec_matches_decoded_byte_for_byte() {
    let data = tpch::generate(0.002, 9001);
    let cluster = small_cluster();
    tpch::load::load_cluster(&cluster, &data).unwrap();
    let mut off = ExecOptions::default();
    off.scan.encoded_exec = false;
    let mut on = ExecOptions::default();
    on.scan.encoded_exec = true;
    let decoded = ClusterRunner { cluster: &cluster, opts: off };
    let encoded = ClusterRunner { cluster: &cluster, opts: on };

    for q in 1..=22 {
        let a = run_query(q, &decoded).unwrap_or_else(|e| panic!("q{q} decoded: {e}"));
        let b = run_query(q, &encoded).unwrap_or_else(|e| panic!("q{q} encoded: {e}"));
        assert_eq!(bytes_of(&a), bytes_of(&b), "q{q}: encoded vs decoded output");
    }
}

/// Same contract over the CH analytics suite (dict-heavy group keys, live
/// rowstore tails from the TPC-C load).
#[test]
fn ch_encoded_exec_matches_decoded_byte_for_byte() {
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(2);
    tpcc::backend::load_cluster(&cluster, &scale, 33).unwrap();
    let mut off = ExecOptions::default();
    off.scan.encoded_exec = false;
    let mut on = ExecOptions::default();
    on.scan.encoded_exec = true;

    for (name, plan) in s2_workloads::ch::queries() {
        let a = cluster.execute(&plan, &off).unwrap_or_else(|e| panic!("{name} decoded: {e}"));
        let b = cluster.execute(&plan, &on).unwrap_or_else(|e| panic!("{name} encoded: {e}"));
        assert_eq!(bytes_of(&a), bytes_of(&b), "{name}: encoded vs decoded output");
    }
}

#[test]
fn tpch_sql_explains_show_pushdown_and_cost_annotations() {
    let data = tpch::generate(0.002, 7);
    let cluster = small_cluster();
    tpch::load::load_cluster(&cluster, &data).unwrap();
    let ctx = cluster.context().unwrap();

    // Q6: every WHERE conjunct lands in the lineitem scan, ranked by
    // (1 - P)/cost with the visible rank annotation.
    let tpch::sql::SqlForm::Single(q6) = tpch::sql::query_sql(6).unwrap() else {
        panic!("q6 is single-statement")
    };
    let text = s2_sql::explain(&ctx, q6).unwrap();
    assert!(text.contains("Scan lineitem"), "{text}");
    assert!(text.contains("rank="), "{text}");
    assert!(!text.contains("Filter "), "no post-scan filter survives for Q6:\n{text}");

    // Q3: explicit joins keep the written build order and show key columns.
    let tpch::sql::SqlForm::Single(q3) = tpch::sql::query_sql(3).unwrap() else {
        panic!("q3 is single-statement")
    };
    let text = s2_sql::explain(&ctx, q3).unwrap();
    assert!(text.contains("HashJoin Inner"), "{text}");
    assert!(text.contains("Scan customer"), "{text}");
    assert!(text.contains("est="), "{text}");
}
