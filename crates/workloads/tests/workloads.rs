//! Workload-level integration tests. The strongest check here: every TPC-H
//! query must produce the same result on all three engines (unified-storage
//! cluster, CDW model, CDB model) — three independent execution paths
//! cross-validating one another.

use std::sync::Arc;
use std::time::Duration;

use s2_baseline::{CdbEngine, CdwEngine};
use s2_blob::MemoryStore;
use s2_cluster::{Cluster, ClusterConfig};
use s2_common::Value;
use s2_exec::Batch;
use s2_query::ExecOptions;
use s2_workloads::tpcc;
use s2_workloads::tpcc::backend::{ClusterBackend, TpccBackend};
use s2_workloads::tpch;
use s2_workloads::tpch::load::{CdbRunner, CdwRunner, ClusterRunner};
use s2_workloads::tpch::queries::run_query;

fn small_cluster() -> Arc<Cluster> {
    Cluster::new(
        "test",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 0,
            sync_replication: false,
            ..Default::default()
        },
    )
    .unwrap()
}

fn batch_fingerprint(b: &Batch) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..b.rows())
        .map(|ri| {
            (0..b.width())
                .map(|ci| match b.value(ci, ri) {
                    // Summation order differs across engines; compare doubles
                    // at 6 significant digits.
                    Value::Double(d) => format!("{:.5e}", d),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn tpch_queries_agree_across_all_three_engines() {
    let data = tpch::generate(0.002, 12345);

    let cluster = small_cluster();
    tpch::load::load_cluster(&cluster, &data).unwrap();
    let cdw = CdwEngine::new(Arc::new(MemoryStore::new()));
    tpch::load::load_cdw(&cdw, &data).unwrap();
    let cdb = CdbEngine::new();
    tpch::load::load_cdb(&cdb, &data).unwrap();

    let s2 = ClusterRunner { cluster: &cluster, opts: ExecOptions::default() };
    let cdw_r = CdwRunner(&cdw);
    let cdb_r = CdbRunner(&cdb);

    for q in 1..=22 {
        let a = run_query(q, &s2).unwrap_or_else(|e| panic!("q{q} on s2: {e}"));
        let b = run_query(q, &cdw_r).unwrap_or_else(|e| panic!("q{q} on cdw: {e}"));
        let c = run_query(q, &cdb_r).unwrap_or_else(|e| panic!("q{q} on cdb: {e}"));
        let fa = batch_fingerprint(&a);
        let fb = batch_fingerprint(&b);
        let fc = batch_fingerprint(&c);
        assert_eq!(fa, fb, "q{q}: s2 vs cdw");
        assert_eq!(fa, fc, "q{q}: s2 vs cdb");
    }
}

#[test]
fn tpch_queries_return_sensible_shapes() {
    let data = tpch::generate(0.002, 999);
    let cluster = small_cluster();
    tpch::load::load_cluster(&cluster, &data).unwrap();
    let s2 = ClusterRunner { cluster: &cluster, opts: ExecOptions::default() };

    // Q1 groups by (returnflag, linestatus): at most 4 combinations here.
    let q1 = run_query(1, &s2).unwrap();
    assert!((1..=4).contains(&q1.rows()), "q1 rows {}", q1.rows());
    assert_eq!(q1.width(), 10);

    // Q6 is a single scalar.
    let q6 = run_query(6, &s2).unwrap();
    assert_eq!((q6.rows(), q6.width()), (1, 1));
    assert!(q6.value(0, 0).as_double().unwrap() > 0.0);

    // Q13's distribution covers every customer.
    let q13 = run_query(13, &s2).unwrap();
    let total: i64 = (0..q13.rows()).map(|r| q13.value(1, r).as_int().unwrap()).sum();
    assert_eq!(total as usize, data.table("customer").rows.len());
}

#[test]
fn tpcc_smoke_on_cluster() {
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(2);
    tpcc::backend::load_cluster(&cluster, &scale, 7).unwrap();
    let backend = ClusterBackend::new(Arc::clone(&cluster), scale);

    let mut rng = tpcc::TpccRng::new(11);
    let mut committed = 0;
    for _ in 0..30 {
        let p = tpcc::backend::gen_new_order(&mut rng, &scale);
        if backend.new_order(&p).unwrap() {
            committed += 1;
        }
    }
    assert!(committed >= 25, "most new-orders commit ({committed}/30)");
    for _ in 0..10 {
        let p = tpcc::backend::gen_payment(&mut rng, &scale);
        backend.payment(&p).unwrap();
    }
    for _ in 0..5 {
        let p = tpcc::backend::gen_order_status(&mut rng, &scale);
        backend.order_status(&p).unwrap();
        let p = tpcc::backend::gen_delivery(&mut rng, &scale);
        backend.delivery(&p).unwrap();
        let p = tpcc::backend::gen_stock_level(&mut rng, &scale);
        backend.stock_level(&p).unwrap();
    }

    // Orders landed: district next_o_id advanced and orders exist.
    let ol_count = cluster.row_count("order_line").unwrap();
    assert!(ol_count > 0);
    let orders = cluster.row_count("orders").unwrap();
    assert!(orders as i64 >= scale.warehouses * scale.districts * scale.preload_orders);
}

#[test]
fn tpcc_cluster_and_cdb_state_converge() {
    // Run the identical transaction sequence on both engines and compare
    // aggregate state (balances, ytd sums) — catches logic divergence.
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(1);
    tpcc::backend::load_cluster(&cluster, &scale, 3).unwrap();
    let s2 = ClusterBackend::new(Arc::clone(&cluster), scale);

    let cdb = Arc::new(CdbEngine::new());
    tpcc::backend::load_cdb(&cdb, &scale, 3).unwrap();
    let cdb_b = tpcc::backend::CdbBackend { engine: Arc::clone(&cdb), scale };

    let mut rng1 = tpcc::TpccRng::new(55);
    let mut rng2 = tpcc::TpccRng::new(55);
    for i in 0..40 {
        match i % 4 {
            0 | 1 => {
                let p1 = tpcc::backend::gen_new_order(&mut rng1, &scale);
                let p2 = tpcc::backend::gen_new_order(&mut rng2, &scale);
                let a = s2.new_order(&p1).unwrap();
                let b = cdb_b.new_order(&p2).unwrap();
                assert_eq!(a, b, "rollback decisions agree");
            }
            2 => {
                let p1 = tpcc::backend::gen_payment(&mut rng1, &scale);
                let p2 = tpcc::backend::gen_payment(&mut rng2, &scale);
                s2.payment(&p1).unwrap();
                cdb_b.payment(&p2).unwrap();
            }
            _ => {
                let p1 = tpcc::backend::gen_delivery(&mut rng1, &scale);
                let p2 = tpcc::backend::gen_delivery(&mut rng2, &scale);
                s2.delivery(&p1).unwrap();
                cdb_b.delivery(&p2).unwrap();
            }
        }
    }
    // Same number of orders and order lines on both engines.
    assert_eq!(
        cluster.row_count("orders").unwrap(),
        cdb.row_count("orders").unwrap(),
        "order counts converge"
    );
    assert_eq!(cluster.row_count("order_line").unwrap(), cdb.row_count("order_line").unwrap());
    assert_eq!(cluster.row_count("new_order").unwrap(), cdb.row_count("new_order").unwrap());
}

#[test]
fn tpcc_driver_short_run() {
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(1);
    tpcc::backend::load_cluster(&cluster, &scale, 9).unwrap();
    let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
    let config = tpcc::driver::DriverConfig {
        scale,
        terminals_per_warehouse: 4,
        wait_scale: f64::INFINITY, // no waits: raw smoke run
        duration: Duration::from_millis(500),
        seed: 1,
    };
    let result = tpcc::driver::run(backend, &config);
    assert!(result.new_orders > 0, "some new-orders committed: {result:?}");
    assert!(result.payments > 0);
    assert_eq!(result.errors, 0, "{result:?}");
}

#[test]
fn ch_analytics_over_tpcc_tables() {
    let cluster = small_cluster();
    let scale = tpcc::TpccScale::tiny(2);
    tpcc::backend::load_cluster(&cluster, &scale, 21).unwrap();
    let opts = ExecOptions::default();
    for (name, plan) in s2_workloads::ch::queries() {
        let out = cluster.execute(&plan, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.rows() > 0, "{name} returned no rows");
    }
}
