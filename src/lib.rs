//! Workspace root helper crate.
//!
//! Re-exports the public crates of the S2DB reproduction so that the
//! integration tests in `tests/` and the runnable binaries in `examples/`
//! can reach every subsystem through one dependency.

pub use s2_baseline as baseline;
pub use s2_blob as blob;
pub use s2_cluster as cluster;
pub use s2_columnstore as columnstore;
pub use s2_common as common;
pub use s2_core as core;
pub use s2_encoding as encoding;
pub use s2_exec as exec;
pub use s2_index as index;
pub use s2_obs as obs;
pub use s2_query as query;
pub use s2_rowstore as rowstore;
pub use s2_wal as wal;
pub use s2_workloads as workloads;
