//! Read-only workspaces (paper §3.2, figure 2): provision isolated read
//! compute from blob storage in one call, keep it fresh by replicating only
//! the log tail, and run heavy analytics without touching the primary.
//!
//! ```sh
//! cargo run --release --example workspace_scaling
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use s2db_repro::blob::{MemoryStore, ObjectStore};
use s2db_repro::cluster::{Cluster, ClusterConfig, StorageConfig, Workspace};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::exec::{AggFunc, Aggregate, Expr};
use s2db_repro::query::{ExecOptions, Plan};

fn main() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = Cluster::new(
        "prod",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 1,
            sync_replication: true,
            blob: Some(Arc::clone(&blob)),
            cache_bytes: 128 << 20,
            storage: StorageConfig { tick: Duration::from_millis(5), ..Default::default() },
            breaker: None,
        },
    )
    .unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("sensor", DataType::Int64),
        ColumnDef::new("reading", DataType::Double),
    ])
    .unwrap();
    cluster
        .create_table(
            "telemetry",
            schema,
            TableOptions::new()
                .with_sort_key(vec![0])
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0]),
        )
        .unwrap();

    let mut txn = cluster.begin();
    for i in 0..30_000i64 {
        txn.insert(
            "telemetry",
            Row::new(vec![Value::Int(i), Value::Int(i % 100), Value::Double((i % 70) as f64)]),
        )
        .unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("telemetry").unwrap();
    cluster.sync_to_blob().unwrap();
    println!("primary loaded with 30k telemetry rows and shipped to blob storage");

    // Provision the analytics workspace: metadata restore from blob, data
    // files pulled lazily on first use — this is why it's fast.
    let t0 = Instant::now();
    let ws = Workspace::provision("analytics", &cluster, &blob, 128 << 20).expect("provision");
    ws.catch_up(Duration::from_secs(10));
    println!("workspace provisioned and caught up in {:?}", t0.elapsed());

    // Heavy analytics on the workspace's own compute.
    let plan = Plan::scan("telemetry", vec![1, 2], None).aggregate(
        vec![Expr::Column(0)],
        vec![Aggregate { func: AggFunc::Avg, input: Expr::Column(1) }],
    );
    let out = ws.execute(&plan, &ExecOptions::default()).unwrap();
    println!("workspace answered a 100-group aggregation: {} groups", out.rows());

    // New primary writes stream over the log tail; measure freshness.
    let mut txn = cluster.begin();
    for i in 30_000..31_000i64 {
        txn.insert("telemetry", Row::new(vec![Value::Int(i), Value::Int(0), Value::Double(1.0)]))
            .unwrap();
    }
    txn.commit().unwrap();
    let t0 = Instant::now();
    ws.catch_up(Duration::from_secs(10));
    println!(
        "1000 fresh rows visible on the workspace {:?} after commit (lag now {} bytes)",
        t0.elapsed(),
        ws.max_lag_bytes()
    );
    let count_plan = Plan::scan("telemetry", vec![0], None).aggregate(
        vec![],
        vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }],
    );
    let out = ws.execute(&count_plan, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Int(31_000));
    println!("workspace sees all 31000 rows; primary never served a single analytical read");
}
