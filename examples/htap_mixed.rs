//! HTAP scenario from the paper's introduction: "interactive real-time
//! insights ... enabling both high-throughput low-latency writes and complex
//! analytical queries over ever-changing data, with end-to-end latency of
//! seconds to sub-seconds from new data arriving to analytical results."
//!
//! Writers stream orders in while an analyst repeatedly runs a revenue
//! dashboard query over the same table; the example measures both write
//! throughput and data-to-insight freshness.
//!
//! ```sh
//! cargo run --release --example htap_mixed
//! ```

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use s2db_repro::cluster::{Cluster, ClusterConfig};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::exec::{AggFunc, Aggregate, Expr};
use s2db_repro::query::{ExecOptions, Plan};

fn main() {
    let cluster = Cluster::new(
        "htap",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 0,
            sync_replication: false,
            ..Default::default()
        },
    )
    .unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("order_id", DataType::Int64),
        ColumnDef::new("region", DataType::Str),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    cluster
        .create_table(
            "orders",
            schema,
            TableOptions::new()
                .with_sort_key(vec![0])
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0])
                .with_index("by_region", vec![1]),
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let next_id = Arc::new(AtomicI64::new(0));
    let written = Arc::new(AtomicI64::new(0));

    // Two writer threads streaming orders.
    let mut writers = Vec::new();
    for _ in 0..2 {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let next_id = Arc::clone(&next_id);
        let written = Arc::clone(&written);
        writers.push(std::thread::spawn(move || {
            let regions = ["emea", "apac", "amer"];
            while !stop.load(Ordering::Relaxed) {
                let mut txn = cluster.begin();
                for _ in 0..20 {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    txn.insert(
                        "orders",
                        Row::new(vec![
                            Value::Int(id),
                            Value::str(regions[(id % 3) as usize]),
                            Value::Double((id % 250) as f64),
                        ]),
                    )
                    .unwrap();
                }
                txn.commit().unwrap();
                written.fetch_add(20, Ordering::Relaxed);
            }
        }));
    }

    // The analyst: run the dashboard query every 200 ms for 5 seconds and
    // measure freshness = rows written vs rows the query sees.
    let plan = Plan::scan("orders", vec![1, 2], None).aggregate(
        vec![Expr::Column(0)],
        vec![
            Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) },
            Aggregate { func: AggFunc::Sum, input: Expr::Column(1) },
        ],
    );
    let opts = ExecOptions::default();
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(200));
        let before = written.load(Ordering::Relaxed);
        let q0 = Instant::now();
        let out = cluster.execute(&plan, &opts).unwrap();
        let latency = q0.elapsed();
        let seen: i64 = (0..out.rows()).map(|r| out.value(1, r).as_int().unwrap()).sum();
        println!(
            "t={:>4}ms  written={:>6}  query_saw={:>6}  staleness={:>4} rows  query_latency={:?}",
            t0.elapsed().as_millis(),
            before,
            seen,
            (before - seen).max(0),
            latency,
        );
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let total = written.load(Ordering::Relaxed);
    println!(
        "\n{} rows ingested ({:.0} rows/s) with live analytics over the same table — no ETL, one engine",
        total,
        total as f64 / t0.elapsed().as_secs_f64()
    );
}
