//! Watch the adaptive query execution machinery (paper §5) decide: segment
//! skipping via index probes and min/max metadata, encoded vs regular filter
//! strategies, and the join index filter's dynamic fallback to a hash join.
//!
//! ```sh
//! cargo run --release --example adaptive_execution
//! ```

use s2db_repro::cluster::{Cluster, ClusterConfig};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::exec::{CmpOp, Expr};
use s2db_repro::query::{execute_with_stats, ExecOptions, ExecStats, Plan};

fn main() {
    let cluster = Cluster::new(
        "adaptive",
        ClusterConfig {
            partitions: 1,
            ha_replicas: 0,
            sync_replication: false,
            ..Default::default()
        },
    )
    .unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("status", DataType::Str), // 4 distinct values -> dictionary
        ColumnDef::new("day", DataType::Int64),  // sort key -> min/max prunes
    ])
    .unwrap();
    cluster
        .create_table(
            "events",
            schema,
            TableOptions::new()
                .with_sort_key(vec![2])
                .with_shard_key(vec![0])
                .with_unique("pk", vec![0])
                .with_index("by_status", vec![1])
                .with_segment_rows(20_000),
        )
        .unwrap();
    let statuses = ["ok", "warn", "error", "fatal"];
    for batch in 0..5i64 {
        let mut txn = cluster.begin();
        for i in 0..20_000 {
            let id = batch * 20_000 + i;
            txn.insert(
                "events",
                Row::new(vec![
                    Value::Int(id),
                    Value::str(statuses[(id % 4) as usize]),
                    Value::Int(batch * 30 + i % 30), // days cluster per batch
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        cluster.flush_table("events").unwrap();
    }
    println!("loaded 100k events into 5 day-sorted segments\n");

    let opts = ExecOptions::default();
    let run = |label: &str, plan: &Plan| {
        let mut stats = ExecStats::default();
        let t0 = std::time::Instant::now();
        let out = cluster.execute_with_stats(plan, &opts, &mut stats).unwrap();
        println!("{label}:");
        println!("  rows out             : {}", out.rows());
        println!("  elapsed              : {:?}", t0.elapsed());
        println!("  segments total       : {}", stats.scan.segments_total);
        println!("  skipped via index    : {}", stats.scan.segments_skipped_index);
        println!("  skipped via min/max  : {}", stats.scan.segments_skipped_minmax);
        println!("  encoded filters      : {}", stats.scan.encoded_filters);
        println!("  regular filters      : {}", stats.scan.regular_filters);
        println!("  index-answered probes: {}", stats.scan.index_filters);
        println!("  join index filters   : {}", stats.join_index_filters);
        println!("  plain hash joins     : {}\n", stats.hash_joins);
    };

    // 1. Sort-key range: min/max metadata eliminates 4 of 5 segments.
    run(
        "range on the sort key (min/max segment elimination)",
        &Plan::scan("events", vec![0], Some(Expr::between(2, 10i64, 20i64))),
    );

    // 2. Dictionary column equality: answered by the secondary index; the
    //    residual work runs as encoded filters on compressed data.
    run(
        "equality on a dictionary column (secondary index + encoded execution)",
        &Plan::scan("events", vec![0, 1], Some(Expr::eq(1, "fatal"))),
    );

    // 3. Point lookup by primary key: one index probe, zero scans.
    run(
        "point lookup by unique key",
        &Plan::scan("events", vec![0, 1, 2], Some(Expr::eq(0, 31_415i64))),
    );

    // 4. Join with a tiny build side: rewritten into a join index filter.
    let dim = Plan::scan("events", vec![0], Some(Expr::cmp(0, CmpOp::Lt, 20i64)));
    run(
        "join with a 20-row build side (join index filter)",
        &Plan::scan("events", vec![0, 1], None).join(dim.clone(), vec![0], vec![0]),
    );

    // 5. Same join with the optimization disabled: plain hash join.
    let opts_no_jif = ExecOptions { join_index_threshold: 0, ..Default::default() };
    let mut stats = ExecStats::default();
    let t0 = std::time::Instant::now();
    let plan = Plan::scan("events", vec![0, 1], None).join(dim, vec![0], vec![0]);
    let out =
        execute_with_stats(&plan, &cluster.context().unwrap(), &opts_no_jif, &mut stats).unwrap();
    println!("same join, index filter disabled (hash join fallback):");
    println!("  rows out             : {}", out.rows());
    println!("  elapsed              : {:?}", t0.elapsed());
    println!("  plain hash joins     : {}", stats.hash_joins);
}
