//! Point-in-time restore (paper §3.2): blob storage as a continuous backup.
//! An "accident" deletes every account; PITR brings the database back to the
//! position just before the damage — no explicit backup was ever taken.
//!
//! ```sh
//! cargo run --release --example pitr_restore
//! ```

use std::sync::Arc;
use std::time::Duration;

use s2db_repro::blob::{MemoryStore, ObjectStore};
use s2db_repro::cluster::{
    restore_from_blob, BlobBackedFileStore, Cluster, ClusterConfig, StorageConfig,
};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};

fn main() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = Cluster::new(
        "bank",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 1,
            sync_replication: true,
            blob: Some(Arc::clone(&blob)),
            cache_bytes: 64 << 20,
            storage: StorageConfig { tick: Duration::from_millis(5), ..Default::default() },
            breaker: None,
        },
    )
    .unwrap();

    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("balance", DataType::Double),
    ])
    .unwrap();
    cluster
        .create_table(
            "accounts",
            schema,
            TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
        )
        .unwrap();

    // Day 1: accounts created and funded. Commits are durable on replication;
    // data files / log chunks / snapshots trickle to blob storage async.
    let mut txn = cluster.begin();
    for i in 0..5_000i64 {
        txn.insert("accounts", Row::new(vec![Value::Int(i), Value::Double(100.0)])).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("accounts").unwrap();
    cluster.sync_to_blob().unwrap();
    println!("day 1: 5000 accounts committed; blob store now holds the history");

    // Remember "just before the accident" (the paper maps a wall-clock time
    // to this log position; we address positions directly).
    let targets: Vec<u64> =
        (0..cluster.partition_count()).map(|p| cluster.set(p).master().log.end_lp()).collect();

    // Day 2: the accident.
    let mut txn = cluster.begin();
    for i in 0..5_000i64 {
        txn.delete_unique("accounts", &[Value::Int(i)]).unwrap();
    }
    txn.commit().unwrap();
    cluster.sync_to_blob().unwrap();
    println!(
        "day 2: every account deleted (oops) — live row count: {}",
        cluster.row_count("accounts").unwrap()
    );

    // PITR: rebuild each partition from blob snapshots + log chunks, bounded
    // at the pre-accident position. No backup was ever taken explicitly.
    let mut restored_total = 0usize;
    for (pid, &target) in targets.iter().enumerate() {
        let set = cluster.set(pid);
        let files = BlobBackedFileStore::new(Arc::clone(&blob), 64 << 20);
        let restored = restore_from_blob(
            &blob,
            &set.name,
            files as Arc<dyn s2db_repro::core::DataFileStore>,
            Some(target),
        )
        .expect("restore");
        let t = restored.table_by_name("accounts").unwrap().id;
        let rows = restored.read_snapshot().table(t).unwrap().live_row_count();
        println!("  partition {pid}: restored {rows} live rows at lp {target}");
        restored_total += rows;

        // The restored partition is fully functional — prove it with a point
        // read of an account this shard owns (id 7 lives on one of them).
        let txn = restored.begin();
        if let Some(acct) = txn.get_unique(t, &[Value::Int(7)]).unwrap() {
            assert_eq!(acct.get(1), &Value::Double(100.0));
            println!("  partition {pid}: account 7 readable with balance 100");
        }
        txn.rollback();
    }
    assert_eq!(restored_total, 5_000);
    println!("restored {restored_total}/5000 accounts — point-in-time restore complete");
}
