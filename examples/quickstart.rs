//! Quickstart: bring up a cluster, create a unified table, run transactions
//! and an analytical query over the same data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use s2db_repro::cluster::{Cluster, ClusterConfig};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::exec::{AggFunc, Aggregate, CmpOp, Expr, SortDir};
use s2db_repro::query::{format_batch, ExecOptions, Plan};

fn main() {
    // A 4-partition cluster with one HA replica per partition; commits wait
    // for in-memory replication (the paper's default durability rule).
    let cluster = Cluster::new(
        "quickstart",
        ClusterConfig {
            partitions: 4,
            ha_replicas: 1,
            sync_replication: true,
            ..Default::default()
        },
    )
    .expect("cluster");

    // One unified table: columnstore + rowstore internally, with a sort key
    // for scans, a shard key for distribution, a unique key and a secondary
    // index — the full DDL surface of paper §4.
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("city", DataType::Str),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let options = TableOptions::new()
        .with_sort_key(vec![0])
        .with_shard_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_city", vec![1]);
    cluster.create_table("payments", schema, options).expect("create table");

    // OLTP: insert rows transactionally.
    let cities = ["lisbon", "osaka", "bogota", "nairobi"];
    let mut txn = cluster.begin();
    for i in 0..10_000i64 {
        txn.insert(
            "payments",
            Row::new(vec![
                Value::Int(i),
                Value::str(cities[(i % 4) as usize]),
                Value::Double((i % 500) as f64),
            ]),
        )
        .unwrap();
    }
    txn.commit().expect("commit");
    println!("inserted 10k rows across {} partitions", cluster.partition_count());

    // Push the rowstore level into columnstore segments (normally the
    // background flusher's job).
    cluster.flush_table("payments").expect("flush");

    // OLTP: point read, update, duplicate-key enforcement.
    let mut txn = cluster.begin();
    let row = txn.get_unique("payments", &[Value::Int(42)]).unwrap().unwrap();
    println!("row 42 before update: {:?}", row.values());
    txn.update_unique_with("payments", &[Value::Int(42)], |r| {
        Row::new(vec![r.get(0).clone(), r.get(1).clone(), Value::Double(9999.0)])
    })
    .unwrap();
    txn.commit().unwrap();

    let mut txn = cluster.begin();
    let dup = txn
        .insert("payments", Row::new(vec![Value::Int(42), Value::str("dup"), Value::Double(0.0)]));
    println!("duplicate insert rejected: {}", dup.unwrap_err());
    txn.rollback();

    // OLAP: aggregate by city over the same table, same engine, no ETL.
    let plan = Plan::scan("payments", vec![1, 2], Some(Expr::cmp(2, CmpOp::Ge, 100.0)))
        .aggregate(
            vec![Expr::Column(0)],
            vec![
                Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) },
                Aggregate { func: AggFunc::Sum, input: Expr::Column(1) },
            ],
        )
        .sort(vec![(2, SortDir::Desc)], None);
    let out = cluster.execute(&plan, &ExecOptions::default()).expect("query");
    println!("\nrevenue by city (amount >= 100):");
    print!("{}", format_batch(&out, &["city", "payments", "total"]));

    // Secondary-index point query: only matching segments are touched.
    let plan = Plan::scan("payments", vec![0, 2], Some(Expr::eq(1, "osaka"))).limit(3);
    let out = cluster.execute(&plan, &ExecOptions::default()).unwrap();
    println!("\nthree osaka payments via the secondary index:");
    print!("{}", format_batch(&out, &["id", "amount"]));
}
