#!/usr/bin/env bash
# Repo CI gate. Offline-friendly: every dependency is a workspace path dep
# (see crates/shims/), so no network access is needed. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pass --offline everywhere so a machine without registry access (the normal
# case for this repo) never stalls on an index update.
CARGO_FLAGS=(--offline)

echo "== fmt =="
cargo fmt --all -- --check

echo "== analyze =="
# Workspace analyzer (crates/analyze): per-line rules R1-R6 (wall-clock,
# unwrap, blocking, SAFETY comments, metric-name style, raw std::sync
# locks) plus the interprocedural checks L1-L4 (static lock-order over
# the call graph, blocking-while-commit-lock-held, failpoint coverage of
# WAL/blob mutation sites, metric registry <-> DESIGN.md sync). One line
# per finding, JSON copy in target/lint.json, nonzero exit on any;
# `cargo run -p s2-lint -- --explain <ID>` documents each rule.
cargo run -q -p s2-lint "${CARGO_FLAGS[@]}" -- --json target/lint.json

echo "== clippy =="
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "== tier-1: release build + root tests =="
cargo build --release "${CARGO_FLAGS[@]}"
cargo test -q "${CARGO_FLAGS[@]}"

echo "== workspace tests =="
cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "== parallel scan: tier-1 at 1 and 8 scan threads =="
# The morsel executor must be invisible to correctness: the whole tier-1
# suite runs pinned serial and heavily oversubscribed, and the s2-exec
# tests additionally race each other across 8 test threads.
S2_SCAN_THREADS=1 cargo test -q "${CARGO_FLAGS[@]}"
S2_SCAN_THREADS=8 cargo test -q "${CARGO_FLAGS[@]}"
cargo test -q -p s2-exec "${CARGO_FLAGS[@]}" -- --test-threads=8

echo "== sim: crash-recovery smoke (200 seeded scenarios) =="
# Deterministic fault-injection sweep over the commit/upload/restore path.
# A failure prints replayable seeds — record them in EXPERIMENTS.md
# ("Sim failure seeds") alongside the commit hash before fixing.
cargo test -p s2-sim -q "${CARGO_FLAGS[@]}"
cargo run -p s2-sim --release "${CARGO_FLAGS[@]}" -- --seed 42 --scenarios 200

echo "== sim: blob-outage drills (25 seeded drills) =="
# Resilience-layer contract under transient bursts, a sustained 100% blob
# outage, and latency spikes: commits keep acking, cold reads fail fast
# within budget, and the upload backlog fully drains after recovery.
# Failing seeds replay with --scenario outage --seed N --scenarios 1.
cargo run -p s2-sim --release "${CARGO_FLAGS[@]}" -- --scenario outage --seed 42 --scenarios 25

echo "== workspace: elastic fleets + parallel recovery =="
# Workspace fleet drills: provision/detach churn with kill points at
# workspace.provision / pitr.restore / workspace.detach, transient blob
# bursts, a total outage (provisioning pauses, attached workspaces keep
# serving) and recovery (fleet converges byte-for-byte to the primary).
# Failing seeds replay with --scenario workspace --seed N --scenarios 1.
cargo test -q -p s2-cluster --test workspace "${CARGO_FLAGS[@]}"
# Parallel crash recovery must be byte-identical to serial replay — the
# proptests run with the runtime switch pinned both ways.
S2_PARALLEL_RECOVERY=0 cargo test -q -p s2-core --test recovery_parallel "${CARGO_FLAGS[@]}"
S2_PARALLEL_RECOVERY=1 cargo test -q -p s2-core --test recovery_parallel "${CARGO_FLAGS[@]}"
cargo run -p s2-sim --release "${CARGO_FLAGS[@]}" -- --scenario workspace --seed 42 --scenarios 25

echo "== tpcc: group-commit pipeline (contended smoke + crash drills) =="
# Contended TPC-C over a sync-replicated cluster: TPC-C consistency under
# 8 racing terminals plus the fsyncs-strictly-under-commits batching check.
cargo test -q --release --test tpcc_contended "${CARGO_FLAGS[@]}"
# Randomized committer interleavings: acked ⇒ durable, monotonic commit
# timestamps, and byte-identical on/off log equivalence.
cargo test -q --release -p s2-core --test group_commit "${CARGO_FLAGS[@]}"
# The wal/core suites must pass with the pipeline pinned both ways (the
# runtime switch keeps the legacy per-commit path on S2_GROUP_COMMIT=0).
S2_GROUP_COMMIT=0 cargo test -q -p s2-wal -p s2-core "${CARGO_FLAGS[@]}"
S2_GROUP_COMMIT=1 cargo test -q -p s2-wal -p s2-core "${CARGO_FLAGS[@]}"
# Group-commit crash drills: wal.group.{append,sync,handoff} kill points at
# boosted rates; a crash between batch append and fsync must never surface
# an acked commit, and a leader killed mid-handoff must not strand parked
# followers. Failing seeds replay with --scenario group --seed N.
cargo run -p s2-sim --release "${CARGO_FLAGS[@]}" -- --scenario group --seed 42 --scenarios 30

echo "== sql: planner suites + bench equivalence + randomized oracle =="
# The SQL front end's contract: parser total + round-trip (proptests),
# planner pushdown/pruning/cost tests, every TPC-H/CH bench query's SQL
# form byte-identical to its hand-built plan, and seeded generated
# SELECTs checked cell-by-cell against a plain-Rust oracle. Failing
# drill seeds replay with --scenario sql --seed N --scenarios 1.
cargo test -q -p s2-sql "${CARGO_FLAGS[@]}"
cargo test -q -p s2-workloads --test sql_equivalence "${CARGO_FLAGS[@]}"
cargo run -p s2-sim --release "${CARGO_FLAGS[@]}" -- --scenario sql --seed 42 --scenarios 12

echo "== encoded: domain-execution equivalence pinned both ways =="
# Encoded-domain execution's contract: randomized multi-segment tables
# (every encoding x NULLs x deletes) and the fused scan+aggregate path are
# byte-identical to decode-first scalar execution, and the exec/workloads
# suites pass with the runtime switch pinned off and on.
cargo test -q -p s2-exec --test encoded_equivalence "${CARGO_FLAGS[@]}"
cargo test -q -p s2-workloads --test sql_equivalence "${CARGO_FLAGS[@]}" -- \
  tpch_encoded_exec_matches_decoded ch_encoded_exec_matches_decoded
S2_ENCODED_EXEC=0 cargo test -q -p s2-exec "${CARGO_FLAGS[@]}"
S2_ENCODED_EXEC=1 cargo test -q -p s2-exec "${CARGO_FLAGS[@]}"
# Perf gate: Q1/Q6 at one thread must stay within 15% of the committed
# BENCH_scan.json baseline (scripts/bench_gate.sh re-runs the bench).
scripts/bench_gate.sh

echo "CI green."
