#!/usr/bin/env bash
# Performance gate for the encoded-domain scan path: re-runs bench_scan at
# one thread and fails if TPC-H Q1 or Q6 regresses more than 15% against
# the committed BENCH_scan.json baseline (or if results stop being
# byte-identical across runs). Run from the repo root; offline-friendly.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_scan.json
THRESHOLD=1.15
RUNS="${S2_RUNS:-3}"

[[ -f "$BASELINE" ]] || { echo "bench_gate: missing $BASELINE" >&2; exit 1; }

echo "== bench_gate: building bench_scan (release) =="
cargo build --release --offline -p s2-bench >/dev/null

echo "== bench_gate: running bench_scan --threads 1 ($RUNS runs/query) =="
out=$(mktemp)
trap 'rm -f "$out"' EXIT
S2_RUNS="$RUNS" ./target/release/bench_scan --threads 1 --json > "$out"

# mean_ms at threads=1 for one query name, from the single-line JSON.
mean_at_1t() {
  grep -o "\"name\":\"$2\"[^]]*" "$1" | grep -o '"threads":1,"mean_ms":[0-9.]*' \
    | head -1 | sed 's/.*://'
}

fail=0
for q in q1 q6; do
  base=$(mean_at_1t "$BASELINE" "$q")
  new=$(mean_at_1t "$out" "$q")
  [[ -n "$base" && -n "$new" ]] || { echo "bench_gate: could not parse $q" >&2; exit 1; }
  if awk -v n="$new" -v b="$base" -v t="$THRESHOLD" 'BEGIN { exit !(n > b * t) }'; then
    echo "bench_gate: FAIL $q ${new} ms vs baseline ${base} ms (over ${THRESHOLD}x)"
    fail=1
  else
    echo "bench_gate: ok   $q ${new} ms vs baseline ${base} ms"
  fi
done

grep -q '"all_identical":true' "$out" \
  || { echo "bench_gate: FAIL results not byte-identical across runs"; fail=1; }

exit "$fail"
