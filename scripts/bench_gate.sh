#!/usr/bin/env bash
# Performance gates: (1) the encoded-domain scan path — re-runs bench_scan
# at one thread and fails if TPC-H Q1 or Q6 regresses more than 15% against
# the committed BENCH_scan.json baseline (or if results stop being
# byte-identical across runs); (2) parallel crash recovery — re-runs
# bench_workspace and fails if the heaviest-churn parallel recovery time
# regresses more than 50% against BENCH_workspace.json, or if recovery time
# stops growing sublinearly with WAL length. Run from the repo root;
# offline-friendly.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_scan.json
WS_BASELINE=BENCH_workspace.json
THRESHOLD=1.15
# Recovery times are small (single-digit ms) and noisier than the scan
# means, so the recovery gate uses a looser multiplier.
WS_THRESHOLD=1.5
RUNS="${S2_RUNS:-3}"

[[ -f "$BASELINE" ]] || { echo "bench_gate: missing $BASELINE" >&2; exit 1; }
[[ -f "$WS_BASELINE" ]] || { echo "bench_gate: missing $WS_BASELINE" >&2; exit 1; }

echo "== bench_gate: building bench_scan (release) =="
cargo build --release --offline -p s2-bench >/dev/null

echo "== bench_gate: running bench_scan --threads 1 ($RUNS runs/query) =="
out=$(mktemp)
trap 'rm -f "$out"' EXIT
S2_RUNS="$RUNS" ./target/release/bench_scan --threads 1 --json > "$out"

# mean_ms at threads=1 for one query name, from the single-line JSON.
mean_at_1t() {
  grep -o "\"name\":\"$2\"[^]]*" "$1" | grep -o '"threads":1,"mean_ms":[0-9.]*' \
    | head -1 | sed 's/.*://'
}

# Single-digit-ms means on a shared host vary ±20% run to run; a real
# regression is reproducible, a load spike is not. One failing pass
# triggers exactly one full re-measure before the gate fails.
fail=0
retried=0
for q in q1 q6; do
  base=$(mean_at_1t "$BASELINE" "$q")
  new=$(mean_at_1t "$out" "$q")
  [[ -n "$base" && -n "$new" ]] || { echo "bench_gate: could not parse $q" >&2; exit 1; }
  if awk -v n="$new" -v b="$base" -v t="$THRESHOLD" 'BEGIN { exit !(n > b * t) }'; then
    if [[ "$retried" -eq 0 ]]; then
      echo "bench_gate: $q ${new} ms over threshold, re-measuring once"
      retried=1
      S2_RUNS="$RUNS" ./target/release/bench_scan --threads 1 --json > "$out"
      new=$(mean_at_1t "$out" "$q")
    fi
  fi
  if awk -v n="$new" -v b="$base" -v t="$THRESHOLD" 'BEGIN { exit !(n > b * t) }'; then
    echo "bench_gate: FAIL $q ${new} ms vs baseline ${base} ms (over ${THRESHOLD}x)"
    fail=1
  else
    echo "bench_gate: ok   $q ${new} ms vs baseline ${base} ms"
  fi
done

grep -q '"all_identical":true' "$out" \
  || { echo "bench_gate: FAIL results not byte-identical across runs"; fail=1; }

echo "== bench_gate: running bench_workspace ($RUNS runs/config) =="
wout=$(mktemp)
trap 'rm -f "$out" "$wout"' EXIT
S2_RUNS="$RUNS" ./target/release/bench_workspace --json > "$wout"

# parallel_ms at the heaviest churn multiplier, from the single-line JSON.
recovery_parallel_ms() {
  grep -o '"churn":4,[^}]*' "$1" | grep -o '"parallel_ms":[0-9.]*' \
    | head -1 | sed 's/.*://'
}

wbase=$(recovery_parallel_ms "$WS_BASELINE")
wnew=$(recovery_parallel_ms "$wout")
[[ -n "$wbase" && -n "$wnew" ]] \
  || { echo "bench_gate: could not parse workspace recovery times" >&2; exit 1; }
if awk -v n="$wnew" -v b="$wbase" -v t="$WS_THRESHOLD" 'BEGIN { exit !(n > b * t) }'; then
  echo "bench_gate: FAIL recovery(4x churn) ${wnew} ms vs baseline ${wbase} ms (over ${WS_THRESHOLD}x)"
  fail=1
else
  echo "bench_gate: ok   recovery(4x churn) ${wnew} ms vs baseline ${wbase} ms"
fi

grep -q '"sublinear_ok":true' "$wout" \
  || { echo "bench_gate: FAIL recovery time grows superlinearly with WAL length"; fail=1; }

exit "$fail"
